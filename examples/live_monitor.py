"""Stream a running daemon's progress feed while a slow job descends.

Long descents publish heartbeats from the solver's restart boundaries
onto the daemon's progress bus — current bound, conflicts, conflicts/s,
rung ETA — and ``GET /events?since=N`` serves that feed as a resumable
cursor stream (``repro watch`` and ``repro top`` are built on the same
two endpoints).  This example is the raw version: it long-polls
``/events`` and prints every event as it arrives, so you can watch the
ladder tighten rung by rung.

By default it starts its own daemon on an ephemeral port, submits a
Hubbard-model job slow enough to emit a visible stream, and tails the
feed until the job finishes.  Point it at a long-running daemon instead
with ``--url`` (then submit from another terminal, or pass ``--submit``):

Run:
    PYTHONPATH=src python examples/live_monitor.py
    PYTHONPATH=src python examples/live_monitor.py --url http://host:8765 \\
        --submit hubbard:2
"""

import argparse
import sys
import tempfile
import threading


def start_local_daemon():
    from repro.service import CompilationService, ServiceServer
    from repro.store import CompilationCache

    cache_dir = tempfile.mkdtemp(prefix="fermihedral-monitor-")
    service = CompilationService(
        cache=CompilationCache(cache_dir), jobs=1
    ).start()
    server = ServiceServer(("127.0.0.1", 0), service)
    threading.Thread(target=server.serve_until_stopped, daemon=True).start()
    return server, service


def describe(event: dict) -> str:
    kind = event.get("kind", "?")
    job = (event.get("job") or "")[:12]
    if kind == "heartbeat":
        parts = [f"bound={event.get('bound')}",
                 f"conflicts={event.get('conflicts')}"]
        rate = event.get("conflicts_per_s")
        if rate is not None:
            parts.append(f"{rate:.0f}/s")
        eta = event.get("eta_s")
        if eta is not None:
            parts.append(f"eta~{eta:.0f}s")
        detail = "  ".join(parts)
    elif kind == "rung":
        detail = (f"bound={event.get('bound')} -> {event.get('status')} "
                  f"({event.get('conflicts')} conflicts)")
    elif kind == "descent":
        detail = (f"weight={event.get('weight')} "
                  f"optimal={event.get('proved_optimal')}")
    elif kind == "job":
        detail = f"state={event.get('state')}"
    else:
        detail = " ".join(f"{k}={v}" for k, v in sorted(event.items())
                          if k not in ("kind", "job", "seq", "ts"))
    return f"[{event.get('seq'):>5}] {job:<12} {kind:<10} {detail}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", help="monitor an already-running daemon "
                        "instead of starting one")
    parser.add_argument("--submit", default="hubbard:2", metavar="MODEL",
                        help="model spec to submit (default: hubbard:2, "
                        "slow enough to stream; '' to only watch)")
    parser.add_argument("--max-conflicts", type=int, default=20000,
                        help="per-rung conflict budget for the submitted job")
    args = parser.parse_args()

    from repro.service import ServiceClient

    server = service = None
    if args.url:
        client = ServiceClient(args.url)
    else:
        server, service = start_local_daemon()
        client = ServiceClient(server.url)
        print(f"daemon listening at {server.url}")

    job_id = None
    if args.submit:
        record = client.submit({
            "model": args.submit,
            "label": f"monitor:{args.submit}",
            "config": {"max_conflicts": args.max_conflicts},
        })
        job_id = record["id"]
        print(f"submitted {args.submit}: {job_id[:12]} ({record['status']})")

    print("streaming /events (ctrl-c to stop):\n")
    cursor = 0
    try:
        while True:
            batch = client.events(since=cursor, timeout=5.0)
            if batch.get("dropped"):
                print("  ... feed ring wrapped; resuming from oldest")
            for event in batch["events"]:
                print(describe(event))
            cursor = batch["next"]
            if job_id:
                payload = client.progress(job_id)
                if payload["status"] in ("done", "failed", "cancelled"):
                    print(f"\njob {job_id[:12]} finished: "
                          f"{payload['status']}")
                    break
    except KeyboardInterrupt:
        print("\nstopped")

    if service is not None:
        client.shutdown()
        service.join(timeout=30.0)
    return 0


if __name__ == "__main__":
    sys.exit(main())
