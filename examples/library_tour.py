"""A tour of the substrate layers — for users extending the library.

Walks the stack bottom-up: Pauli algebra, the SAT solver, fermionic
operators, hand-built encodings, and circuit synthesis, using only the
public API.

Run:  python examples/library_tour.py
"""

import numpy as np

from repro import (
    FermionOperator,
    MajoranaEncoding,
    PauliString,
    diagonalize,
    pauli_evolution_circuit,
    run_circuit,
    verify_encoding,
)
from repro.sat import CnfFormula, solve_formula


def pauli_algebra() -> None:
    print("-- Pauli algebra ------------------------------------------")
    x, y = PauliString.from_label("XX"), PauliString.from_label("YY")
    product, phase = x.multiply(y)
    print(f"XX * YY = {phase} * {product.label()}")
    print(f"XX and YY commute: {x.commutes_with(y)}")
    print(f"XXX and YYY anticommute: "
          f"{PauliString.from_label('XXX').anticommutes_with(PauliString.from_label('YYY'))}")


def sat_solver() -> None:
    print("\n-- SAT substrate ------------------------------------------")
    formula = CnfFormula()
    a, b, c = formula.new_variables(3)
    formula.add_clause((a, b))
    formula.add_clause((-a, c))
    formula.add_clause((-b, -c))
    result = solve_formula(formula)
    print(f"3-clause toy instance: {result.status}, model "
          f"{ {k: v for k, v in result.model.items()} }")


def fermionic_operators() -> None:
    print("\n-- Fermionic operators ------------------------------------")
    hopping = FermionOperator.creation(0) * FermionOperator.annihilation(1)
    hermitian = hopping + hopping.hermitian_conjugate()
    print(f"a†_0 a_1 + h.c. is hermitian: {hermitian.is_hermitian()}")
    ordered = (FermionOperator.annihilation(0) * FermionOperator.creation(0)).normal_ordered()
    print(f"a_0 a†_0 normal-ordered: {ordered}")


def custom_encoding() -> None:
    print("\n-- Hand-built encoding ------------------------------------")
    # The N=2 optimum from the paper's Eq. 2 (Jordan-Wigner).
    strings = [PauliString.from_label(s) for s in ("IX", "IY", "XZ", "YZ")]
    encoding = MajoranaEncoding(strings, name="hand-rolled")
    report = verify_encoding(encoding)
    print(f"valid: {report.valid}, vacuum preserved: {report.vacuum_preservation}")
    number_op = encoding.encode(FermionOperator.number(0))
    spectrum = diagonalize(number_op)
    print(f"occupation-number eigenvalues: {np.round(spectrum.energies, 6)}")


def circuits() -> None:
    print("\n-- Circuit synthesis --------------------------------------")
    string = PauliString.from_label("XZY")
    circuit = pauli_evolution_circuit(string, angle=0.25)
    print(f"exp(i 0.25 {string.label()}): {circuit.gate_statistics()}")
    flip = pauli_evolution_circuit(PauliString.from_label("X"), np.pi / 2)
    state = run_circuit(flip)
    print(f"exp(i pi/2 X)|0> amplitudes: {np.round(state, 6)}")


if __name__ == "__main__":
    pauli_algebra()
    sat_solver()
    fermionic_operators()
    custom_encoding()
    circuits()
