"""Drive the compilation service end to end, in one process.

Starts a daemon on an ephemeral port (exactly what ``repro serve``
does), submits a burst of jobs containing duplicates through the typed
client, polls them to completion, and shows the dedup/cache counters.
Against a long-running shared daemon you would skip the server setup and
just point ``ServiceClient`` at its URL (or set ``$REPRO_SERVICE_URL``).

Run:
    PYTHONPATH=src python examples/service_client.py
"""

import tempfile
import threading

from repro.core import FermihedralConfig, SolverBudget
from repro.service import CompilationService, ServiceClient, ServiceServer
from repro.store import CompilationCache

JOBS = [
    {"modes": 2, "method": "independent"},
    {"modes": 3, "method": "independent"},
    {"modes": 2, "method": "independent", "label": "duplicate of the first"},
    {"model": "h2", "method": "sat-anl", "config": {"budget_s": 60}},
]


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="fermihedral-service-")
    service = CompilationService(
        cache=CompilationCache(cache_dir),
        default_config=FermihedralConfig(
            budget=SolverBudget(time_budget_s=60.0)
        ),
        jobs=2,                     # worker processes draining the queue
        queue_limit=16,             # submissions beyond this get HTTP 429
    ).start()
    server = ServiceServer(("127.0.0.1", 0), service)
    threading.Thread(target=server.serve_until_stopped, daemon=True).start()
    print(f"service listening at {server.url} (cache: {cache_dir})\n")

    client = ServiceClient(server.url)

    # Submit everything first — the queue is asynchronous, duplicates
    # collapse onto one job id, and nothing blocks until we poll.
    submitted = []
    for spec in JOBS:
        record = client.submit(spec)
        submitted.append(record)
        note = "deduplicated" if record["deduplicated"] else record["status"]
        print(f"submitted {record['label'] or record['modes']}: "
              f"{record['id'][:12]} ({note})")

    print("\npolling:")
    for record in submitted:
        final = client.wait(record["id"], timeout=600.0)
        result = client.result(final)
        print(f"  {final['label'] or final['modes']}: {final['outcome']}, "
              f"weight {result.weight}, optimal={result.proved_optimal}")

    # A repeat submission is now answered from the finished record; a
    # fresh daemon over the same cache directory would answer it as a
    # synchronous cache hit instead.
    repeat = client.submit(JOBS[0])
    print(f"\nrepeat submission: status={repeat['status']} "
          f"(deduplicated={repeat['deduplicated']})")

    stats = client.stats()
    print(f"counters: {stats['counters']}")
    print(f"health:   {client.healthz()['state']}, "
          f"{stats['jobs']} by state")

    client.shutdown()  # drain accepted jobs, then stop serving
    service.join(timeout=30.0)
    print("service stopped")


if __name__ == "__main__":
    main()
