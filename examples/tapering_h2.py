"""Qubit tapering: shrinking the encoded H2 Hamiltonian with Z2 symmetries.

Extension beyond the paper (its reference [3], Bravyi et al. 2017):
discover the Pauli strings commuting with every Hamiltonian term, rotate
each onto a single-qubit operator with Clifford reflections, and replace
those qubits by their ±1 eigenvalues.  The Jordan-Wigner H2 Hamiltonian
carries three parity symmetries and collapses from 4 qubits to 1, with
the true ground energy preserved in one sector.

Run:  python examples/tapering_h2.py
"""

import numpy as np

from repro import diagonalize, h2_hamiltonian, jordan_wigner
from repro.tapering import find_z2_symmetries, taper_all_sectors


def main() -> None:
    hamiltonian = h2_hamiltonian()
    encoded = jordan_wigner(4).encode(hamiltonian)
    spectrum = diagonalize(encoded)
    print(f"JW-encoded H2: {encoded.num_qubits} qubits, {len(encoded)} terms, "
          f"E0 = {spectrum.ground_energy:.6f}")

    generators = find_z2_symmetries(encoded)
    print(f"\nZ2 symmetry generators ({len(generators)}):")
    for generator in generators:
        print(f"  {generator.label()}   (spin/particle parity)")

    print("\nSector scan:")
    best_sector = None
    best_energy = np.inf
    for sector, tapered in taper_all_sectors(encoded, generators).items():
        ground = diagonalize(tapered).ground_energy
        marker = ""
        if ground < best_energy:
            best_energy, best_sector, marker = ground, sector, ""
        print(f"  sector {sector}: {tapered.num_qubits} qubit(s), "
              f"{len(tapered)} terms, E0 = {ground:+.6f}")

    print(f"\nGround sector: {best_sector} with E0 = {best_energy:.6f} "
          f"(original {spectrum.ground_energy:.6f})")
    print("4-qubit simulation reduced to a single qubit — exactly the "
          "reduction used by the 2-qubit H2 experiments in the literature.")


if __name__ == "__main__":
    main()
