"""Compiling a Fermi-Hubbard lattice model (the paper's Table 6 workflow).

Builds the 3-site periodic Hubbard chain (6 qubits), finds a
Hamiltonian-aware encoding with SAT + annealing, and compares compiled
circuit statistics across encodings under an identical synthesis +
peephole pipeline.

Run:  python examples/hubbard_compile.py
"""

from repro import (
    FermihedralConfig,
    SolverBudget,
    anneal_pairing,
    bravyi_kitaev,
    hubbard_lattice,
    jordan_wigner,
    optimize_circuit,
    solve_sat_annealing,
    trotter_circuit,
)


def main() -> None:
    hamiltonian = hubbard_lattice(3, 1)
    num_modes = hamiltonian.num_modes
    print(f"3x1 periodic Fermi-Hubbard: {num_modes} spin-orbitals, "
          f"{len(hamiltonian.monomials)} Majorana monomials")

    config = FermihedralConfig(
        algebraic_independence=False,
        budget=SolverBudget(time_budget_s=45),
    )
    result = solve_sat_annealing(hamiltonian, config, seed=11)
    print(f"\nSAT+Anl encoding: hamiltonian weight {result.weight} "
          f"(annealing improved {result.annealing.initial_weight} "
          f"-> {result.annealing.weight})")

    encodings = [
        jordan_wigner(num_modes),
        bravyi_kitaev(num_modes),
        anneal_pairing(bravyi_kitaev(num_modes), hamiltonian, seed=3).encoding,
        result.encoding,
    ]
    labels = ["jordan-wigner", "bravyi-kitaev", "bk+annealed-pairs", "fermihedral"]

    print(f"\n{'encoding':20s} {'H weight':>8s} {'single':>7s} {'CNOT':>5s} "
          f"{'total':>6s} {'depth':>6s}")
    for label, encoding in zip(labels, encodings):
        weight = encoding.hamiltonian_pauli_weight(hamiltonian)
        operator = encoding.encode(hamiltonian).without_identity().hermitian_part()
        circuit = optimize_circuit(trotter_circuit(operator, time=1.0))
        stats = circuit.gate_statistics()
        print(f"{label:20s} {weight:8d} {stats['single']:7d} {stats['cnot']:5d} "
              f"{stats['total']:6d} {stats['depth']:6d}")


if __name__ == "__main__":
    main()
