"""Hardware-aware compilation walkthrough.

Compiles H2 for two very different machines — a 5-qubit line
(``ibmq-manila``) and an all-to-all trapped-ion device — and shows why the
device belongs in the objective:

1. inspect a device topology and the per-qubit objective weights it
   induces;
2. route the textbook baselines onto it and compare *routed* two-qubit
   gate counts with abstract Pauli weights;
3. run the device-bound ``FermihedralCompiler`` and read the routed cost
   off the result;
4. see that the same job on a different device gets a different cache
   fingerprint.

Run:  PYTHONPATH=src python examples/hardware_aware_compile.py
"""

from repro import FermihedralCompiler, FermihedralConfig, SolverBudget
from repro.analysis import compare_routed_cost, format_table
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import h2_hamiltonian
from repro.hardware import HardwareCostModel, connectivity_weights, get_device
from repro.store import compilation_key

h2 = h2_hamiltonian()
config = FermihedralConfig(budget=SolverBudget(time_budget_s=20.0))

# -- 1. a device is a coupling graph with a metric ---------------------------

manila = get_device("ibmq-manila")
print(f"{manila.name}: {manila.num_qubits} qubits, diameter {manila.diameter}")
print(f"  couplers: {list(manila.edges)}")
print(f"  objective weights for 4 logical qubits: "
      f"{list(connectivity_weights(manila, h2.num_modes))}")
print("  (end-of-line qubits are farther from everything, so Paulis living "
      "there cost more)\n")

# -- 2. abstract weight vs routed cost for the baselines ---------------------

rows = []
for device_name in ("ibmq-manila", "all-to-all-4"):
    comparison = compare_routed_cost(
        "H2", h2, jordan_wigner(h2.num_modes), bravyi_kitaev(h2.num_modes),
        get_device(device_name),
    )
    rows.append(comparison.row())
print(format_table(list(comparison.HEADERS), rows))
print("(JW vs BK can flip order between devices — weight alone does not "
      "decide)\n")

# -- 3. the device-bound compiler --------------------------------------------

for device_name in ("ibmq-manila", "all-to-all-4"):
    compiler = FermihedralCompiler(h2.num_modes, config, device=device_name)
    result = compiler.full_sat(h2)
    hardware = result.hardware
    print(f"{device_name}: weight={result.weight} "
          f"routed 2q={hardware.two_qubit_count} "
          f"(swaps={hardware.swap_count}, depth={hardware.depth})")

    # The compiler never returns an encoding that routes worse than a
    # textbook baseline it could have had for free:
    model = HardwareCostModel(get_device(device_name))
    bk_cost = model.cost_of_encoding(bravyi_kitaev(h2.num_modes), h2)
    assert hardware.two_qubit_count <= bk_cost.two_qubit_count
print()

# -- 4. fingerprints are per-device ------------------------------------------

key_line = compilation_key(h2.num_modes, config, h2, "full-sat",
                           device=get_device("ibmq-manila"))
key_ion = compilation_key(h2.num_modes, config, h2, "full-sat",
                          device=get_device("all-to-all-4"))
key_free = compilation_key(h2.num_modes, config, h2, "full-sat")
print(f"cache key on ibmq-manila:  {key_line[:16]}...")
print(f"cache key on all-to-all-4: {key_ion[:16]}...")
print(f"cache key device-free:     {key_free[:16]}...")
assert len({key_line, key_ion, key_free}) == 3
print("three different jobs, three different cache entries")
