"""The compilation store in action: batch compile, then hit the cache.

Runs the same job list twice through a :class:`BatchCompiler` backed by an
on-disk :class:`CompilationCache`:

1. First pass — duplicate jobs are fingerprint-deduplicated, unique jobs
   pay the SAT cost, and every result is persisted.
2. Second pass — every job is answered from the cache with zero SAT
   calls, descent traces intact.

Run:  python examples/batch_cached_compile.py
"""

import tempfile

from repro import (
    BatchCompiler,
    CompilationCache,
    CompileJob,
    FermihedralConfig,
    SolverBudget,
    hubbard_chain,
)


def run_pass(name: str, cache: CompilationCache, jobs: list[CompileJob]) -> None:
    print(f"--- {name} ---")
    report = BatchCompiler(
        cache=cache,
        default_config=FermihedralConfig(budget=SolverBudget(time_budget_s=60)),
    ).compile(jobs)
    for outcome in report.outcomes:
        result = outcome.result
        print(f"  {outcome.job.display:22s} {outcome.status:12s} "
              f"weight={result.weight if result else '-':<4} "
              f"sat_calls={result.descent.sat_calls if result else '-'} "
              f"({outcome.elapsed_s:.2f}s)")
    print(f"  {report.summary()} in {report.elapsed_s:.2f}s")
    stats = cache.stats
    print(f"  cache: {stats.hits} hits, {stats.misses} misses, "
          f"{stats.stores} stores\n")


def main() -> None:
    jobs = [
        CompileJob(method="independent", num_modes=2, label="2-mode library"),
        CompileJob(method="independent", num_modes=2, label="2-mode (duplicate)"),
        CompileJob(method="independent", num_modes=3, label="3-mode library"),
        CompileJob(method="sat+annealing", hamiltonian=hubbard_chain(2),
                   label="hubbard-2 (annealed)"),
    ]
    with tempfile.TemporaryDirectory() as root:
        cache = CompilationCache(root)
        run_pass("first pass: compile + store", cache, jobs)
        run_pass("second pass: pure cache hits", cache, jobs)
        print("entries on disk:")
        for info in cache.entries():
            print(f"  {info.key[:16]}…  modes={info.num_modes} "
                  f"method={info.method} weight={info.weight} "
                  f"optimal={info.proved_optimal}")


if __name__ == "__main__":
    main()
