"""The parallel engine in action: process fan-out, portfolio, incremental.

Three demonstrations:

1. **Batch fan-out** — a sweep-shaped job list (duplicates included, as a
   bond-length sweep produces after coefficient-free fingerprinting)
   compiled serially and then on 4 worker processes, with the live
   progress events the CLI renders on stderr, and identical weights /
   optimality proofs at either worker count.
2. **Portfolio racing** — one descent solved with 1, 2 and 4 diversified
   solver processes racing every SAT call; same optimum at every width.
3. **Incremental vs cold-start descent** — the assumption-ladder engine
   against rebuilding the CNF at every bound.

Run:  python examples/parallel_batch.py
"""

import tempfile
import time

from repro import (
    BatchCompiler,
    CompilationCache,
    CompileJob,
    FermihedralConfig,
    SolverBudget,
)
from repro.core.descent import descend
from repro.parallel.events import format_event


def sweep_jobs() -> list[CompileJob]:
    return [
        CompileJob(method="independent", num_modes=n, label=f"{n}-modes/pt-{k}")
        for n in (2, 3)
        for k in range(3)
    ]


def demo_batch() -> None:
    print("--- batch: serial vs 4 worker processes ---")
    config = FermihedralConfig(budget=SolverBudget(time_budget_s=60))
    jobs = sweep_jobs()

    started = time.monotonic()
    serial = BatchCompiler(jobs=1, default_config=config).compile(jobs)
    serial_s = time.monotonic() - started

    with tempfile.TemporaryDirectory() as root:
        started = time.monotonic()
        parallel = BatchCompiler(
            cache=CompilationCache(root),
            jobs=4,
            default_config=config,
            on_event=lambda event: print("  " + format_event(event)),
        ).compile(jobs)
        parallel_s = time.monotonic() - started

    same = [
        (a.result.weight, a.result.proved_optimal)
        == (b.result.weight, b.result.proved_optimal)
        for a, b in zip(serial.outcomes, parallel.outcomes)
    ]
    print(f"  serial {serial_s:.2f}s vs 4 workers {parallel_s:.2f}s; "
          f"results identical: {all(same)}")


def demo_portfolio() -> None:
    print("--- portfolio: diversified solvers race every SAT call ---")
    for workers in (1, 2, 4):
        started = time.monotonic()
        result = descend(3, FermihedralConfig(portfolio=workers))
        print(f"  portfolio={workers}: weight={result.weight} "
              f"proved={result.proved_optimal} "
              f"({time.monotonic() - started:.2f}s, "
              f"{result.total_conflicts} conflicts)")


def demo_incremental() -> None:
    print("--- descent: incremental ladder vs cold start ---")
    for incremental in (False, True):
        config = FermihedralConfig(incremental=incremental)
        started = time.monotonic()
        result = descend(3, config)
        label = "incremental" if incremental else "cold-start "
        print(f"  {label}: weight={result.weight} "
              f"sat_calls={result.sat_calls} "
              f"({time.monotonic() - started:.2f}s)")


if __name__ == "__main__":
    demo_batch()
    demo_portfolio()
    demo_incremental()
