"""Encoding the SYK model — a strongly-interacting, Majorana-native system.

The four-body SYK model couples every Majorana quadruple, which makes it
the hardest of the paper's benchmark families for constructive encodings.
This example shows the Hamiltonian-dependent Full SAT search beating
Bravyi-Kitaev (paper Table 4: up to 57% reduction at this scale) and
demonstrates why annealing alone cannot help for dense SYK (mode
re-pairing permutes the monomial set onto itself).

Run:  python examples/syk_weight.py
"""

from repro import (
    FermihedralConfig,
    SolverBudget,
    anneal_pairing,
    bravyi_kitaev,
    jordan_wigner,
    syk_hamiltonian,
    solve_full_sat,
    ternary_tree,
)


def main() -> None:
    hamiltonian = syk_hamiltonian(3, seed=11)
    num_modes = hamiltonian.num_modes
    print(f"Four-body SYK, {num_modes} modes ({2 * num_modes} Majoranas), "
          f"{len(hamiltonian.monomials)} quadruple terms")

    print("\nConstructive baselines (Hamiltonian Pauli weight):")
    for encoding in (jordan_wigner(num_modes), bravyi_kitaev(num_modes),
                     ternary_tree(num_modes)):
        print(f"  {encoding.name:15s} {encoding.hamiltonian_pauli_weight(hamiltonian)}")

    bk = bravyi_kitaev(num_modes)
    annealed = anneal_pairing(bk, hamiltonian, seed=5)
    print(f"\nAnnealing BK's pairing: {annealed.initial_weight} -> {annealed.weight} "
          "(dense SYK is pairing-invariant, so no change)")

    config = FermihedralConfig(budget=SolverBudget(time_budget_s=90))
    result = solve_full_sat(hamiltonian, config)
    reduction = 100.0 * (bk.hamiltonian_pauli_weight(hamiltonian) - result.weight) \
        / bk.hamiltonian_pauli_weight(hamiltonian)
    print(f"\nFull SAT: weight {result.weight} "
          f"({reduction:.1f}% below BK, optimal proved: {result.proved_optimal})")
    for index, string in enumerate(result.encoding.strings):
        print(f"  m_{index} = {string.label()}")


if __name__ == "__main__":
    main()
