"""Scrape a live compilation service and render a job's span tree.

Starts a daemon on an ephemeral port, compiles one real job through it,
then surfaces the telemetry three ways:

1. ``GET /metrics`` — the Prometheus text page, filtered down to the
   solver/cache/queue families a dashboard would alert on;
2. ``GET /debug/trace/<id>`` — the finished job's span events, relayed
   from the worker process that compiled it, rendered as a tree;
3. the in-process ``Telemetry`` handle — the same registry, read
   directly, no HTTP involved.

Against a long-running shared daemon you would skip the server setup and
just point ``ServiceClient`` (or ``curl``) at its URL.

Run:
    PYTHONPATH=src python examples/telemetry_scrape.py
"""

import tempfile
import threading

from repro.core import FermihedralConfig, SolverBudget
from repro.service import CompilationService, ServiceClient, ServiceServer
from repro.store import CompilationCache
from repro.telemetry import Telemetry, render_tree

#: Metric-family prefixes worth a dashboard panel each.
INTERESTING = (
    "repro_solver_conflicts_total",
    "repro_solver_propagations_total",
    "repro_cache_",
    "repro_service_queue_depth",
    "repro_service_active_slots",
    "repro_service_jobs",
    "repro_service_submit_seconds_count",
)


def main() -> None:
    telemetry = Telemetry()
    service = CompilationService(
        cache=CompilationCache(tempfile.mkdtemp(prefix="fermihedral-tele-")),
        default_config=FermihedralConfig(
            budget=SolverBudget(time_budget_s=60.0)
        ),
        jobs=2,
        telemetry=telemetry,
    ).start()
    server = ServiceServer(("127.0.0.1", 0), service)
    threading.Thread(target=server.serve_until_stopped, daemon=True).start()
    print(f"service listening at {server.url}\n")

    client = ServiceClient(server.url)
    record = client.submit({"modes": 3, "method": "independent"})
    final = client.wait(record["id"], timeout=600.0)
    print(f"compiled {final['id'][:12]}: weight {final['weight']}, "
          f"optimal={final['proved_optimal']}\n")

    # 1. The scrape, as Prometheus (or plain curl) would see it.
    print("-- /metrics (filtered) " + "-" * 40)
    for line in client.metrics().splitlines():
        if line.startswith(INTERESTING):
            print(line)

    # 2. The job's span tree, relayed from the worker that compiled it.
    print("\n-- /debug/trace/<id> " + "-" * 42)
    print(render_tree(client.trace(final["id"])["events"]))

    # 3. No HTTP required: the handle we passed in holds the same
    #    registry the endpoint renders.
    text = telemetry.render_metrics()
    families = {line.split()[2] for line in text.splitlines()
                if line.startswith("# TYPE")}
    print(f"\nin-process registry holds {len(families)} metric families")

    client.shutdown()
    service.join(timeout=30.0)
    print("service stopped")


if __name__ == "__main__":
    main()
