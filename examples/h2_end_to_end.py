"""End-to-end H2 simulation study (the paper's Figures 8/10 workflow).

1. Build the H2/STO-3G Hamiltonian (4 spin-orbitals).
2. Find the Hamiltonian-dependent optimal encoding with Full SAT.
3. Compile exp(iHt) circuits for JW / BK / Full SAT.
4. Simulate the ground-state evolution under depolarizing noise and under
   the IonQ Aria-1 noise model, reporting energy drift and spread.

Run:  python examples/h2_end_to_end.py
"""

from repro import (
    FermihedralConfig,
    NoiseModel,
    SolverBudget,
    bravyi_kitaev,
    diagonalize,
    h2_hamiltonian,
    ionq_aria1_noise,
    jordan_wigner,
    optimize_circuit,
    simulate_noisy_energy,
    solve_full_sat,
    trotter_circuit,
)

SHOTS = 100


def main() -> None:
    hamiltonian = h2_hamiltonian()
    print("H2/STO-3G at R=0.7414 A, 4 spin-orbitals")

    config = FermihedralConfig(budget=SolverBudget(time_budget_s=60))
    sat = solve_full_sat(hamiltonian, config)
    encodings = [jordan_wigner(4), bravyi_kitaev(4), sat.encoding]

    print(f"\nHamiltonian Pauli weight: "
          + ", ".join(f"{e.name}={e.hamiltonian_pauli_weight(hamiltonian)}"
                      for e in encodings))

    print(f"\n{'encoding':15s} {'gates':>6s} {'CNOT':>5s} {'depth':>6s} "
          f"{'E0 exact':>10s} {'E drift(1e-2)':>14s} {'sigma':>7s} {'Aria-1 E':>9s}")
    for encoding in encodings:
        encoded = encoding.encode(hamiltonian).hermitian_part()
        spectrum = diagonalize(encoded)
        ground = spectrum.eigenstate(0)
        circuit = optimize_circuit(
            trotter_circuit(encoded.without_identity(), time=1.0)
        )
        noisy = simulate_noisy_energy(
            circuit, encoded, ground,
            NoiseModel(single_qubit_error=1e-4, two_qubit_error=1e-2),
            shots=SHOTS, seed=7,
        )
        aria = simulate_noisy_energy(
            circuit, encoded, ground, ionq_aria1_noise(), shots=SHOTS, seed=7
        )
        print(f"{encoding.name:15s} {circuit.total_count:6d} {circuit.cnot_count:5d} "
              f"{circuit.depth:6d} {spectrum.ground_energy:10.4f} "
              f"{abs(noisy.mean - spectrum.ground_energy):14.4f} {noisy.std:7.4f} "
              f"{aria.mean:9.4f}")

    print("\nLower weight -> fewer gates -> less drift: the paper's causal chain.")


if __name__ == "__main__":
    main()
