"""Quickstart: find an optimal fermion-to-qubit encoding with Fermihedral.

Solves the 3-mode Hamiltonian-independent problem end to end, proves
optimality, and compares against the textbook encodings.

Run:  python examples/quickstart.py
"""

from repro import (
    FermihedralCompiler,
    FermihedralConfig,
    SolverBudget,
    bravyi_kitaev,
    jordan_wigner,
    ternary_tree,
    verify_encoding,
)


def main() -> None:
    num_modes = 3
    config = FermihedralConfig(budget=SolverBudget(time_budget_s=60))
    compiler = FermihedralCompiler(num_modes, config)

    print(f"Searching the optimal {num_modes}-mode encoding (Full SAT)...")
    result = compiler.hamiltonian_independent()

    print(f"\nMajorana operators found (total Pauli weight {result.weight}, "
          f"optimal proved: {result.proved_optimal}):")
    for index, string in enumerate(result.encoding.strings):
        print(f"  m_{index} = {string.label()}")

    report = result.verify()
    print(f"\nConstraints verified: anticommutativity={report.anticommutativity}, "
          f"algebraic independence={report.algebraic_independence}, "
          f"vacuum preserved={report.vacuum_preservation}")

    print("\nComparison (total Majorana Pauli weight):")
    for baseline in (jordan_wigner(num_modes), bravyi_kitaev(num_modes), ternary_tree(num_modes)):
        print(f"  {baseline.name:15s} {baseline.total_majorana_weight}")
    print(f"  {'fermihedral':15s} {result.weight}")

    steps = result.descent.steps
    print(f"\nDescent trace ({len(steps)} SAT calls):")
    for step in steps:
        achieved = step.achieved_weight if step.achieved_weight is not None else "-"
        print(f"  bound <= {step.bound}: {step.status} (achieved {achieved}, "
              f"{step.conflicts} conflicts, {step.elapsed_s:.2f}s)")


if __name__ == "__main__":
    main()
