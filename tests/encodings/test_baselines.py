"""Shared contract tests for all four baseline encodings.

Every constructive encoding must satisfy the Section-3.1 constraints; the
vacuum property additionally holds for JW/BK/parity.  The CAR check runs
the full loop through qubit space: ``{a_i, a†_j} = δ_ij`` etc.
"""

import numpy as np
import pytest

from repro.encodings import bravyi_kitaev, jordan_wigner, parity_encoding, ternary_tree
from repro.paulis import pairwise_anticommuting, are_algebraically_independent, pauli_sum_matrix

ALL_BUILDERS = [jordan_wigner, bravyi_kitaev, parity_encoding, ternary_tree]
VACUUM_BUILDERS = [jordan_wigner, bravyi_kitaev, parity_encoding]


@pytest.mark.parametrize("builder", ALL_BUILDERS)
@pytest.mark.parametrize("num_modes", [1, 2, 3, 4, 5, 7, 10, 16])
class TestEncodingContract:
    def test_string_count_and_length(self, builder, num_modes):
        encoding = builder(num_modes)
        assert len(encoding.strings) == 2 * num_modes
        assert all(s.num_qubits == num_modes for s in encoding.strings)

    def test_anticommutativity(self, builder, num_modes):
        assert pairwise_anticommuting(builder(num_modes).strings)

    def test_algebraic_independence(self, builder, num_modes):
        assert are_algebraically_independent(builder(num_modes).strings)


@pytest.mark.parametrize("builder", VACUUM_BUILDERS)
@pytest.mark.parametrize("num_modes", [1, 2, 3, 4, 6, 9])
def test_vacuum_preservation(builder, num_modes):
    assert builder(num_modes).preserves_vacuum()


@pytest.mark.parametrize("builder", ALL_BUILDERS)
@pytest.mark.parametrize("num_modes", [1, 2, 3])
def test_canonical_anticommutation_relations(builder, num_modes):
    """{a_i, a†_j} = δ_ij, {a_i, a_j} = 0 in qubit space."""
    encoding = builder(num_modes)
    dimension = 2**num_modes
    for i in range(num_modes):
        for j in range(num_modes):
            a_i = encoding.annihilation(i)
            adag_j = encoding.creation(j)
            mixed = a_i * adag_j + adag_j * a_i
            expected = np.eye(dimension) if i == j else np.zeros((dimension, dimension))
            assert np.allclose(pauli_sum_matrix(mixed), expected), (builder, i, j)
            a_j = encoding.annihilation(j)
            same = a_i * a_j + a_j * a_i
            assert np.allclose(pauli_sum_matrix(same), 0), (builder, i, j)


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_rejects_nonpositive_modes(builder):
    with pytest.raises(ValueError):
        builder(0)


class TestKnownForms:
    def test_jw_matches_paper_equation_2(self):
        labels = [s.label() for s in jordan_wigner(2).strings]
        assert labels == ["IX", "IY", "XZ", "YZ"]

    def test_jw_weight_grows_linearly(self):
        weights = [jordan_wigner(n).total_majorana_weight for n in (2, 4, 8)]
        # sum over j of 2(j+1) = N(N+1) per X/Y pair structure
        assert weights == [n * (n + 1) for n in (2, 4, 8)]

    def test_bk_weight_is_logarithmic(self):
        """BK average per-Majorana weight must be O(log N): at N=32 it is
        far below JW's linear growth."""
        bk = bravyi_kitaev(32).total_majorana_weight / 64
        jw = jordan_wigner(32).total_majorana_weight / 64
        assert bk < jw / 2

    def test_single_mode_all_equal(self):
        for builder in ALL_BUILDERS:
            assert [s.label() for s in builder(1).strings] == ["X", "Y"]

    def test_ternary_tree_weight_near_log3(self):
        """Ternary-tree strings have weight ceil(log3(2N+1)) each."""
        import math

        for num_modes in (3, 4, 13):
            encoding = ternary_tree(num_modes)
            bound = math.ceil(math.log(2 * num_modes + 1, 3))
            assert all(s.weight <= bound for s in encoding.strings)

    def test_ternary_tree_beats_bk_at_scale(self):
        assert (
            ternary_tree(16).total_majorana_weight
            < bravyi_kitaev(16).total_majorana_weight
        )
