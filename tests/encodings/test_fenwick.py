"""Tests for the Fenwick tree index sets behind Bravyi-Kitaev."""

import pytest

from repro.encodings import FenwickTree


class TestStructure:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FenwickTree(0)

    def test_root_is_last_mode(self):
        for n in (1, 2, 3, 4, 7, 8):
            tree = FenwickTree(n)
            assert tree.parent[n - 1] is None

    def test_known_tree_n4(self):
        tree = FenwickTree(4)
        assert tree.parent == [1, 3, 3, None]
        assert tree.children[3] == [1, 2]
        assert tree.children[1] == [0]

    def test_blocks_are_contiguous_and_end_at_node(self):
        """Node k stores a contiguous block [lo, k]; blocks of siblings tile."""
        for n in (1, 2, 3, 5, 8, 13, 16):
            tree = FenwickTree(n)
            for node in range(n):
                low, high = tree.block(node)
                assert 0 <= low <= high == node

    def test_block_sizes_partition_via_children(self):
        """Block(node) = {node} ∪ disjoint union of children blocks."""
        for n in (4, 7, 8, 11):
            tree = FenwickTree(n)
            for node in range(n):
                low, high = tree.block(node)
                covered = {node}
                for child in tree.children[node]:
                    c_low, c_high = tree.block(child)
                    covered.update(range(c_low, c_high + 1))
                assert covered == set(range(low, high + 1))


class TestIndexSets:
    def test_update_set_n4(self):
        tree = FenwickTree(4)
        assert tree.update_set(0) == [1, 3]
        assert tree.update_set(1) == [3]
        assert tree.update_set(2) == [3]
        assert tree.update_set(3) == []

    def test_parity_set_n4(self):
        tree = FenwickTree(4)
        assert tree.parity_set(0) == []
        assert tree.parity_set(1) == [0]
        assert tree.parity_set(2) == [1]
        assert tree.parity_set(3) == [1, 2]

    def test_parity_set_tiles_prefix(self):
        """The blocks of P(j) must tile [0, j-1] exactly, disjointly."""
        for n in (2, 3, 5, 8, 12, 16):
            tree = FenwickTree(n)
            for mode in range(n):
                covered: set[int] = set()
                for node in tree.parity_set(mode):
                    low, high = tree.block(node)
                    block = set(range(low, high + 1))
                    assert not (covered & block)
                    covered |= block
                assert covered == set(range(mode))

    def test_flip_set_subset_of_parity_set(self):
        for n in (2, 4, 7, 9, 16):
            tree = FenwickTree(n)
            for mode in range(n):
                assert set(tree.flip_set(mode)) <= set(tree.parity_set(mode))

    def test_remainder_set_is_difference(self):
        for n in (4, 8, 11):
            tree = FenwickTree(n)
            for mode in range(n):
                expected = sorted(
                    set(tree.parity_set(mode)) - set(tree.flip_set(mode))
                )
                assert tree.remainder_set(mode) == expected

    def test_update_set_contains_mode_in_block(self):
        """Every ancestor's block contains the mode (that is why it updates)."""
        for n in (3, 6, 10):
            tree = FenwickTree(n)
            for mode in range(n):
                for ancestor in tree.update_set(mode):
                    low, high = tree.block(ancestor)
                    assert low <= mode <= high
