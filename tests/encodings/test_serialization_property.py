"""Property tests for encoding serialization over arbitrary valid encodings."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings import random_encoding
from repro.encodings.serialization import (
    encoding_from_dict,
    encoding_to_dict,
    load_encoding,
    save_encoding,
)
from repro.fermion import FermionOperator


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 10_000))
    def test_dict_round_trip_preserves_strings(self, num_modes, seed):
        encoding = random_encoding(num_modes, seed=seed)
        rebuilt = encoding_from_dict(encoding_to_dict(encoding))
        assert [s.label() for s in rebuilt.strings] == [
            s.label() for s in encoding.strings
        ]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(0, 5000))
    def test_round_trip_preserves_operator_images(self, num_modes, seed):
        """Serialization must preserve semantics, not only labels: the
        encoded number operator must be identical."""
        encoding = random_encoding(num_modes, seed=seed)
        rebuilt = encoding_from_dict(encoding_to_dict(encoding))
        original = encoding.encode(FermionOperator.number(0))
        recovered = rebuilt.encode(FermionOperator.number(0))
        assert original.approx_equal(recovered)

    @settings(max_examples=15, deadline=None)
    @given(num_modes=st.integers(1, 4), seed=st.integers(0, 5000))
    def test_file_round_trip(self, tmp_path_factory, num_modes, seed):
        encoding = random_encoding(num_modes, seed=seed)
        path = tmp_path_factory.mktemp("enc") / "encoding.json"
        save_encoding(encoding, path)
        loaded = load_encoding(path)
        assert [s.label() for s in loaded.strings] == [
            s.label() for s in encoding.strings
        ]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 10_000))
    def test_json_is_stable_text(self, num_modes, seed):
        """The JSON form is deterministic — byte-identical across dumps."""
        encoding = random_encoding(num_modes, seed=seed)
        first = json.dumps(encoding_to_dict(encoding), indent=2)
        second = json.dumps(encoding_to_dict(encoding), indent=2)
        assert first == second
