"""Round-trip tests for the full compilation-result schema."""

import pytest

from repro.core import AnnealingSchedule, solve_hamiltonian_independent, solve_sat_annealing
from repro.encodings.serialization import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.fermion import hubbard_chain


@pytest.fixture(scope="module")
def independent_result(fast_config):
    return solve_hamiltonian_independent(2, fast_config)


@pytest.fixture(scope="module")
def annealed_result(fast_config):
    schedule = AnnealingSchedule(
        initial_temperature=1.0,
        final_temperature=0.4,
        temperature_step=0.2,
        iterations_per_step=5,
    )
    return solve_sat_annealing(
        hubbard_chain(2, periodic=False), fast_config, schedule=schedule, seed=11
    )


class TestIndependentRoundTrip:
    def test_core_fields_preserved(self, independent_result):
        rebuilt = result_from_dict(result_to_dict(independent_result))
        assert rebuilt.method == independent_result.method
        assert rebuilt.weight == independent_result.weight
        assert rebuilt.proved_optimal == independent_result.proved_optimal
        assert [s.label() for s in rebuilt.encoding.strings] == [
            s.label() for s in independent_result.encoding.strings
        ]

    def test_descent_trace_preserved(self, independent_result):
        rebuilt = result_from_dict(result_to_dict(independent_result))
        original = independent_result.descent
        assert rebuilt.descent.sat_calls == original.sat_calls
        assert rebuilt.descent.strategy == original.strategy
        assert rebuilt.descent.weight == original.weight
        assert rebuilt.descent.proved_optimal == original.proved_optimal
        assert rebuilt.descent.solve_time_s == original.solve_time_s
        assert rebuilt.descent.construct_time_s == original.construct_time_s
        for got, expected in zip(rebuilt.descent.steps, original.steps):
            assert got.bound == expected.bound
            assert got.status == expected.status
            assert got.achieved_weight == expected.achieved_weight
            assert got.conflicts == expected.conflicts
            assert got.repairs == expected.repairs

    def test_verification_preserved_when_present(self, independent_result):
        independent_result.verify()
        rebuilt = result_from_dict(result_to_dict(independent_result))
        assert rebuilt.verification is not None
        assert rebuilt.verification.valid
        assert (
            rebuilt.verification.vacuum_preservation
            == independent_result.verification.vacuum_preservation
        )

    def test_file_round_trip(self, independent_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(independent_result, path)
        loaded = load_result(path)
        assert loaded.weight == independent_result.weight
        assert loaded.descent.sat_calls == independent_result.descent.sat_calls


class TestAnnealingRoundTrip:
    def test_annealing_record_preserved(self, annealed_result):
        rebuilt = result_from_dict(result_to_dict(annealed_result))
        original = annealed_result.annealing
        assert rebuilt.annealing is not None
        assert rebuilt.annealing.weight == original.weight
        assert rebuilt.annealing.initial_weight == original.initial_weight
        assert rebuilt.annealing.mode_order == original.mode_order
        assert rebuilt.annealing.accepted_moves == original.accepted_moves
        assert rebuilt.annealing.attempted_moves == original.attempted_moves
        assert rebuilt.annealing.history == original.history
        assert rebuilt.method == "sat+annealing"
        assert rebuilt.proved_optimal is False

    def test_both_encodings_preserved(self, annealed_result):
        """The result carries the annealed encoding AND the independent
        descent's encoding; both must survive."""
        rebuilt = result_from_dict(result_to_dict(annealed_result))
        assert [s.label() for s in rebuilt.encoding.strings] == [
            s.label() for s in annealed_result.encoding.strings
        ]
        assert [s.label() for s in rebuilt.descent.encoding.strings] == [
            s.label() for s in annealed_result.descent.encoding.strings
        ]


class TestSchemaVersioning:
    def test_unknown_version_rejected(self, independent_result):
        data = result_to_dict(independent_result)
        data["result_format_version"] = 99
        with pytest.raises(ValueError):
            result_from_dict(data)

    def test_missing_version_rejected(self, independent_result):
        data = result_to_dict(independent_result)
        del data["result_format_version"]
        with pytest.raises(ValueError):
            result_from_dict(data)

    def test_invalid_encoding_caught_when_validating(self, independent_result):
        data = result_to_dict(independent_result)
        # break anticommutation: duplicate the first string everywhere
        first = data["encoding"]["majorana_strings"][0]
        data["encoding"]["majorana_strings"] = [first] * len(
            data["encoding"]["majorana_strings"]
        )
        with pytest.raises(ValueError):
            result_from_dict(data, validate=True)
