"""Tests for the MajoranaEncoding container."""

import numpy as np
import pytest

from repro.encodings import EncodingError, MajoranaEncoding, jordan_wigner
from repro.fermion import FermionOperator, MajoranaPolynomial, h2_hamiltonian
from repro.paulis import PauliString, pauli_sum_matrix


def _strings(*labels):
    return [PauliString.from_label(label) for label in labels]


class TestValidation:
    def test_accepts_valid_family(self):
        MajoranaEncoding(_strings("IX", "IY", "XZ", "YZ"))

    def test_rejects_odd_count(self):
        with pytest.raises(EncodingError):
            MajoranaEncoding(_strings("X", "Y", "Z"))

    def test_rejects_commuting_pair(self):
        with pytest.raises(EncodingError):
            MajoranaEncoding(_strings("XX", "YY", "XZ", "YZ"))

    def test_rejects_identity_string(self):
        with pytest.raises(EncodingError):
            MajoranaEncoding(_strings("II", "XY", "YX", "ZZ"))

    def test_rejects_length_mismatch(self):
        with pytest.raises(EncodingError):
            MajoranaEncoding([PauliString.from_label("X"), PauliString.from_label("XY")])

    def test_rejects_empty(self):
        with pytest.raises(EncodingError):
            MajoranaEncoding([])

    def test_validate_false_skips_checks(self):
        encoding = MajoranaEncoding(_strings("XX", "YY"), validate=False)
        assert encoding.num_modes == 1


class TestOperatorImages:
    def test_annihilation_composition(self):
        encoding = jordan_wigner(2)
        a0 = encoding.annihilation(0)
        assert a0.coefficient(PauliString.from_label("IX")) == 0.5
        assert a0.coefficient(PauliString.from_label("IY")) == 0.5j

    def test_creation_is_conjugate(self):
        encoding = jordan_wigner(2)
        adag = encoding.creation(1)
        assert adag.coefficient(PauliString.from_label("YZ")) == -0.5j

    def test_monomial_image_caches(self):
        encoding = jordan_wigner(2)
        first = encoding.monomial_image((0, 1))
        second = encoding.monomial_image((0, 1))
        assert first == second

    def test_monomial_image_phase_correct(self):
        encoding = jordan_wigner(1)  # m_0 = X, m_1 = Y
        string, phase = encoding.monomial_image((0, 1))
        assert string.label() == "Z"
        assert phase == 1j  # X·Y = iZ


class TestEncode:
    def test_encode_fermionic_hamiltonian_includes_constant(self):
        h2 = h2_hamiltonian()
        encoded = jordan_wigner(4).encode(h2)
        identity_coefficient = encoded.coefficient(PauliString.identity(4))
        assert identity_coefficient.real != 0.0

    def test_encode_fermion_operator(self):
        encoded = jordan_wigner(2).encode(FermionOperator.number(0))
        # n_0 = (I - Z_0)/2 under JW
        assert encoded.coefficient(PauliString.identity(2)) == pytest.approx(0.5)
        assert encoded.coefficient(PauliString.from_label("IZ")) == pytest.approx(-0.5)

    def test_encode_majorana_polynomial(self):
        polynomial = MajoranaPolynomial({(0,): 2.0})
        encoded = jordan_wigner(2).encode(polynomial)
        assert encoded.coefficient(PauliString.from_label("IX")) == 2.0

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            jordan_wigner(2).encode("not a hamiltonian")

    def test_encode_rejects_out_of_range_majorana(self):
        polynomial = MajoranaPolynomial({(9,): 1.0})
        with pytest.raises(EncodingError):
            jordan_wigner(2).encode(polynomial)


class TestWeights:
    def test_total_majorana_weight(self):
        assert jordan_wigner(2).total_majorana_weight == 6

    def test_hamiltonian_pauli_weight_excludes_identity(self):
        encoding = jordan_wigner(2)
        weight = encoding.hamiltonian_pauli_weight(FermionOperator.number(0))
        assert weight == 1  # only the Z_0 term counts


class TestModeReordering:
    def test_identity_order_is_noop(self):
        encoding = jordan_wigner(3)
        same = encoding.with_mode_order([0, 1, 2])
        assert [s.label() for s in same.strings] == [s.label() for s in encoding.strings]

    def test_swap_modes_moves_pairs_together(self):
        encoding = jordan_wigner(2)
        swapped = encoding.swap_modes(0, 1)
        assert swapped.strings[0] == encoding.strings[2]
        assert swapped.strings[1] == encoding.strings[3]
        assert swapped.strings[2] == encoding.strings[0]

    def test_swap_preserves_validity_and_vacuum(self):
        encoding = jordan_wigner(3).swap_modes(0, 2)
        encoding.validate()
        assert encoding.preserves_vacuum()

    def test_swap_preserves_spectrum(self):
        """Re-pairing plus relabeled Hamiltonian gives the same physics:
        encode the swapped Hamiltonian with the swapped encoding."""
        h2 = h2_hamiltonian()
        encoding = jordan_wigner(4)
        swapped = encoding.swap_modes(1, 3)
        original = np.linalg.eigvalsh(pauli_sum_matrix(encoding.encode(h2)))
        permuted = np.linalg.eigvalsh(pauli_sum_matrix(swapped.encode(h2)))
        # Same multiset of eigenvalues: mode relabeling is a unitary.
        assert np.allclose(original, permuted, atol=1e-9)

    def test_invalid_permutation_rejected(self):
        with pytest.raises(EncodingError):
            jordan_wigner(2).with_mode_order([0, 0])
