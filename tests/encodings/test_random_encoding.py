"""Tests for Clifford-scrambled random encodings — and property tests that
use them as a generator of arbitrary valid encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import verify_encoding
from repro.encodings import bravyi_kitaev, random_encoding
from repro.fermion import FermionOperator, hubbard_chain
from repro.paulis import pauli_sum_matrix


class TestGenerator:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 10_000))
    def test_always_valid(self, num_modes, seed):
        encoding = random_encoding(num_modes, seed=seed)
        report = verify_encoding(encoding)
        assert report.anticommutativity
        assert report.algebraic_independence

    def test_seed_reproducible(self):
        a = random_encoding(3, seed=9)
        b = random_encoding(3, seed=9)
        assert [s.label() for s in a.strings] == [s.label() for s in b.strings]

    def test_seeds_differ(self):
        a = random_encoding(3, seed=1)
        b = random_encoding(3, seed=2)
        assert [s.label() for s in a.strings] != [s.label() for s in b.strings]

    def test_custom_base(self):
        encoding = random_encoding(3, seed=5, base=bravyi_kitaev(3))
        assert verify_encoding(encoding).valid

    def test_base_mode_mismatch_rejected(self):
        with pytest.raises(ValueError):
            random_encoding(3, base=bravyi_kitaev(4))

    def test_zero_depth_is_base(self):
        from repro.encodings import jordan_wigner

        encoding = random_encoding(2, seed=3, depth=0)
        assert [s.label() for s in encoding.strings] == [
            s.label() for s in jordan_wigner(2).strings
        ]


class TestScrambledEncodingsAsOracle:
    """Any valid encoding must satisfy these — scrambles are adversarial
    instances the constructive baselines would never produce."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 3000))
    def test_spectrum_invariance(self, seed):
        """Encoded Hamiltonian spectra are encoding-independent."""
        hamiltonian = hubbard_chain(2, periodic=False)
        reference = np.linalg.eigvalsh(
            pauli_sum_matrix(bravyi_kitaev(4).encode(hamiltonian))
        )
        scrambled = random_encoding(4, seed=seed)
        candidate = np.linalg.eigvalsh(
            pauli_sum_matrix(scrambled.encode(hamiltonian))
        )
        assert np.allclose(reference, candidate, atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 3000))
    def test_cars_hold(self, seed):
        """{a_i, a†_j} = δ_ij for scrambled encodings."""
        encoding = random_encoding(2, seed=seed)
        for i in range(2):
            for j in range(2):
                anticommutator = (
                    encoding.annihilation(i) * encoding.creation(j)
                    + encoding.creation(j) * encoding.annihilation(i)
                )
                expected = np.eye(4) if i == j else np.zeros((4, 4))
                assert np.allclose(pauli_sum_matrix(anticommutator), expected)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 3000))
    def test_number_operator_spectrum(self, seed):
        """n_0 has eigenvalues {0, 1} under any valid encoding."""
        encoding = random_encoding(2, seed=seed)
        matrix = pauli_sum_matrix(encoding.encode(FermionOperator.number(0)))
        eigenvalues = np.sort(np.linalg.eigvalsh(matrix))
        assert np.allclose(eigenvalues, [0, 0, 1, 1], atol=1e-9)
