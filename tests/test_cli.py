"""Tests for the command-line interface and encoding serialization."""

import json

import pytest

from repro.cli import main, parse_model
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.encodings.serialization import (
    encoding_from_dict,
    encoding_to_dict,
    load_encoding,
    save_encoding,
)


class TestParseModel:
    def test_h2(self):
        assert parse_model("h2").num_modes == 4

    def test_hubbard_chain(self):
        assert parse_model("hubbard:3").num_modes == 6

    def test_hubbard_lattice(self):
        assert parse_model("hubbard:2x2").num_modes == 8

    def test_syk(self):
        assert parse_model("syk:4").num_modes == 4

    def test_electronic(self):
        assert parse_model("electronic:6").num_modes == 6

    def test_missing_parameter_rejected(self):
        with pytest.raises(ValueError):
            parse_model("hubbard")

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            parse_model("ising:4")


class TestSerialization:
    def test_round_trip_dict(self):
        encoding = bravyi_kitaev(3)
        rebuilt = encoding_from_dict(encoding_to_dict(encoding))
        assert [s.label() for s in rebuilt.strings] == [
            s.label() for s in encoding.strings
        ]
        assert rebuilt.name == encoding.name

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "enc.json"
        save_encoding(jordan_wigner(2), path)
        loaded = load_encoding(path)
        assert [s.label() for s in loaded.strings] == ["IX", "IY", "XZ", "YZ"]

    def test_version_checked(self):
        data = encoding_to_dict(jordan_wigner(2))
        data["format_version"] = 99
        with pytest.raises(ValueError):
            encoding_from_dict(data)

    def test_mode_consistency_checked(self):
        data = encoding_to_dict(jordan_wigner(2))
        data["num_modes"] = 5
        with pytest.raises(ValueError):
            encoding_from_dict(data)


class TestCliCommands:
    def test_solve_independent(self, capsys, tmp_path):
        output = tmp_path / "enc.json"
        code = main([
            "solve", "--modes", "2", "--budget-s", "30",
            "--output", str(output),
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "weight:          6" in captured
        assert output.exists()
        saved = json.loads(output.read_text())
        assert saved["num_modes"] == 2

    def test_solve_model_annealing(self, capsys):
        code = main([
            "solve", "--model", "hubbard:2", "--method", "sat-anl",
            "--budget-s", "15", "--no-alg",
        ])
        assert code == 0
        assert "sat+annealing" in capsys.readouterr().out

    def test_solve_modes_conflict(self, capsys):
        code = main(["solve", "--model", "h2", "--modes", "3"])
        assert code == 2

    def test_solve_requires_target(self):
        assert main(["solve"]) == 2

    def test_baselines_table(self, capsys):
        code = main(["baselines", "--modes", "4"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("jw", "bk", "parity", "tt"):
            assert name in out

    def test_baselines_with_model(self, capsys):
        code = main(["baselines", "--model", "h2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "H weight" in out

    def test_baselines_requires_target(self):
        assert main(["baselines"]) == 2

    def test_compile_with_baseline(self, capsys):
        code = main(["compile", "--model", "h2", "--encoding", "bk"])
        out = capsys.readouterr().out
        assert code == 0
        assert "gates:" in out

    def test_compile_with_saved_encoding(self, capsys, tmp_path):
        path = tmp_path / "enc.json"
        save_encoding(jordan_wigner(4), path)
        code = main(["compile", "--model", "h2", "--encoding", str(path)])
        assert code == 0

    def test_compile_with_random_encoding(self, capsys):
        code = main(["compile", "--model", "h2", "--encoding", "random:7"])
        assert code == 0

    def test_verify_valid_encoding(self, capsys, tmp_path):
        path = tmp_path / "enc.json"
        save_encoding(bravyi_kitaev(3), path)
        code = main(["verify", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "anticommutativity:       True" in out

    def test_verify_invalid_encoding(self, capsys, tmp_path):
        from repro.encodings import MajoranaEncoding
        from repro.paulis import PauliString

        bad = MajoranaEncoding(
            [PauliString.from_label("XX"), PauliString.from_label("YY")],
            validate=False,
        )
        path = tmp_path / "bad.json"
        save_encoding(bad, path)
        code = main(["verify", str(path)])
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_unknown_model_error_path(self, capsys):
        code = main(["compile", "--model", "nope:3", "--encoding", "bk"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_error_path(self, capsys):
        code = main(["verify", "/nonexistent/enc.json"])
        assert code == 2


class TestCacheCli:
    def _solve_cached(self, tmp_path):
        return main([
            "solve", "--modes", "2", "--budget-s", "30",
            "--cache", str(tmp_path / "cache"),
        ])

    def test_solve_cache_miss_then_hit(self, capsys, tmp_path):
        assert self._solve_cached(tmp_path) == 0
        assert "cache:           miss" in capsys.readouterr().out
        assert self._solve_cached(tmp_path) == 0
        out = capsys.readouterr().out
        assert "cache:           hit" in out
        assert "weight:          6" in out

    def test_cache_ls_empty(self, capsys, tmp_path):
        code = main(["cache", "ls", "--dir", str(tmp_path / "none")])
        assert code == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_ls_and_show(self, capsys, tmp_path):
        self._solve_cached(tmp_path)
        capsys.readouterr()
        assert main(["cache", "ls", "--dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "full-sat/independent" in out
        key = out.splitlines()[2].split("|")[0].strip()
        assert main(["cache", "show", key, "--dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "proved optimal:  True" in out
        assert "majorana strings:" in out

    def test_cache_show_json(self, capsys, tmp_path):
        self._solve_cached(tmp_path)
        capsys.readouterr()
        code = main(["cache", "show", "", "--json",
                     "--dir", str(tmp_path / "cache")])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["entry_format_version"] == 1
        assert data["result"]["weight"] == 6

    def test_cache_show_json_corrupted_entry_fails(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        self._solve_cached(tmp_path)
        entry = next((cache_dir).glob("*/*.json"))
        entry.write_text("{broken")
        capsys.readouterr()
        code = main(["cache", "show", entry.stem[:8], "--json",
                     "--dir", str(cache_dir)])
        assert code == 1
        assert "corrupted" in capsys.readouterr().out

    def test_cache_show_json_deep_corruption_fails(self, capsys, tmp_path):
        """--json must not dump an entry whose inner result payload is
        undecodable, even though the wrapper JSON parses."""
        cache_dir = tmp_path / "cache"
        self._solve_cached(tmp_path)
        entry = next(cache_dir.glob("*/*.json"))
        data = json.loads(entry.read_text())
        data["result"]["result_format_version"] = 999
        entry.write_text(json.dumps(data))
        capsys.readouterr()
        code = main(["cache", "show", entry.stem[:8], "--json",
                     "--dir", str(cache_dir)])
        assert code == 1
        assert "could not be decoded" in capsys.readouterr().err

    def test_cache_show_missing_prefix(self, capsys, tmp_path):
        self._solve_cached(tmp_path)
        capsys.readouterr()
        code = main(["cache", "show", "zzzz", "--dir", str(tmp_path / "cache")])
        assert code == 2
        assert "no cache entry" in capsys.readouterr().err

    def test_cache_gc_reports(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        self._solve_cached(tmp_path)
        (cache_dir / "zz").mkdir(parents=True)
        (cache_dir / "zz" / ("z" * 64 + ".json")).write_text("junk")
        capsys.readouterr()
        code = main(["cache", "gc", "--dir", str(cache_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "removed 1 entries" in out
        assert "corrupted" in out


class TestProofCli:
    def test_solve_proof_writes_default_artifact(self, capsys, tmp_path,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["solve", "--modes", "2", "--budget-s", "30", "--proof"])
        out = capsys.readouterr().out
        assert code == 0
        assert "proof:           sha256 " in out
        artifacts = list(tmp_path.glob("proof-*.json"))
        assert len(artifacts) == 1
        assert main(["verify-proof", str(artifacts[0])]) == 0
        assert "verdict:         OK" in capsys.readouterr().out

    def test_proof_out_implies_proof(self, capsys, tmp_path):
        artifact = tmp_path / "opt.json"
        code = main(["solve", "--modes", "2", "--budget-s", "30",
                     "--proof-out", str(artifact)])
        assert code == 0
        assert artifact.exists()
        assert f"saved proof to {artifact}" in capsys.readouterr().out
        assert main(["verify-proof", str(artifact)]) == 0

    def test_solve_proof_with_cache_stores_and_resolves_sha(self, capsys,
                                                            tmp_path):
        cache_dir = tmp_path / "cache"
        code = main(["solve", "--modes", "2", "--budget-s", "30", "--proof",
                     "--cache", str(cache_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "proof artifact:  " in out
        sha_prefix = out.split("proof:           sha256 ")[1][:12]
        code = main(["verify-proof", sha_prefix, "--dir", str(cache_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict:         OK" in out
        assert "assumptions:" in out

    def test_cached_hit_can_still_export_the_artifact(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["solve", "--modes", "2", "--budget-s", "30", "--proof",
                     "--cache", str(cache_dir)]) == 0
        capsys.readouterr()
        artifact = tmp_path / "exported.json"
        code = main(["solve", "--modes", "2", "--budget-s", "30",
                     "--cache", str(cache_dir), "--proof-out", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "cache:           hit" in out
        assert artifact.exists()
        assert main(["verify-proof", str(artifact)]) == 0

    def test_corrupted_artifact_is_rejected(self, capsys, tmp_path):
        artifact = tmp_path / "opt.json"
        assert main(["solve", "--modes", "2", "--budget-s", "30",
                     "--proof-out", str(artifact)]) == 0
        capsys.readouterr()
        data = json.loads(artifact.read_text())
        # Drop the refuting empty-clause line — the one mutation every
        # DRAT checker must catch.
        lines = data["proof"].splitlines()
        assert lines[-1].strip() == "0"
        data["proof"] = "\n".join(lines[:-1]) + "\n"
        artifact.write_text(json.dumps(data, sort_keys=True) + "\n")
        code = main(["verify-proof", str(artifact)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out
        # A structurally broken artifact must fail loudly too.
        artifact.write_text("{not json")
        assert main(["verify-proof", str(artifact)]) == 2

    def test_corrupted_cache_artifact_is_rejected(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["solve", "--modes", "2", "--budget-s", "30", "--proof",
                     "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        sha_prefix = out.split("proof:           sha256 ")[1][:12]
        proof_file = next((cache_dir / "proofs").glob("*.json"))
        data = json.loads(proof_file.read_text())
        data["meta"]["bound"] = 99  # any content change breaks the address
        proof_file.write_text(json.dumps(data, sort_keys=True) + "\n")
        code = main(["verify-proof", sha_prefix, "--dir", str(cache_dir)])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_verify_proof_unknown_reference(self, capsys, tmp_path):
        code = main(["verify-proof", "feedbeef", "--dir", str(tmp_path)])
        assert code == 2
        assert "no file or cached proof" in capsys.readouterr().err

    def test_proof_without_unsat_reports_no_capture(self, capsys):
        # A conflict budget of 1 cannot finish the final UNSAT rung.
        code = main(["solve", "--modes", "2", "--proof",
                     "--max-conflicts", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "proof:           not captured" in out


class TestBatchCli:
    def test_batch_jobs_file_dedups(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"modes": 2, "method": "independent"},
            {"modes": 2, "method": "independent", "label": "again"},
        ]))
        code = main([
            "batch", str(jobs), "--budget-s", "30",
            "--cache", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "deduplicated" in out
        assert "2 jobs" in out
        assert "1 stores" in out

    def test_batch_requires_jobs(self, capsys):
        code = main(["batch"])
        assert code == 2
        assert "no jobs" in capsys.readouterr().err

    def test_batch_rejects_bad_method(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([{"modes": 2, "method": "psychic"}]))
        assert main(["batch", str(jobs)]) == 2

    def test_batch_rejects_model_for_independent(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([{"model": "h2", "method": "independent"}]))
        assert main(["batch", str(jobs)]) == 2

    def test_batch_rejects_non_list_file(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps({"model": "h2"}))
        assert main(["batch", str(jobs)]) == 2

    def test_batch_directory_as_jobs_file(self, capsys, tmp_path):
        code = main(["batch", str(tmp_path)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        import pytest as _pytest

        with _pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        import repro

        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestDevicesCli:
    def test_devices_ls(self, capsys):
        code = main(["devices", "ls"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ibm-falcon-27" in out
        assert "ionq-aria-25" in out
        assert "parametric specs" in out

    def test_devices_show_preset(self, capsys):
        code = main(["devices", "show", "ibmq-manila"])
        out = capsys.readouterr().out
        assert code == 0
        assert "qubits:    5" in out
        assert "couplers:" in out
        assert "objective weights" in out

    def test_devices_show_parametric(self, capsys):
        code = main(["devices", "show", "grid-3x3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "qubits:    9" in out
        assert "diameter:  4" in out

    def test_devices_show_unknown(self, capsys):
        code = main(["devices", "show", "vaporware-9000"])
        assert code == 2
        assert "unknown device" in capsys.readouterr().err


class TestDeviceFlows:
    def test_solve_with_device_reports_routed_cost(self, capsys):
        code = main([
            "solve", "--modes", "2", "--device", "grid-2x2", "--budget-s", "30",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "device:          grid-2x2 (4 qubits)" in out
        assert "routed 2q gates:" in out
        assert "routed depth:" in out

    def test_solve_with_too_small_device(self, capsys):
        code = main(["solve", "--modes", "4", "--device", "linear-3"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_solve_device_cache_round_trip(self, capsys, tmp_path):
        argv = [
            "solve", "--modes", "2", "--device", "linear-2", "--budget-s", "30",
            "--cache", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert "cache:           miss" in capsys.readouterr().out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache:           hit" in out
        assert "routed 2q gates:" in out

    def test_compile_with_device(self, capsys):
        code = main([
            "compile", "--model", "h2", "--encoding", "bk",
            "--device", "ibmq-manila",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "device:    ibmq-manila (5 qubits)" in out
        assert "routed:" in out

    def test_batch_with_device_adds_columns(self, capsys, tmp_path):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"modes": 2, "method": "independent"},
            {"modes": 2, "method": "independent", "device": "grid-2x2"},
        ]))
        code = main(["batch", str(jobs), "--budget-s", "30",
                     "--device", "linear-2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "routed 2q" in out
        assert "grid-2x2" in out
        assert "linear-2" in out
