"""Tests for dense-matrix realisations."""

import numpy as np
from hypothesis import given, settings

from repro.paulis import PauliString, PauliSum, pauli_string_matrix, pauli_sum_matrix
from tests.conftest import pauli_strings


class TestStringMatrix:
    def test_qubit_zero_is_least_significant(self):
        # ZI ⊗ ... : label "IZ" has Z on qubit 0
        matrix = pauli_string_matrix(PauliString.from_label("IZ"))
        assert np.allclose(np.diag(matrix), [1, -1, 1, -1])

    def test_identity(self):
        assert np.allclose(pauli_string_matrix(PauliString.identity(2)), np.eye(4))

    @settings(max_examples=60, deadline=None)
    @given(pauli_strings(max_qubits=4))
    def test_unitary_and_hermitian(self, string):
        matrix = pauli_string_matrix(string)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0]))
        assert np.allclose(matrix, matrix.conj().T)

    @settings(max_examples=60, deadline=None)
    @given(pauli_strings(max_qubits=4))
    def test_traceless_unless_identity(self, string):
        trace = np.trace(pauli_string_matrix(string))
        if string.is_identity:
            assert trace == 2**string.num_qubits
        else:
            assert abs(trace) < 1e-12


class TestSumMatrix:
    def test_linear(self):
        operator = PauliSum.from_label("X", 2.0) + PauliSum.from_label("Z", -1.0)
        expected = 2.0 * pauli_string_matrix(PauliString.from_label("X")) - pauli_string_matrix(
            PauliString.from_label("Z")
        )
        assert np.allclose(pauli_sum_matrix(operator), expected)

    def test_zero_sum(self):
        assert np.allclose(pauli_sum_matrix(PauliSum.zero(2)), np.zeros((4, 4)))
