"""Tests for GF(2) symplectic linear algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paulis import (
    PauliString,
    are_algebraically_independent,
    dependent_subset,
    gf2_rank,
    pairwise_anticommuting,
    strings_rank,
)
from repro.paulis.symplectic import gf2_dependent_subset


class TestGf2Rank:
    def test_empty_rank_zero(self):
        assert gf2_rank([]) == 0

    def test_single_vector(self):
        assert gf2_rank([0b101]) == 1

    def test_zero_vector_contributes_nothing(self):
        assert gf2_rank([0, 0b1]) == 1

    def test_dependent_triple(self):
        assert gf2_rank([0b01, 0b10, 0b11]) == 2

    def test_independent_basis(self):
        assert gf2_rank([1 << k for k in range(8)]) == 8

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 255), max_size=10))
    def test_rank_bounded(self, vectors):
        rank = gf2_rank(vectors)
        assert 0 <= rank <= min(len(vectors), 8)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(1, 255), min_size=1, max_size=8))
    def test_rank_invariant_under_duplication(self, vectors):
        assert gf2_rank(vectors) == gf2_rank(vectors + vectors)


class TestDependentSubset:
    def test_independent_returns_none(self):
        assert gf2_dependent_subset([0b01, 0b10]) is None

    def test_finds_xor_zero_subset(self):
        vectors = [0b011, 0b101, 0b110]
        subset = gf2_dependent_subset(vectors)
        assert subset is not None
        accumulator = 0
        for index in subset:
            accumulator ^= vectors[index]
        assert accumulator == 0

    def test_zero_vector_is_singleton_dependency(self):
        assert gf2_dependent_subset([0]) == [0]

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=12))
    def test_certificate_is_valid(self, vectors):
        subset = gf2_dependent_subset(vectors)
        if subset is None:
            assert gf2_rank(vectors) == len(vectors)
        else:
            accumulator = 0
            for index in subset:
                accumulator ^= vectors[index]
            assert accumulator == 0
            assert len(subset) >= 1


class TestStringIndependence:
    def test_jw_strings_independent(self):
        strings = [
            PauliString.from_label("IX"),
            PauliString.from_label("IY"),
            PauliString.from_label("XZ"),
            PauliString.from_label("YZ"),
        ]
        assert are_algebraically_independent(strings)
        assert strings_rank(strings) == 4

    def test_product_closure_is_dependent(self):
        x = PauliString.from_label("X")
        y = PauliString.from_label("Y")
        z = PauliString.from_label("Z")
        # XYZ = iI: the three together are dependent
        assert not are_algebraically_independent([x, y, z])
        subset = dependent_subset([x, y, z])
        assert subset == [0, 1, 2]

    def test_duplicate_strings_dependent(self):
        x = PauliString.from_label("XI")
        assert not are_algebraically_independent([x, x])

    def test_identity_string_dependent(self):
        assert not are_algebraically_independent([PauliString.identity(2)])


class TestPairwiseAnticommuting:
    def test_accepts_anticommuting_family(self):
        strings = [PauliString.from_label(s) for s in ("X", "Y", "Z")]
        assert pairwise_anticommuting(strings)

    def test_rejects_commuting_pair(self):
        strings = [PauliString.from_label(s) for s in ("XX", "YY")]
        assert not pairwise_anticommuting(strings)

    def test_empty_and_singleton_trivially_pass(self):
        assert pairwise_anticommuting([])
        assert pairwise_anticommuting([PauliString.from_label("X")])
