"""Unit and property tests for PauliSum."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paulis import PauliString, PauliSum, pauli_sum_matrix, sum_of


def _random_sum(rng: np.random.Generator, num_qubits: int, terms: int) -> PauliSum:
    result = PauliSum(num_qubits)
    for _ in range(terms):
        label = "".join(rng.choice(list("IXYZ")) for _ in range(num_qubits))
        result = result + PauliSum.from_label(label, complex(rng.normal(), rng.normal()))
    return result


class TestConstruction:
    def test_zero(self):
        assert PauliSum.zero(2).is_zero

    def test_identity(self):
        operator = PauliSum.identity(2, 3.0)
        assert operator.coefficient(PauliString.identity(2)) == 3.0

    def test_from_label(self):
        operator = PauliSum.from_label("XY", 2.0)
        assert operator.coefficient(PauliString.from_label("XY")) == 2.0

    def test_mismatched_term_length_rejected(self):
        with pytest.raises(ValueError):
            PauliSum(2, {PauliString.from_label("XXX"): 1.0})


class TestArithmetic:
    def test_addition_combines_terms(self):
        a = PauliSum.from_label("XX", 1.0)
        b = PauliSum.from_label("XX", 2.0)
        assert (a + b).coefficient(PauliString.from_label("XX")) == 3.0

    def test_cancellation_removes_term(self):
        a = PauliSum.from_label("ZZ", 1.0)
        b = PauliSum.from_label("ZZ", -1.0)
        assert (a + b).is_zero

    def test_scalar_multiplication(self):
        a = PauliSum.from_label("X", 2.0) * 3.0
        assert a.coefficient(PauliString.from_label("X")) == 6.0
        assert (2.0 * PauliSum.from_label("X")).coefficient(PauliString.from_label("X")) == 2.0

    def test_negation(self):
        assert (-PauliSum.from_label("Y", 1.5)).coefficient(PauliString.from_label("Y")) == -1.5

    def test_product_tracks_phases(self):
        x = PauliSum.from_label("X")
        y = PauliSum.from_label("Y")
        product = x * y
        assert product.coefficient(PauliString.from_label("Z")) == 1j

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PauliSum.from_label("X") + PauliSum.from_label("XX")

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 3), st.integers(0, 4), st.integers(0, 4), st.integers(0, 5))
    def test_ring_axioms_against_matrices(self, qubits, terms_a, terms_b, seed):
        rng = np.random.default_rng(seed)
        a = _random_sum(rng, qubits, terms_a)
        b = _random_sum(rng, qubits, terms_b)
        assert np.allclose(
            pauli_sum_matrix(a + b), pauli_sum_matrix(a) + pauli_sum_matrix(b)
        )
        assert np.allclose(
            pauli_sum_matrix(a * b), pauli_sum_matrix(a) @ pauli_sum_matrix(b)
        )


class TestWeightsAndStructure:
    def test_total_weight_ignores_coefficients(self):
        operator = PauliSum.from_label("XXI", 0.1) + PauliSum.from_label("IIZ", 9.0)
        assert operator.total_weight == 3

    def test_without_identity(self):
        operator = PauliSum.identity(2, 5.0) + PauliSum.from_label("XI", 1.0)
        trimmed = operator.without_identity()
        assert len(trimmed) == 1
        assert trimmed.total_weight == 1

    def test_is_hermitian(self):
        assert PauliSum.from_label("XZ", 1.0).is_hermitian()
        assert not PauliSum.from_label("XZ", 1j).is_hermitian()

    def test_hermitian_part_drops_imaginary_dust(self):
        operator = PauliSum.from_label("X", 1.0 + 1e-15j).hermitian_part()
        assert operator.is_hermitian(tolerance=0.0)

    def test_sorted_terms_deterministic(self):
        operator = PauliSum.from_label("ZZ") + PauliSum.from_label("XX")
        labels = [string.label() for string, _ in operator.sorted_terms()]
        assert labels == ["XX", "ZZ"]


class TestHelpers:
    def test_sum_of(self):
        total = sum_of([PauliSum.from_label("X"), PauliSum.from_label("X")])
        assert total.coefficient(PauliString.from_label("X")) == 2.0

    def test_sum_of_empty_rejected(self):
        with pytest.raises(ValueError):
            sum_of([])

    def test_approx_equal(self):
        a = PauliSum.from_label("X", 1.0)
        b = PauliSum.from_label("X", 1.0 + 1e-12)
        assert a.approx_equal(b)

    def test_contains_and_iteration(self):
        operator = PauliSum.from_label("XY", 2.0)
        assert PauliString.from_label("XY") in operator
        assert list(operator)[0][1] == 2.0
