"""Unit and property tests for PauliString."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paulis import PauliString, pauli_string_matrix
from tests.conftest import pauli_string_pairs, pauli_strings


class TestConstruction:
    def test_from_label_rightmost_is_qubit_zero(self):
        string = PauliString.from_label("XZ")
        assert string.operator(0) == "Z"
        assert string.operator(1) == "X"

    def test_label_round_trip(self):
        for label in ("I", "XYZI", "ZZZZ", "IXIY"):
            assert PauliString.from_label(label).label() == label

    def test_identity(self):
        identity = PauliString.identity(3)
        assert identity.is_identity
        assert identity.weight == 0

    def test_single(self):
        string = PauliString.single(4, 2, "Y")
        assert string.label() == "IYII"

    def test_single_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PauliString.single(2, 5, "X")

    def test_from_operators(self):
        string = PauliString.from_operators(3, {0: "X", 2: "Z"})
        assert string.label() == "ZIX"

    def test_mask_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PauliString(2, x_mask=0b100)

    def test_immutable(self):
        string = PauliString.from_label("X")
        with pytest.raises(AttributeError):
            string.x_mask = 3


class TestInspection:
    def test_weight_counts_non_identity(self):
        assert PauliString.from_label("IIXX").weight == 2
        assert PauliString.from_label("XYZ").weight == 3
        assert PauliString.from_label("III").weight == 0

    def test_support(self):
        assert PauliString.from_label("ZIYI").support == (1, 3)

    def test_iter_and_len(self):
        string = PauliString.from_label("XY")
        assert len(string) == 2
        assert list(string) == ["Y", "X"]  # qubit 0 first

    def test_getitem(self):
        assert PauliString.from_label("XY")[0] == "Y"


class TestMultiplication:
    def test_xy_gives_iz(self):
        product, phase = PauliString.from_label("X").multiply(PauliString.from_label("Y"))
        assert product.label() == "Z"
        assert phase == 1j

    def test_yx_gives_minus_iz(self):
        product, phase = PauliString.from_label("Y").multiply(PauliString.from_label("X"))
        assert product.label() == "Z"
        assert phase == -1j

    def test_self_product_is_identity(self):
        for label in ("X", "Y", "Z", "XYZ", "ZIZI"):
            product, phase = PauliString.from_label(label).multiply(
                PauliString.from_label(label)
            )
            assert product.is_identity
            assert phase == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_label("X").multiply(PauliString.from_label("XX"))

    @settings(max_examples=150, deadline=None)
    @given(pauli_string_pairs(max_qubits=4))
    def test_multiplication_matches_matrices(self, pair):
        left, right = pair
        product, phase = left.multiply(right)
        lhs = pauli_string_matrix(left) @ pauli_string_matrix(right)
        rhs = phase * pauli_string_matrix(product)
        assert np.allclose(lhs, rhs)

    @settings(max_examples=100, deadline=None)
    @given(pauli_string_pairs(max_qubits=5))
    def test_phase_is_power_of_i(self, pair):
        _, phase = pair[0].multiply(pair[1])
        assert phase in (1, -1, 1j, -1j)


class TestCommutation:
    def test_xx_with_yy_commutes(self):
        assert PauliString.from_label("XX").commutes_with(PauliString.from_label("YY"))

    def test_xxx_with_yyy_anticommutes(self):
        assert PauliString.from_label("XXX").anticommutes_with(
            PauliString.from_label("YYY")
        )

    @settings(max_examples=150, deadline=None)
    @given(pauli_string_pairs(max_qubits=4))
    def test_commutation_matches_matrices(self, pair):
        left, right = pair
        lhs = pauli_string_matrix(left)
        rhs = pauli_string_matrix(right)
        anticommutator = lhs @ rhs + rhs @ lhs
        assert np.allclose(anticommutator, 0) == left.anticommutes_with(right)

    @settings(max_examples=100, deadline=None)
    @given(pauli_string_pairs(max_qubits=6))
    def test_commutation_is_symmetric(self, pair):
        left, right = pair
        assert left.commutes_with(right) == right.commutes_with(left)


class TestSymplecticKey:
    @settings(max_examples=100, deadline=None)
    @given(pauli_string_pairs(max_qubits=6))
    def test_product_key_is_xor(self, pair):
        left, right = pair
        product, _ = left.multiply(right)
        assert product.symplectic_key() == left.symplectic_key() ^ right.symplectic_key()

    @settings(max_examples=60, deadline=None)
    @given(pauli_strings(max_qubits=6))
    def test_key_uniquely_identifies_string(self, string):
        rebuilt = PauliString(
            string.num_qubits,
            x_mask=string.symplectic_key() & ((1 << string.num_qubits) - 1),
            z_mask=string.symplectic_key() >> string.num_qubits,
        )
        assert rebuilt == string


class TestEquality:
    def test_hashable_and_equal(self):
        assert PauliString.from_label("XY") == PauliString.from_label("XY")
        assert hash(PauliString.from_label("XY")) == hash(PauliString.from_label("XY"))

    def test_distinct_lengths_unequal(self):
        assert PauliString.from_label("X") != PauliString.from_label("IX")

    def test_repr_is_informative(self):
        assert "XY" in repr(PauliString.from_label("XY"))
