"""Unit tests for single-qubit Pauli operator tables."""

import numpy as np
import pytest

from repro.paulis.operators import (
    LABELS,
    MATRICES,
    PRODUCTS,
    label_from_bits,
    operators_anticommute,
    xz_bits,
)


class TestBitEncoding:
    def test_round_trip_all_labels(self):
        for label in "IXYZ":
            assert label_from_bits(*xz_bits(label)) == label

    def test_identity_is_zero_bits(self):
        assert xz_bits("I") == (0, 0)

    def test_y_has_both_bits(self):
        assert xz_bits("Y") == (1, 1)

    def test_rejects_unknown_label(self):
        with pytest.raises(ValueError):
            xz_bits("Q")

    def test_labels_tuple_is_consistent_with_packing(self):
        for label in "IXYZ":
            x_bit, z_bit = xz_bits(label)
            assert LABELS[x_bit + 2 * z_bit] == label


class TestProductTable:
    def test_product_table_matches_matrices(self):
        for (a, b), (phase, c) in PRODUCTS.items():
            lhs = MATRICES[a] @ MATRICES[b]
            rhs = phase * MATRICES[c]
            assert np.allclose(lhs, rhs), (a, b)

    def test_every_pair_covered(self):
        assert len(PRODUCTS) == 16

    def test_products_closed_over_labels(self):
        for _, result in PRODUCTS.values():
            assert result in "IXYZ"


class TestAnticommutation:
    def test_identity_commutes_with_everything(self):
        for label in "IXYZ":
            assert not operators_anticommute("I", label)
            assert not operators_anticommute(label, "I")

    def test_equal_operators_commute(self):
        for label in "XYZ":
            assert not operators_anticommute(label, label)

    def test_distinct_nonidentity_anticommute(self):
        for a in "XYZ":
            for b in "XYZ":
                if a != b:
                    assert operators_anticommute(a, b)

    def test_matches_matrix_anticommutator(self):
        for a in "IXYZ":
            for b in "IXYZ":
                anticommutator = MATRICES[a] @ MATRICES[b] + MATRICES[b] @ MATRICES[a]
                expected = operators_anticommute(a, b)
                assert np.allclose(anticommutator, 0) == expected
