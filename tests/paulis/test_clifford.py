"""Tests for Clifford conjugation — validated against dense matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paulis import PauliString, pauli_string_matrix
from repro.paulis.clifford import (
    CliffordGate,
    conjugate_cnot,
    conjugate_gate,
    conjugate_h,
    conjugate_s,
    conjugate_sequence,
)
from tests.conftest import pauli_strings

_H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)


def _gate_matrix(gate: CliffordGate, num_qubits: int) -> np.ndarray:
    if gate.name == "CNOT":
        control, target = gate.qubits
        dimension = 2**num_qubits
        matrix = np.zeros((dimension, dimension), dtype=complex)
        for index in range(dimension):
            output = index ^ (1 << target) if (index >> control) & 1 else index
            matrix[output, index] = 1.0
        return matrix
    local = _H if gate.name == "H" else _S
    matrix = np.array([[1.0 + 0j]])
    for qubit in range(num_qubits):
        factor = local if qubit == gate.qubits[0] else np.eye(2)
        matrix = np.kron(factor, matrix)
    return matrix


def _check_conjugation(string: PauliString, gate: CliffordGate):
    result, sign = conjugate_gate(string, 1, gate)
    unitary = _gate_matrix(gate, string.num_qubits)
    lhs = unitary @ pauli_string_matrix(string) @ unitary.conj().T
    rhs = sign * pauli_string_matrix(result)
    assert np.allclose(lhs, rhs), (string.label(), gate)


class TestSingleQubitRules:
    @pytest.mark.parametrize("label,expected,sign", [
        ("X", "Z", 1), ("Z", "X", 1), ("Y", "Y", -1), ("I", "I", 1),
    ])
    def test_h_table(self, label, expected, sign):
        result, out_sign = conjugate_h(PauliString.from_label(label), 1, 0)
        assert result.label() == expected
        assert out_sign == sign

    @pytest.mark.parametrize("label,expected,sign", [
        ("X", "Y", 1), ("Y", "X", -1), ("Z", "Z", 1), ("I", "I", 1),
    ])
    def test_s_table(self, label, expected, sign):
        result, out_sign = conjugate_s(PauliString.from_label(label), 1, 0)
        assert result.label() == expected
        assert out_sign == sign

    @settings(max_examples=80, deadline=None)
    @given(pauli_strings(max_qubits=3), st.integers(0, 2), st.sampled_from(["H", "S"]))
    def test_single_qubit_against_matrices(self, string, qubit, name):
        if qubit >= string.num_qubits:
            qubit = 0
        _check_conjugation(string, CliffordGate(name, (qubit,)))


class TestCnotRules:
    def test_x_control_propagates(self):
        result, sign = conjugate_cnot(PauliString.from_label("IX"), 1, 0, 1)
        assert result.label() == "XX"
        assert sign == 1

    def test_z_target_propagates(self):
        result, sign = conjugate_cnot(PauliString.from_label("ZI"), 1, 0, 1)
        assert result.label() == "ZZ"
        assert sign == 1

    def test_xc_zt_picks_sign(self):
        # CNOT (X_c Z_t) CNOT = -Y_c Y_t
        result, sign = conjugate_cnot(PauliString.from_label("ZX"), 1, 0, 1)
        assert result.label() == "YY"
        assert sign == -1

    @settings(max_examples=100, deadline=None)
    @given(pauli_strings(min_qubits=2, max_qubits=3), st.integers(0, 50))
    def test_cnot_against_matrices(self, string, seed):
        rng = np.random.default_rng(seed)
        control, target = rng.choice(string.num_qubits, size=2, replace=False)
        _check_conjugation(string, CliffordGate("CNOT", (int(control), int(target))))


class TestSequences:
    def test_sequence_composes(self):
        gates = [CliffordGate("H", (0,)), CliffordGate("S", (0,))]
        # S H X H S† = S Z S† = Z
        result, sign = conjugate_sequence(PauliString.from_label("X"), gates)
        assert result.label() == "Z"
        assert sign == 1

    @settings(max_examples=40, deadline=None)
    @given(pauli_strings(min_qubits=2, max_qubits=3), st.integers(0, 500))
    def test_random_sequence_against_matrices(self, string, seed):
        rng = np.random.default_rng(seed)
        gates = []
        for _ in range(6):
            kind = rng.integers(0, 3)
            if kind == 2:
                c, t = rng.choice(string.num_qubits, size=2, replace=False)
                gates.append(CliffordGate("CNOT", (int(c), int(t))))
            else:
                gates.append(CliffordGate("HS"[kind], (int(rng.integers(string.num_qubits)),)))
        result, sign = conjugate_sequence(string, gates)
        unitary = np.eye(2**string.num_qubits, dtype=complex)
        for gate in gates:
            unitary = _gate_matrix(gate, string.num_qubits) @ unitary
        lhs = unitary @ pauli_string_matrix(string) @ unitary.conj().T
        assert np.allclose(lhs, sign * pauli_string_matrix(result))

    def test_preserves_commutation_relations(self):
        gates = [CliffordGate("H", (0,)), CliffordGate("CNOT", (0, 1)),
                 CliffordGate("S", (1,))]
        a = PauliString.from_label("XZ")
        b = PauliString.from_label("ZX")
        a2, _ = conjugate_sequence(a, gates)
        b2, _ = conjugate_sequence(b, gates)
        assert a.commutes_with(b) == a2.commutes_with(b2)

    def test_bad_gate_rejected(self):
        with pytest.raises(ValueError):
            CliffordGate("T", (0,))
        with pytest.raises(ValueError):
            CliffordGate("CNOT", (1, 1))
