"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.core import FermihedralConfig, SolverBudget
from repro.paulis import PauliString

def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running fuzz/battery tests for the nightly lane "
        "(deselect with '-m \"not slow\"'; also gated on REPRO_SLOW_TESTS)",
    )


#: Strategy: a Pauli label of bounded length.
pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=6)


@st.composite
def pauli_strings(draw, min_qubits: int = 1, max_qubits: int = 6) -> PauliString:
    label = draw(
        st.text(alphabet="IXYZ", min_size=min_qubits, max_size=max_qubits)
    )
    return PauliString.from_label(label)


@st.composite
def pauli_string_pairs(draw, min_qubits: int = 1, max_qubits: int = 6):
    """Two strings of equal length."""
    length = draw(st.integers(min_qubits, max_qubits))
    labels = st.text(alphabet="IXYZ", min_size=length, max_size=length)
    return PauliString.from_label(draw(labels)), PauliString.from_label(draw(labels))


@pytest.fixture(scope="session")
def fast_config() -> FermihedralConfig:
    """Full SAT config with budgets suitable for unit tests."""
    return FermihedralConfig(budget=SolverBudget(max_conflicts=200_000, time_budget_s=60))


@pytest.fixture(scope="session")
def fast_noalg_config() -> FermihedralConfig:
    return FermihedralConfig(
        algebraic_independence=False,
        budget=SolverBudget(max_conflicts=200_000, time_budget_s=60),
    )
