"""CompilationService queue semantics: dedup, isolation, backpressure, drain.

Runner-injected tests pin down the queue's contract deterministically
(exact compile counts, controlled failures, gated timing); the
real-compile tests at the bottom drive the default engines end to end.
"""

import threading

import pytest

from repro.core import FermihedralCompiler
from repro.service import (
    CompilationService,
    QueueFullError,
    ServiceUnavailableError,
)
from repro.store import CompilationCache
from tests.service.helpers import compiled_outcome


def _spec(modes=2, **extra):
    return {"modes": modes, "method": "independent", **extra}


class _RecordingRunner:
    """A drain engine that counts batches and can block or fail on demand."""

    def __init__(self, gate: threading.Event | None = None,
                 fail_keys=(), raise_error: Exception | None = None):
        self.gate = gate
        self.fail_keys = set(fail_keys)
        self.raise_error = raise_error
        self.batches = []
        self.started = threading.Event()

    @property
    def compiled_keys(self):
        return [key for batch in self.batches for key, _ in batch]

    def __call__(self, batch):
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(30.0), "test gate never released"
        if self.raise_error is not None:
            raise self.raise_error
        self.batches.append(batch)
        return {
            key: compiled_outcome(
                key, job,
                status="error" if key in self.fail_keys else "compiled",
                error="BoomError: induced" if key in self.fail_keys else None,
            )
            for key, job in batch
        }


def _service(runner, **kwargs) -> CompilationService:
    service = CompilationService(runner=runner, **kwargs)
    service.start()
    return service


class TestDeduplication:
    def test_duplicates_compile_exactly_once(self):
        gate = threading.Event()
        runner = _RecordingRunner(gate=gate)
        service = _service(runner)
        first, dedup_first = service.submit(_spec())
        assert not dedup_first and first.status == "queued"
        assert runner.started.wait(10.0)

        # While the job runs, concurrent duplicate submissions collapse.
        records = []
        def submit():
            records.append(service.submit(_spec()))
        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(dedup for _, dedup in records)
        assert all(record.id == first.id for record, _ in records)

        gate.set()
        record = service.wait_for(first.id, timeout=10.0)
        assert record.status == "done"
        assert record.submissions == 9
        # Exactly one compilation for the whole burst.
        assert runner.compiled_keys == [first.id]

        # And resubmitting after completion still does not recompile.
        again, dedup = service.submit(_spec())
        assert dedup and again.status == "done"
        assert runner.compiled_keys == [first.id]
        service.shutdown(wait=True)

    def test_distinct_jobs_not_collapsed(self):
        runner = _RecordingRunner()
        service = _service(runner)
        a, _ = service.submit(_spec(2))
        b, _ = service.submit(_spec(3))
        assert a.id != b.id
        service.wait_for(a.id, timeout=10.0)
        service.wait_for(b.id, timeout=10.0)
        assert sorted(runner.compiled_keys) == sorted([a.id, b.id])
        service.shutdown(wait=True)


class TestFailureIsolation:
    def test_one_bad_job_fails_alone(self):
        # Submit both before starting the dispatcher so they land in one
        # batch deterministically.
        runner = _RecordingRunner()
        service = CompilationService(runner=runner)
        good, _ = service.submit(_spec(2))
        bad, _ = service.submit(_spec(3))
        runner.fail_keys.add(bad.id)
        service.start()
        assert service.wait_for(good.id, timeout=10.0).status == "done"
        failed = service.wait_for(bad.id, timeout=10.0)
        assert failed.status == "failed"
        assert "BoomError" in failed.error
        assert service.stats.completed == 1 and service.stats.failed == 1
        service.shutdown(wait=True)

    def test_runner_crash_fails_only_its_batch(self):
        runner = _RecordingRunner(raise_error=RuntimeError("pool exploded"))
        service = _service(runner)
        record, _ = service.submit(_spec())
        failed = service.wait_for(record.id, timeout=10.0)
        assert failed.status == "failed"
        assert "worker pool failure" in failed.error
        assert "pool exploded" in failed.error

        # The dispatcher survives: heal the runner, resubmit, succeed.
        runner.raise_error = None
        retried, dedup = service.submit(_spec())
        assert not dedup  # failed keys requeue a fresh attempt
        assert retried.attempt == record.attempt + 1
        assert service.wait_for(retried.id, timeout=10.0).status == "done"
        service.shutdown(wait=True)


class TestScheduling:
    def test_slow_job_does_not_block_later_jobs(self):
        """No head-of-line blocking: with a free worker slot, a job
        submitted behind a stuck one finishes first."""
        gate = threading.Event()

        def runner(batch):
            (key, job), = batch
            if job.modes == 2:  # the slow job
                assert gate.wait(30.0), "test gate never released"
            return {key: compiled_outcome(key, job)}

        service = CompilationService(runner=runner, jobs=2).start()
        slow, _ = service.submit(_spec(2))
        fast, _ = service.submit(_spec(3))
        assert service.wait_for(fast.id, timeout=10.0).status == "done"
        assert service.get(slow.id).status == "running"
        gate.set()
        assert service.wait_for(slow.id, timeout=10.0).status == "done"
        service.shutdown(wait=True)

    def test_worker_slots_bound_concurrency(self):
        """Only `jobs` jobs run at once; the rest stay queued."""
        gate = threading.Event()
        runner = _RecordingRunner(gate=gate)
        service = _service(runner, jobs=1)
        first, _ = service.submit(_spec(2))
        assert runner.started.wait(10.0)
        second, _ = service.submit(_spec(3))
        assert service.get(second.id).status == "queued"
        gate.set()
        assert service.wait_for(second.id, timeout=10.0).status == "done"
        service.shutdown(wait=True)


class TestRegistryEviction:
    def test_finished_records_evicted_beyond_cap(self):
        runner = _RecordingRunner()
        service = _service(runner, max_records=2)
        first, _ = service.submit(_spec(2))
        service.wait_for(first.id, timeout=10.0)
        second, _ = service.submit(_spec(3))
        service.wait_for(second.id, timeout=10.0)
        third, _ = service.submit(_spec(4))
        service.wait_for(third.id, timeout=10.0)
        assert service.get(first.id) is None  # oldest finished evicted
        assert [record.id for record in service.records()] == [
            second.id, third.id,
        ]
        assert service.stats.evicted == 1
        service.shutdown(wait=True)

    def test_active_records_never_evicted(self):
        gate = threading.Event()

        def runner(batch):
            (key, job), = batch
            if job.modes == 2:  # the long-running job
                assert gate.wait(30.0), "test gate never released"
            return {key: compiled_outcome(key, job)}

        service = CompilationService(runner=runner, jobs=2,
                                     max_records=1).start()
        active, _ = service.submit(_spec(2))   # stuck on the gate
        for modes in (3, 4):
            record, _ = service.submit(_spec(modes))
            service.wait_for(record.id, timeout=10.0)
        # Eviction ran (two finished records against a cap of one) but
        # must have skipped the oldest record, which is still active.
        assert service.stats.evicted >= 1
        assert service.get(active.id).status in ("queued", "running")
        gate.set()
        assert service.wait_for(active.id, timeout=10.0).status == "done"
        service.shutdown(wait=True)


class TestBackpressure:
    def test_queue_limit_rejects_with_429(self):
        gate = threading.Event()
        runner = _RecordingRunner(gate=gate)
        service = _service(runner, queue_limit=2)
        first, _ = service.submit(_spec(2))
        assert runner.started.wait(10.0)  # first job occupies a worker
        service.submit(_spec(3))          # second sits in the queue
        with pytest.raises(QueueFullError) as excinfo:
            service.submit(_spec(4))
        assert excinfo.value.http_status == 429
        assert service.stats.rejected == 1

        # Duplicates of active jobs are NOT new load: still accepted.
        _, dedup = service.submit(_spec(2))
        assert dedup
        gate.set()
        service.shutdown(wait=True)
        assert service.stats.rejected == 1


class TestShutdown:
    def test_drain_finishes_accepted_jobs(self):
        runner = _RecordingRunner()
        service = _service(runner)
        record, _ = service.submit(_spec())
        service.shutdown(drain=True, wait=True, timeout=10.0)
        assert service.state == "stopped"
        assert service.get(record.id).status == "done"
        with pytest.raises(ServiceUnavailableError) as excinfo:
            service.submit(_spec(3))
        assert excinfo.value.http_status == 503

    def test_no_drain_cancels_queued_jobs(self):
        gate = threading.Event()
        runner = _RecordingRunner(gate=gate)
        service = _service(runner)
        running, _ = service.submit(_spec(2))
        assert runner.started.wait(10.0)
        queued, _ = service.submit(_spec(3))  # dispatcher is busy: stays queued
        service.shutdown(drain=False)
        cancelled = service.get(queued.id)
        assert cancelled.status == "failed"
        assert "cancelled" in cancelled.error
        gate.set()
        service.join(timeout=10.0)
        # The job already on a worker still ran to completion.
        assert service.get(running.id).status == "done"
        assert service.stats.cancelled == 1


class TestRealCompilation:
    """The default in-thread engine against real SAT descents."""

    def test_compile_cache_hit_and_dedup(self, tmp_path, fast_config):
        cache = CompilationCache(tmp_path / "cache")
        service = CompilationService(
            cache=cache, default_config=fast_config, use_processes=False
        ).start()
        record, _ = service.submit(_spec(2))
        done = service.wait_for(record.id, timeout=60.0)
        assert done.status == "done" and done.outcome == "compiled"
        assert done.result.weight == 6 and done.result.proved_optimal
        service.shutdown(wait=True)

        # A fresh service over the same cache answers synchronously.
        rebooted = CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, use_processes=False,
        ).start()
        hit, dedup = rebooted.submit(_spec(2))
        assert not dedup
        assert hit.status == "done" and hit.outcome == "cache-hit"
        assert rebooted.stats.cache_hits == 1
        rebooted.shutdown(wait=True)

    def test_cache_hit_identical_to_direct_compile(self, tmp_path, fast_config):
        """A polled cache-hit equals FermihedralCompiler.compile() exactly."""
        import json

        from repro.encodings.serialization import result_to_dict

        cache = CompilationCache(tmp_path / "cache")
        direct = FermihedralCompiler(2, fast_config, cache=cache).compile(
            method="independent"
        )
        service = CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, use_processes=False,
        ).start()
        record, _ = service.submit(_spec(2))
        assert record.outcome == "cache-hit"
        served = record.to_wire()["result"]
        assert json.dumps(served, sort_keys=True) == json.dumps(
            result_to_dict(direct), sort_keys=True
        )
        service.shutdown(wait=True)

    def test_bad_spec_rejected_before_queueing(self, fast_config):
        service = CompilationService(
            default_config=fast_config, use_processes=False
        ).start()
        with pytest.raises(ValueError):
            service.submit({"modes": 2, "methd": "independent"})  # typo
        with pytest.raises(ValueError):
            service.submit({"model": "nosuch:4"})
        with pytest.raises(ValueError):
            service.submit({"method": "full-sat"})  # no model
        assert service.stats.submitted == 0
        service.shutdown(wait=True)
