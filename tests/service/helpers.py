"""Stub results and outcomes shared by the service tests."""

from repro.core import CompilationResult
from repro.core.descent import DescentResult
from repro.encodings import bravyi_kitaev
from repro.store.batch import JobOutcome


def dummy_result(num_modes: int = 2) -> CompilationResult:
    """A small, valid result for stub runners (no SAT call involved)."""
    encoding = bravyi_kitaev(num_modes)
    descent = DescentResult(
        encoding=encoding,
        weight=encoding.total_majorana_weight,
        proved_optimal=True,
        steps=[],
    )
    return CompilationResult(
        encoding=encoding,
        method="full-sat/independent",
        weight=encoding.total_majorana_weight,
        proved_optimal=True,
        descent=descent,
    )


def compiled_outcome(key, job, status="compiled", error=None):
    """A stub JobOutcome matching what a worker would hand back."""
    return JobOutcome(
        job=job,
        key=key,
        status=status,
        result=None if status == "error" else dummy_result(job.modes),
        error=error,
        elapsed_s=0.01,
    )
