"""Telemetry and proof surfaces of the HTTP service.

``GET /metrics`` (Prometheus text), ``GET /debug/trace/<id>`` (relayed
span events), ``GET /jobs/<id>/proof`` plus client-side re-checking, and
the evicted-but-cached job lookup — all over a real socket with real
compiles, the way the acceptance criteria phrase them.
"""

import threading

import pytest

from repro.service import (
    CompilationService,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.store import CompilationCache


@pytest.fixture
def serve():
    """Factory: start a server around a service; cleans up on exit."""
    started = []

    def _serve(service: CompilationService) -> ServiceClient:
        service.start()
        server = ServiceServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_until_stopped, daemon=True)
        thread.start()
        started.append((service, server, thread))
        return ServiceClient(server.url, timeout=10.0)

    yield _serve
    for service, server, thread in started:
        service.shutdown(drain=False)
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()


class TestMetricsEndpoint:
    def test_metrics_families_populate_after_one_compile(
        self, serve, fast_config, tmp_path
    ):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)

        text = client.metrics()
        # Queue gauges are scrape-time collect hooks; cache and solver
        # counters arrive via the worker relay.
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_active_slots" in text
        assert 'repro_service_jobs{state="done"} 1' in text
        assert "repro_cache_requests_total" in text
        assert "repro_solver_conflicts_total" in text
        assert "repro_service_submit_seconds_count 1" in text

    def test_metrics_is_prometheus_text_not_json(self, serve, fast_config):
        client = serve(CompilationService(default_config=fast_config, jobs=1))
        text = client.metrics()
        assert text.startswith("#")


class TestDebugTraceEndpoint:
    def test_trace_holds_the_relayed_span_tree(
        self, serve, fast_config, tmp_path
    ):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)

        payload = client.trace(record["id"])
        assert payload["id"] == record["id"]
        names = {event["name"] for event in payload["events"]}
        assert "compile" in names and "descent" in names
        # The stored trace is the worker's raw span tree: internal parent
        # links intact, exactly one compile root.
        roots = [event for event in payload["events"]
                 if event.get("parent_id") is None]
        assert [event["name"] for event in roots] == ["compile"]

    def test_trace_prefix_lookup_and_404(self, serve, fast_config, tmp_path):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)
        assert client.trace(record["id"][:12])["id"] == record["id"]
        with pytest.raises(ServiceError) as excinfo:
            client.trace("feedfacefeedface")
        assert excinfo.value.status == 404


class TestProofEndpoint:
    def test_proof_served_and_verified_client_side(
        self, serve, fast_config, tmp_path
    ):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({
            "modes": 2, "method": "independent",
            "config": {"proof": True},
        })
        client.wait(record["id"], timeout=120.0)

        payload = client.proof(record["id"])
        assert payload["proof"]["sha256"]
        assert payload["trace"] is not None

        verdict = client.verify_proof(record["id"])
        assert verdict["verified"], verdict["reason"]
        assert verdict["checked_additions"] > 0

    def test_proofless_job_is_a_pointed_404(
        self, serve, fast_config, tmp_path
    ):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)
        with pytest.raises(ServiceError) as excinfo:
            client.proof(record["id"])
        assert excinfo.value.status == 404
        assert "no proof" in str(excinfo.value)

    def test_unknown_job_proof_is_404(self, serve, fast_config):
        client = serve(CompilationService(default_config=fast_config, jobs=1))
        with pytest.raises(ServiceError) as excinfo:
            client.proof("feedfacefeedface")
        assert excinfo.value.status == 404


class TestEvictedJobLookup:
    def test_evicted_but_cached_id_answers_from_the_cache(
        self, serve, fast_config, tmp_path
    ):
        # max_records=1: finishing the second job evicts the first from
        # the registry, but its id is a cache key and must keep working.
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1, max_records=1,
        ))
        first = client.submit({"modes": 2, "method": "independent"})
        client.wait(first["id"], timeout=120.0)
        second = client.submit({"modes": 3, "method": "independent"})
        client.wait(second["id"], timeout=120.0)

        evicted = client.job(first["id"])
        assert evicted["source"] == "cache"
        assert evicted["status"] == "done"
        assert evicted["outcome"] == "cache-hit"
        assert evicted["weight"] == 6
        result = client.result(evicted)
        assert result.weight == 6

    def test_evicted_lookup_without_cache_still_404s(
        self, serve, fast_config
    ):
        client = serve(CompilationService(
            default_config=fast_config, jobs=1,
        ))
        with pytest.raises(ServiceError) as excinfo:
            client.job("feedfacefeedface")
        assert excinfo.value.status == 404
