"""Telemetry and proof surfaces of the HTTP service.

``GET /metrics`` (Prometheus text), ``GET /debug/trace/<id>`` (relayed
span events), ``GET /jobs/<id>/proof`` plus client-side re-checking, and
the evicted-but-cached job lookup — all over a real socket with real
compiles, the way the acceptance criteria phrase them.
"""

import threading

import pytest

from repro.service import (
    CompilationService,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.store import CompilationCache


@pytest.fixture
def serve():
    """Factory: start a server around a service; cleans up on exit."""
    started = []

    def _serve(service: CompilationService) -> ServiceClient:
        service.start()
        server = ServiceServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_until_stopped, daemon=True)
        thread.start()
        started.append((service, server, thread))
        return ServiceClient(server.url, timeout=10.0)

    yield _serve
    for service, server, thread in started:
        service.shutdown(drain=False)
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()


class TestMetricsEndpoint:
    def test_metrics_families_populate_after_one_compile(
        self, serve, fast_config, tmp_path
    ):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)

        text = client.metrics()
        # Queue gauges are scrape-time collect hooks; cache and solver
        # counters arrive via the worker relay.
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_active_slots" in text
        assert 'repro_service_jobs{state="done"} 1' in text
        assert "repro_cache_requests_total" in text
        assert "repro_solver_conflicts_total" in text
        assert "repro_service_submit_seconds_count 1" in text

    def test_metrics_is_prometheus_text_not_json(self, serve, fast_config):
        client = serve(CompilationService(default_config=fast_config, jobs=1))
        text = client.metrics()
        assert text.startswith("#")


class TestDebugTraceEndpoint:
    def test_trace_holds_the_relayed_span_tree(
        self, serve, fast_config, tmp_path
    ):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)

        payload = client.trace(record["id"])
        assert payload["id"] == record["id"]
        names = {event["name"] for event in payload["events"]}
        assert "compile" in names and "descent" in names
        # The stored trace is the worker's raw span tree: internal parent
        # links intact, exactly one compile root.
        roots = [event for event in payload["events"]
                 if event.get("parent_id") is None]
        assert [event["name"] for event in roots] == ["compile"]

    def test_trace_prefix_lookup_and_404(self, serve, fast_config, tmp_path):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)
        assert client.trace(record["id"][:12])["id"] == record["id"]
        with pytest.raises(ServiceError) as excinfo:
            client.trace("feedfacefeedface")
        assert excinfo.value.status == 404


class TestProofEndpoint:
    def test_proof_served_and_verified_client_side(
        self, serve, fast_config, tmp_path
    ):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({
            "modes": 2, "method": "independent",
            "config": {"proof": True},
        })
        client.wait(record["id"], timeout=120.0)

        payload = client.proof(record["id"])
        assert payload["proof"]["sha256"]
        assert payload["trace"] is not None

        verdict = client.verify_proof(record["id"])
        assert verdict["verified"], verdict["reason"]
        assert verdict["checked_additions"] > 0

    def test_proofless_job_is_a_pointed_404(
        self, serve, fast_config, tmp_path
    ):
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)
        with pytest.raises(ServiceError) as excinfo:
            client.proof(record["id"])
        assert excinfo.value.status == 404
        assert "no proof" in str(excinfo.value)

    def test_unknown_job_proof_is_404(self, serve, fast_config):
        client = serve(CompilationService(default_config=fast_config, jobs=1))
        with pytest.raises(ServiceError) as excinfo:
            client.proof("feedfacefeedface")
        assert excinfo.value.status == 404


class TestEvictedJobLookup:
    def test_evicted_but_cached_id_answers_from_the_cache(
        self, serve, fast_config, tmp_path
    ):
        # max_records=1: finishing the second job evicts the first from
        # the registry, but its id is a cache key and must keep working.
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=1, max_records=1,
        ))
        first = client.submit({"modes": 2, "method": "independent"})
        client.wait(first["id"], timeout=120.0)
        second = client.submit({"modes": 3, "method": "independent"})
        client.wait(second["id"], timeout=120.0)

        evicted = client.job(first["id"])
        assert evicted["source"] == "cache"
        assert evicted["status"] == "done"
        assert evicted["outcome"] == "cache-hit"
        assert evicted["weight"] == 6
        result = client.result(evicted)
        assert result.weight == 6

    def test_evicted_lookup_without_cache_still_404s(
        self, serve, fast_config
    ):
        client = serve(CompilationService(
            default_config=fast_config, jobs=1,
        ))
        with pytest.raises(ServiceError) as excinfo:
            client.job("feedfacefeedface")
        assert excinfo.value.status == 404


class TestProgressEndpoint:
    def test_finished_job_serves_its_last_snapshot(self, serve, fast_config):
        client = serve(CompilationService(default_config=fast_config, jobs=1))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)

        payload = client.progress(record["id"])
        assert payload["id"] == record["id"]
        assert payload["status"] == "done"
        snapshot = payload["progress"]
        assert snapshot is not None
        assert snapshot["state"] == "done"
        assert snapshot["outcome"] == "compiled"
        # The lifecycle events folded in: the job was seen queued/running
        # before it finished, all under the same key.
        assert snapshot["job"] == record["id"]

    def test_progress_prefix_lookup_and_404(self, serve, fast_config):
        client = serve(CompilationService(default_config=fast_config, jobs=1))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)
        assert client.progress(record["id"][:12])["id"] == record["id"]
        with pytest.raises(ServiceError) as excinfo:
            client.progress("feedfacefeedface")
        assert excinfo.value.status == 404


class TestEventsEndpoint:
    def test_cursor_resume_is_gapless(self, serve, fast_config):
        client = serve(CompilationService(default_config=fast_config, jobs=1))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)

        # Read the feed twice with a cursor handoff: the union must be
        # exactly the full feed, with no overlap and no gap.
        first = client.events(since=0, limit=3)
        rest = client.events(since=first["next"], limit=5000)
        seqs = ([e["seq"] for e in first["events"]]
                + [e["seq"] for e in rest["events"]])
        full = client.events(since=0, limit=5000)
        assert seqs == [e["seq"] for e in full["events"]]
        assert len(seqs) == len(set(seqs))
        kinds = {e["kind"] for e in full["events"]}
        assert "job" in kinds  # lifecycle transitions are on the feed

    def test_resume_across_ring_eviction_reports_dropped(
        self, serve, fast_config
    ):
        from repro.telemetry import ProgressBus, Telemetry

        telemetry = Telemetry(progress=ProgressBus(max_events=8))
        client = serve(CompilationService(
            default_config=fast_config, jobs=1, telemetry=telemetry,
        ))
        cursor = client.events(since=0)["next"]
        for index in range(20):  # overflow the 8-slot ring past the cursor
            telemetry.progress.emit("tick", index=index)

        batch = client.events(since=cursor)
        assert batch["dropped"]  # the reader is told, never lied to
        assert len(batch["events"]) == 8
        seqs = [e["seq"] for e in batch["events"]]
        assert seqs == sorted(seqs)
        assert batch["next"] == seqs[-1]
        # The handed-back cursor resumes cleanly.
        assert client.events(since=batch["next"])["events"] == []

    def test_long_poll_waits_for_the_first_event(self, serve, fast_config):
        import threading
        import time as _time

        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        client = serve(CompilationService(
            default_config=fast_config, jobs=1, telemetry=telemetry,
        ))
        cursor = client.events(since=0)["next"]
        threading.Timer(
            0.2, lambda: telemetry.progress.emit("late", index=1)
        ).start()
        started = _time.monotonic()
        batch = client.events(since=cursor, timeout=10.0)
        assert [e["kind"] for e in batch["events"]] == ["late"]
        assert _time.monotonic() - started < 9.0  # returned on the event


class TestForensicsEndpoint:
    def test_chaos_failure_yields_a_retrievable_dump(
        self, serve, fast_config, monkeypatch
    ):
        from repro.store.batch import CHAOS_ENV

        monkeypatch.setenv(CHAOS_ENV, "chaos")
        client = serve(CompilationService(
            default_config=fast_config, jobs=1, use_processes=False,
        ))
        record = client.submit({
            "modes": 2, "method": "independent", "label": "chaos-drill",
        })
        with pytest.raises(ServiceError):
            client.wait(record["id"], timeout=120.0)

        payload = client.forensics(record["id"])
        assert payload["id"] == record["id"]
        dump = payload["forensics"]
        assert "chaos fault injected" in dump["error"]
        messages = [e["message"] for e in dump["events"]]
        assert "job started" in messages and "job failed" in messages
        assert dump["metrics"] is not None

    def test_healthy_job_has_no_forensics(self, serve, fast_config):
        client = serve(CompilationService(
            default_config=fast_config, jobs=1, use_processes=False,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=120.0)
        with pytest.raises(ServiceError) as excinfo:
            client.forensics(record["id"])
        assert excinfo.value.status == 404
        assert "failed jobs" in str(excinfo.value)
