"""The service CLI verbs (submit / jobs / shutdown) and daemon lifecycle."""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.service import CompilationService, ServiceServer

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def live_server(fast_config, tmp_path):
    """An in-thread daemon; yields its URL."""
    from repro.store import CompilationCache

    service = CompilationService(
        cache=CompilationCache(tmp_path / "cache"),
        default_config=fast_config,
        use_processes=False,
    ).start()
    server = ServiceServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_until_stopped, daemon=True)
    thread.start()
    yield server.url
    service.shutdown(drain=False)
    server.shutdown()
    thread.join(timeout=10.0)
    server.server_close()


class TestSubmitCommand:
    def test_submit_and_wait(self, live_server, capsys):
        code = main([
            "submit", "--url", live_server, "--modes", "2", "--wait",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "job:" in out
        assert "weight:          6" in out
        assert "proved optimal:  True" in out

    def test_submit_without_wait_prints_id(self, live_server, capsys):
        code = main(["submit", "--url", live_server, "--modes", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status:" in out

    def test_submit_bad_spec_is_error(self, live_server, capsys):
        code = main(["submit", "--url", live_server, "--model", "nosuch:2"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_submit_unreachable_service(self, capsys):
        code = main([
            "submit", "--url", "http://127.0.0.1:9", "--modes", "2",
        ])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err


class TestJobsCommands:
    def test_ls_and_show(self, live_server, capsys):
        assert main([
            "submit", "--url", live_server, "--modes", "2", "--wait",
        ]) == 0
        capsys.readouterr()

        assert main(["jobs", "ls", "--url", live_server]) == 0
        table = capsys.readouterr().out
        assert "2 modes" in table and "done" in table

        # show by unique prefix, via the id printed in the table
        job_id = table.splitlines()[2].split("|")[0].strip()
        assert main(["jobs", "show", job_id, "--url", live_server]) == 0
        shown = capsys.readouterr().out
        assert "majorana strings:" in shown

    def test_ls_empty(self, live_server, capsys):
        assert main(["jobs", "ls", "--url", live_server]) == 0
        assert "no jobs" in capsys.readouterr().out


class TestShutdownCommand:
    def test_shutdown_via_cli(self, live_server, capsys):
        assert main(["shutdown", "--url", live_server]) == 0
        assert "shutdown accepted" in capsys.readouterr().out


class TestServeProcess:
    """The real daemon as a subprocess: startup banner and SIGTERM drain."""

    def _wait_for_url(self, process) -> str:
        deadline = time.monotonic() + 30.0
        first = process.stdout.readline()
        assert first, "serve printed nothing"
        url = first.split()[-1]
        assert url.startswith("http://")
        assert time.monotonic() < deadline
        return url

    def test_sigterm_drains_gracefully(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache", str(tmp_path / "cache"), "--budget-s", "30"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        try:
            url = self._wait_for_url(process)
            from repro.service import ServiceClient

            client = ServiceClient(url, timeout=10.0)
            record = client.submit({"modes": 2, "method": "independent"})
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "draining" in stderr
        assert "service stopped" in stdout
        # The accepted job was finished, not dropped: its result is in
        # the cache a later service/CLI run would reuse.
        from repro.store import CompilationCache

        cache = CompilationCache(tmp_path / "cache")
        assert record["id"] in cache


class TestTopCommand:
    def test_top_once_renders_vitals(self, live_server, capsys):
        assert main([
            "submit", "--url", live_server, "--modes", "2", "--wait",
        ]) == 0
        capsys.readouterr()
        assert main(["top", "--once", "--url", live_server]) == 0
        frame = capsys.readouterr().out
        assert "repro service at" in frame
        assert "workers:" in frame and "done: 1" in frame
        assert "latency p50/p90/p99" in frame
        assert "submit" in frame
        assert "no active jobs" in frame  # the only job already finished

    def test_top_unreachable_service(self, capsys):
        code = main(["top", "--once", "--url", "http://127.0.0.1:9"])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err


class TestWatchCommand:
    def test_watch_follows_to_done(self, live_server, capsys):
        assert main(["submit", "--url", live_server, "--modes", "2"]) == 0
        job_id = capsys.readouterr().out.split()[1]
        assert main(["watch", job_id[:12], "--url", live_server]) == 0
        out = capsys.readouterr().out
        assert "done" in out

    def test_watch_failed_job_exits_one(self, live_server, capsys,
                                        monkeypatch):
        from repro.store.batch import CHAOS_ENV

        monkeypatch.setenv(CHAOS_ENV, "chaos")
        assert main([
            "submit", "--url", live_server, "--modes", "2",
            "--label", "chaos-drill",
        ]) == 0
        job_id = capsys.readouterr().out.split()[1]
        assert main(["watch", job_id[:12], "--url", live_server]) == 1
        assert "failed" in capsys.readouterr().out

    def test_watch_unknown_job(self, live_server, capsys):
        code = main(["watch", "feedfacefeedface", "--url", live_server])
        assert code == 2
        assert "no such job" in capsys.readouterr().err


class TestForensicsCommand:
    def test_forensics_of_a_chaos_failure(self, live_server, capsys,
                                          monkeypatch):
        from repro.store.batch import CHAOS_ENV

        monkeypatch.setenv(CHAOS_ENV, "chaos")
        assert main([
            "submit", "--url", live_server, "--modes", "2",
            "--label", "chaos-drill",
        ]) == 0
        job_id = capsys.readouterr().out.split()[1]
        assert main(["watch", job_id, "--url", live_server]) == 1
        capsys.readouterr()

        assert main(["jobs", "forensics", job_id[:12],
                     "--url", live_server]) == 0
        out = capsys.readouterr().out
        assert "chaos fault injected" in out
        assert "job started" in out and "job failed" in out

        assert main(["jobs", "forensics", job_id, "--json",
                     "--url", live_server]) == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        assert payload["forensics"]["events"]

    def test_forensics_of_a_healthy_job_is_an_error(self, live_server,
                                                    capsys):
        assert main([
            "submit", "--url", live_server, "--modes", "2", "--wait",
        ]) == 0
        capsys.readouterr()
        assert main(["jobs", "ls", "--url", live_server]) == 0
        job_id = capsys.readouterr().out.splitlines()[2].split("|")[0].strip()
        code = main(["jobs", "forensics", job_id, "--url", live_server])
        assert code == 2
        assert "failed jobs" in capsys.readouterr().err


class TestBenchCommands:
    def _snapshot(self, json_dir, wall_s):
        import json as _json

        json_dir.mkdir(exist_ok=True)
        (json_dir / "BENCH_demo.json").write_text(_json.dumps({
            "name": "demo", "written_at": 1.0, "demo_wall_s": wall_s,
        }))

    def test_record_then_clean_compare(self, tmp_path, capsys):
        self._snapshot(tmp_path / "run", 10.0)
        ledger = tmp_path / "history.jsonl"
        assert main(["bench", "record", "--json-dir", str(tmp_path / "run"),
                     "--history", str(ledger), "--sha", "aaa111"]) == 0
        assert "recorded 1 benchmark(s)" in capsys.readouterr().out
        assert main(["bench", "compare", "--json-dir", str(tmp_path / "run"),
                     "--history", str(ledger), "--sha", "bbb222"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_regression_fails_the_gate(self, tmp_path, capsys):
        self._snapshot(tmp_path / "run", 10.0)
        ledger = tmp_path / "history.jsonl"
        assert main(["bench", "record", "--json-dir", str(tmp_path / "run"),
                     "--history", str(ledger), "--sha", "aaa111"]) == 0
        self._snapshot(tmp_path / "run", 15.0)  # +50% wall time
        code = main(["bench", "compare", "--json-dir", str(tmp_path / "run"),
                     "--history", str(ledger), "--sha", "bbb222"])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_record_empty_dir_is_an_error(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        code = main(["bench", "record", "--json-dir", str(tmp_path / "empty"),
                     "--history", str(tmp_path / "h.jsonl")])
        assert code == 2
        assert "no BENCH_" in capsys.readouterr().err
