"""The service CLI verbs (submit / jobs / shutdown) and daemon lifecycle."""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.service import CompilationService, ServiceServer

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def live_server(fast_config, tmp_path):
    """An in-thread daemon; yields its URL."""
    from repro.store import CompilationCache

    service = CompilationService(
        cache=CompilationCache(tmp_path / "cache"),
        default_config=fast_config,
        use_processes=False,
    ).start()
    server = ServiceServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_until_stopped, daemon=True)
    thread.start()
    yield server.url
    service.shutdown(drain=False)
    server.shutdown()
    thread.join(timeout=10.0)
    server.server_close()


class TestSubmitCommand:
    def test_submit_and_wait(self, live_server, capsys):
        code = main([
            "submit", "--url", live_server, "--modes", "2", "--wait",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "job:" in out
        assert "weight:          6" in out
        assert "proved optimal:  True" in out

    def test_submit_without_wait_prints_id(self, live_server, capsys):
        code = main(["submit", "--url", live_server, "--modes", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status:" in out

    def test_submit_bad_spec_is_error(self, live_server, capsys):
        code = main(["submit", "--url", live_server, "--model", "nosuch:2"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_submit_unreachable_service(self, capsys):
        code = main([
            "submit", "--url", "http://127.0.0.1:9", "--modes", "2",
        ])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err


class TestJobsCommands:
    def test_ls_and_show(self, live_server, capsys):
        assert main([
            "submit", "--url", live_server, "--modes", "2", "--wait",
        ]) == 0
        capsys.readouterr()

        assert main(["jobs", "ls", "--url", live_server]) == 0
        table = capsys.readouterr().out
        assert "2 modes" in table and "done" in table

        # show by unique prefix, via the id printed in the table
        job_id = table.splitlines()[2].split("|")[0].strip()
        assert main(["jobs", "show", job_id, "--url", live_server]) == 0
        shown = capsys.readouterr().out
        assert "majorana strings:" in shown

    def test_ls_empty(self, live_server, capsys):
        assert main(["jobs", "ls", "--url", live_server]) == 0
        assert "no jobs" in capsys.readouterr().out


class TestShutdownCommand:
    def test_shutdown_via_cli(self, live_server, capsys):
        assert main(["shutdown", "--url", live_server]) == 0
        assert "shutdown accepted" in capsys.readouterr().out


class TestServeProcess:
    """The real daemon as a subprocess: startup banner and SIGTERM drain."""

    def _wait_for_url(self, process) -> str:
        deadline = time.monotonic() + 30.0
        first = process.stdout.readline()
        assert first, "serve printed nothing"
        url = first.split()[-1]
        assert url.startswith("http://")
        assert time.monotonic() < deadline
        return url

    def test_sigterm_drains_gracefully(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache", str(tmp_path / "cache"), "--budget-s", "30"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        try:
            url = self._wait_for_url(process)
            from repro.service import ServiceClient

            client = ServiceClient(url, timeout=10.0)
            record = client.submit({"modes": 2, "method": "independent"})
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "draining" in stderr
        assert "service stopped" in stdout
        # The accepted job was finished, not dropped: its result is in
        # the cache a later service/CLI run would reuse.
        from repro.store import CompilationCache

        cache = CompilationCache(tmp_path / "cache")
        assert record["id"] in cache
