"""The HTTP layer over a real socket: protocol, lifecycle, error codes.

Each test runs a ThreadingHTTPServer on an ephemeral port and drives it
with the real :class:`ServiceClient` — the same path ``repro submit``
and production batch scripts use.
"""

import json
import threading

import pytest

from repro.core import FermihedralCompiler
from repro.encodings.serialization import result_to_dict
from repro.service import (
    CompilationService,
    JobFailedError,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.store import CompilationCache
from tests.service.helpers import compiled_outcome


@pytest.fixture
def serve():
    """Factory: start a server around a service; cleans up on exit."""
    started = []

    def _serve(service: CompilationService) -> ServiceClient:
        service.start()
        server = ServiceServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_until_stopped, daemon=True)
        thread.start()
        started.append((service, server, thread))
        # retries=0: these tests assert the raw protocol (a 429 must
        # surface as a 429, not be absorbed by the client's retry loop).
        return ServiceClient(server.url, timeout=10.0, retries=0)

    yield _serve
    for service, server, thread in started:
        service.shutdown(drain=False)
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()


def _stub_runner(batch):
    return {key: compiled_outcome(key, job) for key, job in batch}


class TestEndpoints:
    def test_healthz_and_stats(self, serve, fast_config):
        client = serve(CompilationService(
            default_config=fast_config, runner=_stub_runner
        ))
        health = client.healthz()
        assert health["ok"] and health["state"] == "serving"
        stats = client.stats()
        assert stats["counters"]["submitted"] == 0
        assert stats["cache"] == {"enabled": False}

    def test_unknown_endpoint_and_job_404(self, serve, fast_config):
        client = serve(CompilationService(
            default_config=fast_config, runner=_stub_runner
        ))
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.job("feedfacefeedface")
        assert excinfo.value.status == 404

    def test_malformed_specs_are_400(self, serve, fast_config):
        client = serve(CompilationService(
            default_config=fast_config, runner=_stub_runner
        ))
        for spec in (
            {"modes": 2, "methd": "independent"},         # typoed field
            {"model": "nosuch:4"},                        # unknown model
            {},                                           # no target
            {"modes": 2, "method": "independent",
             "config": {"budget_sec": 1}},                # typoed config
            # Wrong-typed (but valid-JSON) fields must be 400s too, not
            # dropped connections:
            {"modes": 2, "method": "independent", "seed": []},
            {"modes": "many", "method": "independent"},
            {"model": 5},
            {"model": "h2", "device": 7},
            {"modes": 2, "method": ["independent"]},
            {"model": "h2", "label": 3},
            {"model": "h2", "config": {"budget_s": "abc"}},
            {"model": "h2", "config": ["not", "a", "dict"]},
        ):
            with pytest.raises(ServiceError) as excinfo:
                client.submit(spec)
            assert excinfo.value.status == 400, spec

    def test_submit_poll_shutdown_cycle(self, serve, fast_config, tmp_path):
        """The acceptance-criteria cycle, over a real socket, with real
        compiles fanned across worker processes."""
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=2,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        assert record["status"] in ("queued", "running", "done")
        final = client.wait(record["id"], timeout=120.0)
        assert final["status"] == "done"
        assert final["outcome"] in ("compiled", "warm-start")
        assert final["weight"] == 6 and final["proved_optimal"]
        result = client.result(final)
        assert result.weight == 6

        # Duplicate submission over the wire: same id, no recompile.
        dup = client.submit({"modes": 2, "method": "independent"})
        assert dup["id"] == record["id"] and dup["deduplicated"]

        reply = client.shutdown()
        assert reply["ok"]

    def test_concurrent_duplicate_submissions_compile_once(
        self, serve, fast_config
    ):
        gate = threading.Event()
        compiled = []

        def runner(batch):
            assert gate.wait(30.0)
            compiled.extend(key for key, _ in batch)
            return _stub_runner(batch)

        client = serve(CompilationService(
            default_config=fast_config, runner=runner
        ))
        spec = {"modes": 3, "method": "independent"}
        records = []
        def submit():
            records.append(client.submit(spec))
        threads = [threading.Thread(target=submit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        gate.set()
        assert len({record["id"] for record in records}) == 1
        job_id = records[0]["id"]
        final = client.wait(job_id, timeout=30.0)
        assert final["submissions"] == 6
        assert compiled == [job_id]  # exactly one compilation

    def test_queue_full_is_429(self, serve, fast_config):
        gate = threading.Event()

        def runner(batch):
            assert gate.wait(30.0)
            return _stub_runner(batch)

        client = serve(CompilationService(
            default_config=fast_config, runner=runner, queue_limit=1
        ))
        # One gated job saturates the active bound (queued or running,
        # both count), so a distinct second job must bounce.
        client.submit({"modes": 2, "method": "independent"})
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"modes": 3, "method": "independent"})
        assert excinfo.value.status == 429
        gate.set()

    def test_draining_submissions_are_503_and_polls_still_work(
        self, serve, fast_config
    ):
        gate = threading.Event()

        def runner(batch):
            assert gate.wait(30.0)
            return _stub_runner(batch)

        client = serve(CompilationService(
            default_config=fast_config, runner=runner
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.shutdown()  # drain begins; the job is still gated
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"modes": 3, "method": "independent"})
        assert excinfo.value.status == 503
        # Polling and health keep answering for the whole drain window.
        assert client.job(record["id"], include_result=False)["status"] in (
            "queued", "running"
        )
        assert client.healthz()["state"] == "draining"
        gate.set()

    def test_failed_job_raises_on_wait(self, serve, fast_config):
        def runner(batch):
            return {
                key: compiled_outcome(key, job, status="error",
                                      error="BoomError: induced")
                for key, job in batch
            }

        client = serve(CompilationService(
            default_config=fast_config, runner=runner
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        with pytest.raises(JobFailedError) as excinfo:
            client.wait(record["id"], timeout=30.0)
        assert "BoomError" in str(excinfo.value)
        shown = client.job(record["id"])
        assert shown["status"] == "failed" and "BoomError" in shown["error"]

    def test_job_prefix_lookup(self, serve, fast_config):
        client = serve(CompilationService(
            default_config=fast_config, runner=_stub_runner
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        client.wait(record["id"], timeout=30.0)
        assert client.job(record["id"][:10])["id"] == record["id"]

    def test_jobs_listing(self, serve, fast_config):
        client = serve(CompilationService(
            default_config=fast_config, runner=_stub_runner
        ))
        a = client.submit({"modes": 2, "method": "independent"})
        b = client.submit({"modes": 3, "method": "independent"})
        client.wait(a["id"], timeout=30.0)
        client.wait(b["id"], timeout=30.0)
        listed = client.jobs()
        assert [job["id"] for job in listed] == [a["id"], b["id"]]
        assert all("result" not in job for job in listed)


class TestByteIdenticalResults:
    def test_cache_hit_over_http_equals_direct_compile(
        self, serve, fast_config, tmp_path
    ):
        """GET /jobs/<id> of a cache-hit job returns a result
        byte-identical to a direct in-process compile()."""
        cache_dir = tmp_path / "cache"
        direct = FermihedralCompiler(
            2, fast_config, cache=CompilationCache(cache_dir)
        ).compile(method="independent")

        client = serve(CompilationService(
            cache=CompilationCache(cache_dir), default_config=fast_config,
            use_processes=False,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        assert record["status"] == "done"  # synchronous cache hit
        served = client.job(record["id"])
        assert served["outcome"] == "cache-hit"
        assert json.dumps(served["result"], sort_keys=True) == \
            json.dumps(result_to_dict(direct), sort_keys=True)
        # And the decoded object round-trips to the same weight/proof.
        result = client.result(served)
        assert (result.weight, result.proved_optimal) == \
            (direct.weight, direct.proved_optimal)

    def test_compiled_job_equals_direct_compile(
        self, serve, fast_config, tmp_path
    ):
        """A job compiled *by the service* (worker process, serialized
        over the wire) matches the direct in-process result on every
        field but wall-clock timings, which no two runs can share."""

        def normalized(data):
            if isinstance(data, dict):
                return {
                    key: normalized(value) for key, value in data.items()
                    if not key.endswith("_s")
                }
            if isinstance(data, list):
                return [normalized(item) for item in data]
            return data

        direct = FermihedralCompiler(2, fast_config).compile(
            method="independent"
        )
        client = serve(CompilationService(
            cache=CompilationCache(tmp_path / "cache"),
            default_config=fast_config, jobs=2,
        ))
        record = client.submit({"modes": 2, "method": "independent"})
        final = client.wait(record["id"], timeout=120.0)
        assert json.dumps(normalized(final["result"]), sort_keys=True) == \
            json.dumps(normalized(result_to_dict(direct)), sort_keys=True)
