"""Supervised retries, backpressure hints, and client-side resilience.

Runner-injected daemon tests pin the retry policy down deterministically;
the HTTP tests at the bottom run the real socket path (Retry-After
headers, the ``http.handler`` chaos point, typed wait exceptions).
"""

import dataclasses
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import chaos
from repro.service import (
    CompilationService,
    JobFailedError,
    QueueFullError,
    ServiceClient,
    ServiceError,
    ServiceServer,
    WaitTimeout,
)
from tests.service.helpers import compiled_outcome


def _spec(modes=2, **extra):
    return {"modes": modes, "method": "independent", **extra}


@pytest.fixture(autouse=True)
def _no_ambient_chaos():
    chaos.reset()
    yield
    chaos.reset()


class _FlakyRunner:
    """Fails each key's first ``failures`` attempts, then succeeds.

    ``retryable`` controls whether the induced failures advertise
    themselves as infrastructure (worth retrying) or deterministic.
    """

    def __init__(self, failures: int = 1, retryable: bool = True):
        self.failures = failures
        self.retryable = retryable
        self.attempts: dict[str, int] = {}

    def __call__(self, batch):
        outcomes = {}
        for key, job in batch:
            seen = self.attempts.get(key, 0) + 1
            self.attempts[key] = seen
            if seen <= self.failures:
                outcome = compiled_outcome(
                    key, job, status="error",
                    error=f"induced infrastructure failure #{seen}",
                )
                outcomes[key] = dataclasses.replace(
                    outcome, retryable=self.retryable
                )
            else:
                outcomes[key] = compiled_outcome(key, job)
        return outcomes


def _service(runner, **kwargs) -> CompilationService:
    service = CompilationService(runner=runner, retry_backoff_s=0.01,
                                 **kwargs)
    service.start()
    return service


class TestSupervisedRetries:
    def test_retryable_failure_is_requeued_and_succeeds(self):
        runner = _FlakyRunner(failures=1)
        service = _service(runner)
        record, _ = service.submit(_spec())
        final = service.wait_for(record.id, timeout=10.0)
        assert final.status == "done"
        assert final.retries == 1
        assert final.attempt == 1  # the retry bumped the generation
        assert runner.attempts[record.id] == 2
        assert service.stats.retried == 1
        assert service.stats.failed == 0
        # The lifecycle is visible on the event feed.
        events = service.events_wire()["events"]
        assert any(e.get("kind") == "job" and e.get("state") == "retrying"
                   for e in events)
        service.shutdown(wait=True)

    def test_attempts_are_bounded(self):
        runner = _FlakyRunner(failures=99)
        service = _service(runner, max_attempts=3)
        record, _ = service.submit(_spec())
        final = service.wait_for(record.id, timeout=10.0)
        assert final.status == "failed"
        assert final.retries == 2  # 3 attempts total
        assert runner.attempts[record.id] == 3
        assert service.stats.retried == 2
        assert service.stats.failed == 1
        service.shutdown(wait=True)

    def test_non_retryable_failure_fails_immediately(self):
        runner = _FlakyRunner(failures=99, retryable=False)
        service = _service(runner)
        record, _ = service.submit(_spec())
        final = service.wait_for(record.id, timeout=10.0)
        assert final.status == "failed"
        assert final.retries == 0
        assert runner.attempts[record.id] == 1
        assert service.stats.retried == 0
        service.shutdown(wait=True)

    def test_max_attempts_one_disables_retries(self):
        runner = _FlakyRunner(failures=1)
        service = _service(runner, max_attempts=1)
        record, _ = service.submit(_spec())
        assert service.wait_for(record.id, timeout=10.0).status == "failed"
        assert runner.attempts[record.id] == 1
        service.shutdown(wait=True)

    def test_retry_delay_is_deterministic_and_grows(self):
        service = CompilationService(runner=_FlakyRunner(),
                                     retry_backoff_s=0.5)
        first = service._retry_delay("somekey", 1)
        assert first == service._retry_delay("somekey", 1)
        assert 0.5 <= first <= 1.0
        assert service._retry_delay("somekey", 2) >= 1.0
        # Jitter desynchronizes distinct keys.
        assert service._retry_delay("otherkey", 1) != first

    def test_shutdown_without_drain_cancels_pending_retries(self):
        # A huge backoff parks the retry; shutdown must not wait it out.
        runner = _FlakyRunner(failures=99)
        service = CompilationService(runner=runner, retry_backoff_s=60.0)
        service.start()
        record, _ = service.submit(_spec())
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if service.get(record.id).retries >= 1:
                break
            time.sleep(0.02)
        else:
            pytest.fail("job never reached its first retry")
        service.shutdown(drain=False, wait=True)
        final = service.get(record.id)
        assert final.status == "failed"
        assert "cancelled" in final.error
        assert service.stats.cancelled == 1

    def test_retries_surface_on_the_wire_form(self):
        runner = _FlakyRunner(failures=1)
        service = _service(runner)
        record, _ = service.submit(_spec())
        service.wait_for(record.id, timeout=10.0)
        wire = service.lookup_wire(record.id)
        assert wire["retries"] == 1
        assert wire["degraded"] is False
        assert service.stats_wire()["counters"]["retried"] == 1
        service.shutdown(wait=True)


class TestBackpressureHints:
    def test_queue_full_error_carries_retry_after(self):
        gate = threading.Event()

        def runner(batch):
            assert gate.wait(30.0)
            return {k: compiled_outcome(k, j) for k, j in batch}

        service = _service(runner, queue_limit=1)
        service.submit(_spec(2))
        with pytest.raises(QueueFullError) as excinfo:
            service.submit(_spec(3))
        assert excinfo.value.retry_after_s >= 1.0
        gate.set()
        service.shutdown(wait=True)

    def test_healthz_degrades_above_high_water(self):
        gate = threading.Event()

        def runner(batch):
            assert gate.wait(30.0)
            return {k: compiled_outcome(k, j) for k, j in batch}

        service = _service(runner, queue_limit=4)
        assert service.healthz()["status"] == "ok"
        for modes in (1, 2, 3, 4):
            service.submit(_spec(modes))
        health = service.healthz()
        assert health["status"] == "degraded"
        assert health["ok"] is True  # degraded is a warning, not an outage
        gate.set()
        service.shutdown(wait=True)


@pytest.fixture
def serve():
    """Factory: server + default (retrying) client; cleans up on exit."""
    started = []

    def _serve(service: CompilationService, **client_kwargs) -> ServiceClient:
        service.start()
        server = ServiceServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_until_stopped,
                                  daemon=True)
        thread.start()
        started.append((service, server, thread))
        client_kwargs.setdefault("timeout", 10.0)
        client_kwargs.setdefault("retry_backoff_s", 0.05)
        return ServiceClient(server.url, **client_kwargs)

    yield _serve
    for service, server, thread in started:
        service.shutdown(drain=False)
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()


def _stub_runner(batch):
    return {key: compiled_outcome(key, job) for key, job in batch}


class TestHttpResilience:
    def test_429_response_carries_retry_after_header(self, serve):
        gate = threading.Event()

        def runner(batch):
            assert gate.wait(30.0)
            return _stub_runner(batch)

        client = serve(CompilationService(runner=runner, queue_limit=1),
                       retries=0)
        client.submit(_spec(2))
        request = urllib.request.Request(
            f"{client.base_url}/jobs",
            data=b'{"modes": 3, "method": "independent"}',
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 429
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        gate.set()

    def test_client_absorbs_transient_handler_faults(self, serve):
        client = serve(CompilationService(runner=_stub_runner), retries=2)
        chaos.configure("http.handler=once")
        # First request hits the tripped handler (503 + Retry-After: 1);
        # the client retries and lands on a healthy one.
        assert client.healthz()["ok"] is True

    def test_client_without_retries_sees_the_fault(self, serve):
        client = serve(CompilationService(runner=_stub_runner), retries=0)
        chaos.configure("http.handler=once")
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert "chaos fault injected" in str(excinfo.value)

    def test_wait_timeout_is_typed(self, serve):
        gate = threading.Event()

        def runner(batch):
            assert gate.wait(30.0)
            return _stub_runner(batch)

        client = serve(CompilationService(runner=runner))
        record = client.submit(_spec())
        with pytest.raises(WaitTimeout) as excinfo:
            client.wait(record["id"], timeout=0.3, poll_s=0.05)
        assert excinfo.value.record["status"] in ("queued", "running")
        gate.set()

    def test_job_failed_error_points_at_forensics(self, serve):
        def runner(batch):
            return {
                key: compiled_outcome(key, job, status="error",
                                      error="BoomError: induced")
                for key, job in batch
            }

        client = serve(CompilationService(runner=runner, max_attempts=1))
        record = client.submit(_spec())
        with pytest.raises(JobFailedError) as excinfo:
            client.wait(record["id"], timeout=10.0)
        assert "forensics" in str(excinfo.value)
        assert excinfo.value.forensics_path == \
            f"/jobs/{record['id']}/forensics"
