"""Shared fixtures for the service tests."""

import pytest

from repro.core import FermihedralConfig, SolverBudget


@pytest.fixture
def fast_config():
    return FermihedralConfig(budget=SolverBudget(time_budget_s=30.0))
