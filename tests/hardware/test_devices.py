"""Tests for the named device registry and spec parsing."""

import pytest

from repro.hardware import (
    DeviceTopology,
    TopologyError,
    get_device,
    linear_topology,
    list_devices,
    resolve_device,
)


class TestPresets:
    def test_registry_is_non_empty_and_sorted(self):
        names = [name for name, _ in list_devices()]
        assert names == sorted(names)
        assert "ibm-falcon-27" in names

    def test_every_preset_builds(self):
        for name, _ in list_devices():
            topology = get_device(name)
            assert topology.num_qubits >= 1

    def test_falcon_is_heavy_hex_shaped(self):
        falcon = get_device("ibm-falcon-27")
        assert falcon.num_qubits == 27
        assert len(falcon.edges) == 28
        assert max(falcon.degree(q) for q in range(27)) == 3

    def test_ionq_is_all_to_all(self):
        aria = get_device("ionq-aria-25")
        assert aria.diameter == 1

    def test_lookup_is_cached(self):
        assert get_device("ibmq-manila") is get_device("ibmq-manila")

    def test_case_insensitive(self):
        assert get_device("IBMQ-Manila").name == "ibmq-manila"


class TestSpecs:
    @pytest.mark.parametrize("spec, qubits", [
        ("linear-7", 7),
        ("ring-5", 5),
        ("grid-3x3", 9),
        ("grid-2x4", 8),
        ("heavy-hex-1x1", 12),
        ("all-to-all-6", 6),
    ])
    def test_parametric_specs(self, spec, qubits):
        assert get_device(spec).num_qubits == qubits

    def test_unknown_name_rejected(self):
        with pytest.raises(TopologyError):
            get_device("torus-4x4")

    def test_bad_grid_dimensions_rejected(self):
        with pytest.raises(TopologyError):
            get_device("grid-3")

    def test_bad_count_rejected(self):
        with pytest.raises(TopologyError):
            get_device("linear-abc")


class TestResolve:
    def test_none_passes_through(self):
        assert resolve_device(None) is None

    def test_topology_passes_through(self):
        line = linear_topology(3)
        assert resolve_device(line) is line

    def test_string_resolves(self):
        assert isinstance(resolve_device("grid-2x2"), DeviceTopology)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            resolve_device(5)
