"""Tests for the hardware cost model and connectivity weights."""

import pytest

from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import h2_hamiltonian
from repro.hardware import (
    HardwareCost,
    HardwareCostModel,
    TopologyError,
    all_to_all_topology,
    connectivity_weights,
    grid_topology,
    linear_topology,
)
from repro.paulis import PauliSum


class TestConnectivityWeights:
    def test_all_to_all_is_uniform(self):
        weights = connectivity_weights(all_to_all_topology(6), 6)
        assert len(set(weights)) == 1

    def test_line_ends_cost_more(self):
        weights = connectivity_weights(linear_topology(5), 5)
        assert weights[0] > weights[2]
        assert weights == tuple(reversed(weights))  # symmetric chain

    def test_weights_are_positive_integers(self):
        for weights in (
            connectivity_weights(grid_topology(3, 3)),
            connectivity_weights(linear_topology(8), 4),
        ):
            assert all(isinstance(w, int) and w >= 1 for w in weights)

    def test_single_logical_qubit(self):
        assert connectivity_weights(linear_topology(3), 1) == (1,)

    def test_logical_count_capped_by_device(self):
        with pytest.raises(TopologyError):
            connectivity_weights(linear_topology(3), 4)

    def test_restricted_to_logical_prefix(self):
        # with 2 logical qubits on a 5-line, only qubits 0 and 1 matter —
        # they are equally connected, so both get the unit weight
        assert connectivity_weights(linear_topology(5), 2) == (1, 1)

    def test_best_connected_qubit_costs_one(self):
        for topology in (linear_topology(7), grid_topology(3, 3)):
            assert min(connectivity_weights(topology)) == 1


class TestHardwareCost:
    def test_dict_round_trip(self):
        cost = HardwareCost(
            device="linear-5", num_physical_qubits=5, two_qubit_count=59,
            swap_count=9, depth=73, single_qubit_count=26,
            logical_two_qubit_count=32, logical_depth=50,
        )
        assert HardwareCost.from_dict(cost.as_dict()) == cost

    def test_routing_overhead(self):
        cost = HardwareCost("d", 4, 10, 2, 9, 3, 4, 8)
        assert cost.routing_overhead == 6

    def test_sort_key_orders_by_two_qubit_first(self):
        cheap = HardwareCost("d", 4, 10, 0, 99, 99, 10, 99)
        costly = HardwareCost("d", 4, 11, 0, 1, 1, 11, 1)
        assert cheap.sort_key < costly.sort_key


class TestHardwareCostModel:
    def test_all_to_all_has_zero_overhead(self):
        model = HardwareCostModel(all_to_all_topology(4))
        cost = model.cost_of_encoding(bravyi_kitaev(4), h2_hamiltonian())
        assert cost.swap_count == 0
        assert cost.routing_overhead == 0

    def test_sparse_device_costs_at_least_logical(self):
        model = HardwareCostModel(linear_topology(5))
        cost = model.cost_of_encoding(bravyi_kitaev(4), h2_hamiltonian())
        assert cost.two_qubit_count >= cost.logical_two_qubit_count
        assert cost.device == "linear-5"
        assert cost.num_physical_qubits == 5

    def test_hamiltonian_independent_proxy(self):
        model = HardwareCostModel(linear_topology(4))
        cost = model.cost_of_encoding(jordan_wigner(4))
        assert cost.two_qubit_count >= 0
        assert cost.logical_two_qubit_count > 0

    def test_operator_larger_than_device_rejected(self):
        model = HardwareCostModel(linear_topology(3))
        with pytest.raises(TopologyError):
            model.cost_of_operator(PauliSum.from_label("XXXX", 1.0))

    def test_best_encoding_picks_minimum(self):
        model = HardwareCostModel(linear_topology(5))
        h2 = h2_hamiltonian()
        candidates = [jordan_wigner(4), bravyi_kitaev(4)]
        best, cost = model.best_encoding(candidates, h2)
        all_costs = [model.cost_of_encoding(c, h2) for c in candidates]
        assert cost.two_qubit_count == min(c.two_qubit_count for c in all_costs)
        assert best in candidates

    def test_best_encoding_tie_keeps_first(self):
        model = HardwareCostModel(all_to_all_topology(4))
        bk = bravyi_kitaev(4)
        same = bravyi_kitaev(4)
        best, _ = model.best_encoding([bk, same], h2_hamiltonian())
        assert best is bk

    def test_best_encoding_needs_candidates(self):
        with pytest.raises(ValueError):
            HardwareCostModel(linear_topology(2)).best_encoding([])

    def test_deterministic(self):
        model = HardwareCostModel(grid_topology(2, 2))
        h2 = h2_hamiltonian()
        assert (model.cost_of_encoding(bravyi_kitaev(4), h2)
                == model.cost_of_encoding(bravyi_kitaev(4), h2))
