"""Tests for device coupling graphs and their metrics."""

import pytest

from repro.hardware import (
    DeviceTopology,
    TopologyError,
    all_to_all_topology,
    grid_topology,
    heavy_hex_topology,
    linear_topology,
    ring_topology,
)


class TestConstruction:
    def test_basic_graph(self):
        topology = DeviceTopology(3, [(0, 1), (1, 2)], name="v")
        assert topology.num_qubits == 3
        assert topology.edges == ((0, 1), (1, 2))

    def test_edges_are_canonicalized(self):
        topology = DeviceTopology(3, [(2, 1), (1, 0), (0, 1)])
        assert topology.edges == ((0, 1), (1, 2))

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            DeviceTopology(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(TopologyError):
            DeviceTopology(2, [(0, 2)])

    def test_disconnected_rejected(self):
        with pytest.raises(TopologyError):
            DeviceTopology(4, [(0, 1), (2, 3)])

    def test_single_qubit_allowed(self):
        assert linear_topology(1).num_qubits == 1

    def test_equality_is_shape(self):
        assert linear_topology(2) == DeviceTopology(2, [(0, 1)], name="other")
        assert hash(linear_topology(3)) == hash(linear_topology(3))
        assert linear_topology(3) != ring_topology(3)


class TestMetric:
    def test_linear_distances(self):
        line = linear_topology(5)
        assert line.distance(0, 4) == 4
        assert line.distance(2, 2) == 0
        assert line.diameter == 4

    def test_ring_wraps(self):
        ring = ring_topology(6)
        assert ring.distance(0, 5) == 1
        assert ring.distance(0, 3) == 3
        assert ring.diameter == 3

    def test_grid_manhattan(self):
        grid = grid_topology(3, 3)
        assert grid.distance(0, 8) == 4  # corner to corner
        assert grid.distance(0, 4) == 2

    def test_all_to_all(self):
        full = all_to_all_topology(5)
        assert full.diameter == 1
        assert full.degree(0) == 4

    def test_neighbors_sorted(self):
        grid = grid_topology(3, 3)
        assert grid.neighbors(4) == (1, 3, 5, 7)

    def test_shortest_path_is_valid(self):
        grid = grid_topology(3, 3)
        path = grid.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == grid.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert grid.is_adjacent(a, b)

    def test_next_hop_deterministic_smallest_neighbor(self):
        grid = grid_topology(3, 3)
        # both 1 and 3 reduce the distance to 8; the smaller index wins
        assert grid.next_hop(0, 8) == 1

    def test_next_hop_same_qubit_rejected(self):
        with pytest.raises(TopologyError):
            linear_topology(3).next_hop(1, 1)

    def test_qubit_range_checked(self):
        with pytest.raises(TopologyError):
            linear_topology(3).distance(0, 3)


class TestHeavyHex:
    def test_single_cell_is_twelve_qubit_ring(self):
        cell = heavy_hex_topology(1, 1)
        assert cell.num_qubits == 12
        assert all(cell.degree(q) == 2 for q in range(12))
        assert cell.diameter == 6

    def test_degree_capped_at_three(self):
        lattice = heavy_hex_topology(2, 2)
        assert max(lattice.degree(q) for q in range(lattice.num_qubits)) <= 3

    def test_bridge_qubits_have_degree_two(self):
        lattice = heavy_hex_topology(1, 2)
        # every edge qubit (index >= vertex count) bridges exactly two vertices
        vertex_count = lattice.num_qubits - len(lattice.edges) // 2
        assert all(
            lattice.degree(q) == 2 for q in range(vertex_count, lattice.num_qubits)
        )


class TestBuilderValidation:
    def test_ring_needs_three(self):
        with pytest.raises(TopologyError):
            ring_topology(2)

    def test_grid_positive(self):
        with pytest.raises(TopologyError):
            grid_topology(0, 3)

    def test_default_names(self):
        assert linear_topology(4).name == "linear-4"
        assert grid_topology(2, 3).name == "grid-2x3"
        assert all_to_all_topology(6).name == "all-to-all-6"
