"""Tests for SWAP-insertion routing and layout selection."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, cnot, h, rz, trotter_circuit
from repro.hardware import (
    TopologyError,
    all_to_all_topology,
    greedy_layout,
    grid_topology,
    interaction_weights,
    layout_for_circuit,
    linear_topology,
    route_circuit,
)
from repro.paulis import PauliSum
from repro.simulator import run_circuit, zero_state


def _permuted_state(state, final_layout, num_physical):
    """Embed a logical state onto physical qubits per the final layout."""
    amplitudes = np.zeros(2**num_physical, dtype=complex)
    for index in range(len(state)):
        physical_index = 0
        for logical in range(len(final_layout)):
            if (index >> logical) & 1:
                physical_index |= 1 << final_layout[logical]
        amplitudes[physical_index] = state[index]
    return amplitudes


class TestRouteCircuit:
    def test_adjacent_gates_pass_through(self):
        circuit = QuantumCircuit(3, [h(0), cnot(0, 1), cnot(1, 2)])
        result = route_circuit(circuit, linear_topology(3))
        assert result.swap_count == 0
        assert result.two_qubit_count == 2
        assert result.final_layout == (0, 1, 2)

    def test_distant_cnot_inserts_swaps(self):
        circuit = QuantumCircuit(4, [cnot(0, 3)])
        result = route_circuit(circuit, linear_topology(4))
        assert result.swap_count == 2  # distance 3 -> 2 swaps
        assert result.two_qubit_count == 7  # 2 * 3 + 1
        assert result.routing_overhead == 6

    def test_all_to_all_is_free(self):
        circuit = QuantumCircuit(4, [cnot(0, 3), cnot(1, 2), cnot(0, 2)])
        result = route_circuit(circuit, all_to_all_topology(4))
        assert result.swap_count == 0
        assert result.two_qubit_count == circuit.cnot_count

    def test_single_qubit_gates_follow_the_layout(self):
        circuit = QuantumCircuit(2, [rz(1, 0.5)])
        result = route_circuit(circuit, linear_topology(4), initial_layout=(2, 3))
        assert result.circuit.gates[0].qubits == (3,)

    def test_routed_state_equals_logical_state_up_to_layout(self):
        """The strong invariant: routing only permutes qubits."""
        operator = (
            PauliSum.from_label("XZY", 0.3)
            + PauliSum.from_label("ZXX", 0.7)
            + PauliSum.from_label("YYI", 0.4)
        )
        logical = trotter_circuit(operator, 1.0)
        topology = grid_topology(2, 3)
        result = route_circuit(logical, topology, initial_layout=(4, 0, 3))

        logical_state = run_circuit(logical, zero_state(3))
        routed_state = run_circuit(result.circuit, zero_state(6))
        expected = _permuted_state(logical_state, result.final_layout, 6)
        assert np.allclose(expected, routed_state, atol=1e-9)

    def test_circuit_larger_than_device_rejected(self):
        with pytest.raises(TopologyError):
            route_circuit(QuantumCircuit(5), linear_topology(3))

    def test_duplicate_layout_rejected(self):
        with pytest.raises(TopologyError):
            route_circuit(QuantumCircuit(2), linear_topology(3),
                          initial_layout=(1, 1))

    def test_layout_outside_device_rejected(self):
        with pytest.raises(TopologyError):
            route_circuit(QuantumCircuit(2), linear_topology(3),
                          initial_layout=(0, 3))

    def test_deterministic(self):
        circuit = QuantumCircuit(4, [cnot(0, 3), cnot(3, 1), cnot(2, 0)])
        first = route_circuit(circuit, linear_topology(5))
        second = route_circuit(circuit, linear_topology(5))
        assert [repr(g) for g in first.circuit] == [repr(g) for g in second.circuit]


class TestInteractionWeights:
    def test_counts_pairs_unordered(self):
        circuit = QuantumCircuit(3, [cnot(0, 1), cnot(1, 0), cnot(1, 2)])
        assert interaction_weights(circuit) == {(0, 1): 2, (1, 2): 1}

    def test_single_qubit_gates_ignored(self):
        assert interaction_weights(QuantumCircuit(2, [h(0), rz(1, 0.2)])) == {}


class TestGreedyLayout:
    def test_is_an_injective_placement(self):
        layout = greedy_layout({(0, 1): 3, (1, 2): 1}, 3, grid_topology(2, 3))
        assert len(set(layout)) == 3
        assert all(0 <= q < 6 for q in layout)

    def test_heavy_pair_placed_adjacent(self):
        line = linear_topology(6)
        layout = greedy_layout({(0, 1): 10, (2, 3): 1}, 4, line)
        assert line.distance(layout[0], layout[1]) == 1

    def test_too_many_logical_qubits_rejected(self):
        with pytest.raises(TopologyError):
            greedy_layout({}, 4, linear_topology(3))

    def test_pair_outside_circuit_rejected(self):
        with pytest.raises(TopologyError):
            greedy_layout({(0, 5): 1}, 3, linear_topology(6))
        with pytest.raises(TopologyError):
            greedy_layout({(1, -1): 1}, 3, linear_topology(6))

    def test_layout_reduces_swaps_versus_identity(self):
        """On a line, a circuit whose hot pair is (0, 3) should route with
        fewer SWAPs after the greedy placement."""
        gates = [cnot(0, 3)] * 4
        circuit = QuantumCircuit(4, gates)
        line = linear_topology(4)
        identity = route_circuit(circuit, line)
        placed = route_circuit(circuit, line,
                               initial_layout=layout_for_circuit(circuit, line))
        assert placed.swap_count <= identity.swap_count

    def test_deterministic(self):
        weights = {(0, 1): 2, (1, 2): 2, (0, 3): 1}
        grid = grid_topology(3, 3)
        assert greedy_layout(weights, 4, grid) == greedy_layout(weights, 4, grid)
