"""End-to-end resilience drills against the real service stack.

These run the whole machine — daemon, process pool, cache, checkpoint
store — under injected faults: a worker SIGKILLed mid-descent must be
retried and resume from its checkpoint; an expired deadline must return
a valid best-so-far encoding marked degraded, never an error.
"""

import multiprocessing

import pytest

from repro import chaos
from repro.core.verify import verify_encoding
from repro.service import CompilationService
from repro.store import CompilationCache

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-kill drill needs fork-based process pools",
)


@pytest.fixture(autouse=True)
def _no_ambient_chaos():
    chaos.reset()
    yield
    chaos.reset()


@needs_fork
def test_killed_worker_retries_and_resumes_from_checkpoint(
    tmp_path, monkeypatch
):
    # Every attempt's worker completes exactly one descent rung (and its
    # checkpoint write) before the chaos engine SIGKILLs it, so each
    # supervised retry must resume one rung further — the job converges
    # if and only if checkpoint/resume actually works.
    monkeypatch.setenv(chaos.CHAOS_ENV, "solver.slice=after:1:kill")
    chaos.reset()
    service = CompilationService(
        cache=CompilationCache(tmp_path), jobs=2,
        max_attempts=4, retry_backoff_s=0.01,
    )
    service.start()
    try:
        record, _ = service.submit({"modes": 3, "method": "independent"})
        final = service.wait_for(record.id, timeout=120.0)
        assert final.status == "done"
        assert final.retries >= 1          # at least one worker was killed
        assert service.stats.retried >= 1
        result = final.result
        assert result.proved_optimal
        assert result.weight == 11         # the known n=3 optimum
        assert result.descent.resumed      # the winning attempt warm-started
        assert verify_encoding(result.encoding).valid
        # The proved run cleared its checkpoint behind itself.
        assert not service.cache.checkpoint_path(record.id).exists()
    finally:
        service.shutdown(drain=False, wait=True)


def test_deadline_job_degrades_gracefully_over_the_service(tmp_path):
    service = CompilationService(cache=CompilationCache(tmp_path), jobs=1)
    service.start()
    try:
        record, _ = service.submit({
            "modes": 4, "method": "independent",
            "config": {"deadline_s": 1e-6},
        })
        final = service.wait_for(record.id, timeout=60.0)
        assert final.status == "done"      # degradation is not a failure
        result = final.result
        assert result.degraded
        assert not result.proved_optimal
        assert verify_encoding(result.encoding).valid
        assert service.stats.degraded == 1
        assert service.lookup_wire(record.id)["degraded"] is True
    finally:
        service.shutdown(drain=False, wait=True)
