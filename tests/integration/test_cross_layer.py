"""Cross-layer integration tests beyond the headline pipeline.

These tie together subsystems that the end-to-end test does not cover:
serialization round trips through compilation, tapering of SAT-found
encodings, measurement-based estimation on compiled circuits, scheduling +
optimization interplay, and the CLI driving the whole stack.
"""

import numpy as np
import pytest

from repro import (
    FermihedralConfig,
    SolverBudget,
    bravyi_kitaev,
    diagonalize,
    h2_hamiltonian,
    hubbard_chain,
    jordan_wigner,
    optimize_circuit,
    run_circuit,
    solve_full_sat,
    trotter_circuit,
)
from repro.circuits import greedy_cancellation_order
from repro.encodings.serialization import encoding_from_dict, encoding_to_dict
from repro.simulator import measured_energy_statistics
from repro.tapering import find_z2_symmetries, taper_all_sectors


@pytest.fixture(scope="module")
def h2():
    return h2_hamiltonian()


@pytest.fixture(scope="module")
def sat_result(h2):
    config = FermihedralConfig(budget=SolverBudget(time_budget_s=30))
    return solve_full_sat(h2, config)


class TestSerializationThroughCompilation:
    def test_sat_encoding_round_trips(self, sat_result, h2):
        data = encoding_to_dict(sat_result.encoding)
        rebuilt = encoding_from_dict(data)
        assert rebuilt.hamiltonian_pauli_weight(h2) == sat_result.weight


class TestTaperingSatEncodings:
    def test_sat_encoded_h2_still_tapers(self, sat_result, h2):
        """Symmetry structure survives the optimal encoding: the encoded H2
        has Z2 symmetries under *any* valid encoding, and sector spectra
        tile the original spectrum."""
        encoded = sat_result.encoding.encode(h2)
        generators = find_z2_symmetries(encoded)
        assert generators
        sectors = taper_all_sectors(encoded, generators)
        from repro.paulis import pauli_sum_matrix

        combined = np.sort(
            np.concatenate(
                [np.linalg.eigvalsh(pauli_sum_matrix(op)) for op in sectors.values()]
            )
        )
        original = np.linalg.eigvalsh(pauli_sum_matrix(encoded))
        assert np.allclose(combined, original, atol=1e-8)


class TestMeasurementOnCompiledCircuits:
    def test_shot_estimate_after_trotter_evolution(self, h2):
        """Evolve the ground state, then estimate energy by sampling: the
        estimate must agree with the exact expectation within shot noise."""
        encoding = bravyi_kitaev(4)
        encoded = encoding.encode(h2)
        spectrum = diagonalize(encoded)
        circuit = optimize_circuit(
            trotter_circuit(encoded.without_identity(), time=1.0)
        )
        final = run_circuit(circuit, spectrum.eigenstate(0))
        mean, std = measured_energy_statistics(
            final, encoded, repetitions=10, shots_per_group=4000, seed=3
        )
        from repro.simulator import expectation_pauli_sum

        exact = expectation_pauli_sum(final, encoded)
        assert mean == pytest.approx(exact, abs=0.03)
        assert std < 0.05


class TestSchedulingInteroperability:
    def test_scheduled_trotter_same_depth_or_better_after_peephole(self):
        hamiltonian = hubbard_chain(2, periodic=False)
        operator = jordan_wigner(4).encode(hamiltonian).without_identity()
        plain = optimize_circuit(trotter_circuit(operator, 1.0))
        scheduled = optimize_circuit(
            trotter_circuit(operator, 1.0, term_order=greedy_cancellation_order(operator))
        )
        assert scheduled.total_count <= plain.total_count

    def test_second_order_trotter_composes_with_scheduling(self):
        hamiltonian = hubbard_chain(2, periodic=False)
        operator = jordan_wigner(4).encode(hamiltonian).without_identity()
        order = greedy_cancellation_order(operator)
        circuit = optimize_circuit(
            trotter_circuit(operator, 1.0, steps=2, term_order=order, order=2)
        )
        assert circuit.total_count > 0
        # symmetric formula: forward + reversed half-steps per step
        unoptimized = trotter_circuit(operator, 1.0, steps=2, term_order=order, order=2)
        assert circuit.total_count <= unoptimized.total_count


class TestCliDrivesFullStack:
    def test_solve_compile_verify_loop(self, tmp_path, capsys):
        from repro.cli import main

        encoding_file = tmp_path / "hubbard2.json"
        assert main([
            "solve", "--model", "hubbard:2", "--budget-s", "20",
            "--no-alg", "--output", str(encoding_file),
        ]) == 0
        assert main([
            "compile", "--model", "hubbard:2", "--encoding", str(encoding_file),
        ]) == 0
        assert main(["verify", str(encoding_file)]) == 0
        out = capsys.readouterr().out
        assert "gates:" in out
        assert "anticommutativity:       True" in out
