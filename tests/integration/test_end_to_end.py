"""End-to-end integration tests: the full paper pipeline.

compile encoding -> encode Hamiltonian -> synthesize circuit -> simulate,
checking physics invariants (spectra, stationarity of eigenstates) across
every layer boundary.
"""

import numpy as np
import pytest

from repro import (
    FermihedralCompiler,
    FermihedralConfig,
    NoiseModel,
    SolverBudget,
    bravyi_kitaev,
    diagonalize,
    expectation_pauli_sum,
    h2_hamiltonian,
    hubbard_chain,
    jordan_wigner,
    optimize_circuit,
    run_circuit,
    simulate_noisy_energy,
    solve_full_sat,
    trotter_circuit,
    verify_encoding,
)


@pytest.fixture(scope="module")
def h2():
    return h2_hamiltonian()


@pytest.fixture(scope="module")
def sat_encoding_h2(h2):
    config = FermihedralConfig(budget=SolverBudget(time_budget_s=45))
    return solve_full_sat(h2, config).encoding


class TestSpectrumInvariance:
    def test_sat_encoding_preserves_h2_spectrum(self, h2, sat_encoding_h2):
        """The SAT-found encoding is a valid fermion-to-qubit mapping: the
        encoded Hamiltonian has the same spectrum as under Jordan-Wigner."""
        reference = diagonalize(jordan_wigner(4).encode(h2)).energies
        candidate = diagonalize(sat_encoding_h2.encode(h2)).energies
        assert np.allclose(reference, candidate, atol=1e-8)

    def test_sat_encoding_is_verified_valid(self, sat_encoding_h2):
        assert verify_encoding(sat_encoding_h2).valid


class TestWeightToGateCount:
    def test_lower_weight_encoding_gives_fewer_gates(self, h2, sat_encoding_h2):
        """Table 6's causal chain: lower Pauli weight -> fewer gates after
        identical synthesis+optimization."""
        bk = bravyi_kitaev(4)
        bk_weight = bk.hamiltonian_pauli_weight(h2)
        sat_weight = sat_encoding_h2.hamiltonian_pauli_weight(h2)
        assert sat_weight <= bk_weight

        bk_circuit = optimize_circuit(
            trotter_circuit(bk.encode(h2).without_identity(), time=1.0)
        )
        sat_circuit = optimize_circuit(
            trotter_circuit(sat_encoding_h2.encode(h2).without_identity(), time=1.0)
        )
        assert sat_circuit.total_count <= bk_circuit.total_count


class TestTimeEvolution:
    def test_eigenstate_stationary_under_noiseless_evolution(self, h2, sat_encoding_h2):
        """Figures 8/9's physics: starting from an eigenstate, energy after
        exp(iHt) is conserved (up to Trotter error)."""
        encoded = sat_encoding_h2.encode(h2)
        spectrum = diagonalize(encoded)
        circuit = trotter_circuit(encoded.without_identity(), time=1.0, steps=2)
        for level in (0, 1):
            initial = spectrum.eigenstate(level)
            final = run_circuit(circuit, initial)
            energy = expectation_pauli_sum(final, encoded)
            assert energy == pytest.approx(spectrum.energy(level), abs=0.05)

    def test_noise_degrades_energy_monotonically(self, h2):
        """Figure 8's trend: more 2q noise, more drift from the eigenvalue."""
        encoding = jordan_wigner(4)
        encoded = encoding.encode(h2)
        spectrum = diagonalize(encoded)
        ground = spectrum.eigenstate(0)
        circuit = optimize_circuit(trotter_circuit(encoded.without_identity(), 1.0))

        drifts = []
        for error_rate in (0.0, 0.01, 0.08):
            stats = simulate_noisy_energy(
                circuit,
                encoded,
                ground,
                NoiseModel(two_qubit_error=error_rate),
                shots=120,
                seed=11,
            )
            drifts.append(abs(stats.mean - spectrum.ground_energy))
        assert drifts[0] == pytest.approx(drifts[0])
        assert drifts[0] < drifts[1] < drifts[2]


class TestHubbardPipeline:
    def test_hubbard_compile_and_simulate(self):
        hamiltonian = hubbard_chain(2, periodic=False)
        config = FermihedralConfig(budget=SolverBudget(time_budget_s=20))
        result = FermihedralCompiler(4, config).sat_with_annealing(hamiltonian)
        encoded = result.encoding.encode(hamiltonian)
        assert encoded.is_hermitian()
        spectrum = diagonalize(encoded)
        reference = diagonalize(jordan_wigner(4).encode(hamiltonian))
        assert np.allclose(spectrum.energies, reference.energies, atol=1e-8)
