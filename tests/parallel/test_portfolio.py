"""Portfolio racing: correctness, determinism, incremental surface."""

import itertools
import random

import pytest

from repro.core.config import FermihedralConfig
from repro.core.descent import descend
from repro.parallel.portfolio import (
    PortfolioSolver,
    SolverStrategy,
    diversified_strategies,
)
from repro.sat import CdclSolver, CnfFormula, dpll_solve, evaluate_formula


def _random_formula(seed: int, num_vars: int, num_clauses: int) -> CnfFormula:
    rng = random.Random(seed)
    formula = CnfFormula()
    formula.new_variables(num_vars)
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        formula.add_clause(
            rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(width)
        )
    return formula


def _pigeonhole(pigeons: int, holes: int) -> CnfFormula:
    formula = CnfFormula()
    slot = {}
    for p in range(pigeons):
        for h in range(holes):
            slot[p, h] = formula.new_variable()
    for p in range(pigeons):
        formula.add_clause(slot[p, h] for h in range(holes))
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            formula.add_clause((-slot[p1, h], -slot[p2, h]))
    return formula


class TestStrategies:
    def test_worker_zero_is_reference(self):
        strategies = diversified_strategies(4)
        assert strategies[0] == SolverStrategy.reference()
        assert len(strategies) == 4
        assert len({s.name for s in strategies}) == 4

    def test_deterministic_assignment(self):
        assert diversified_strategies(5) == diversified_strategies(5)

    def test_rejects_empty_portfolio(self):
        with pytest.raises(ValueError):
            diversified_strategies(0)
        formula = CnfFormula()
        formula.new_variable()
        with pytest.raises(ValueError):
            PortfolioSolver(formula, workers=0)


class TestRacing:
    def test_single_worker_equals_reference_solver(self):
        formula = _random_formula(7, 8, 20)
        reference = CdclSolver(formula).solve()
        with PortfolioSolver(formula, workers=1) as portfolio:
            raced = portfolio.solve()
        assert raced.status == reference.status
        assert raced.model == reference.model

    @pytest.mark.parametrize("workers", [2, 4])
    def test_statuses_match_dpll(self, workers):
        for seed in range(10):
            formula = _random_formula(seed, 7, 18)
            expected = dpll_solve(formula).status
            with PortfolioSolver(formula, workers=workers) as portfolio:
                result = portfolio.solve()
            assert result.status == expected, seed
            if result.is_sat:
                assert evaluate_formula(formula, result.model)

    def test_run_to_run_model_determinism(self):
        formula = _random_formula(21, 9, 20)
        models = []
        for _ in range(2):
            with PortfolioSolver(formula, workers=3, round_conflicts=4) as p:
                result = p.solve()
                models.append(result.model)
        assert models[0] == models[1]

    def test_unsat_race(self):
        formula = _pigeonhole(5, 4)
        with PortfolioSolver(formula, workers=3) as portfolio:
            result = portfolio.solve()
        assert result.is_unsat and not result.under_assumptions

    def test_conflict_budget_returns_unknown(self):
        formula = _pigeonhole(7, 6)
        with PortfolioSolver(formula, workers=2, round_conflicts=8) as portfolio:
            result = portfolio.solve(max_conflicts=16)
        assert result.status == "UNKNOWN"
        assert result.conflicts > 0  # both members actually worked

    def test_incremental_surface(self):
        formula = CnfFormula()
        a, b, c = formula.new_variables(3)
        formula.add_clause((a, b, c))
        with PortfolioSolver(formula, workers=2) as portfolio:
            first = portfolio.solve()
            assert first.is_sat
            # blocking clauses broadcast to every member
            portfolio.add_clause([
                (-v if first.model[v] else v) for v in (a, b, c)
            ])
            second = portfolio.solve()
            assert second.is_sat and second.model != first.model
            under = portfolio.solve(assumptions=[-a, -b, -c])
            assert under.is_unsat and under.under_assumptions
            portfolio.set_phases({a: True, b: True, c: True})
            assert portfolio.solve().is_sat

    def test_close_is_idempotent(self):
        formula = CnfFormula()
        formula.new_variable()
        portfolio = PortfolioSolver(formula, workers=2)
        portfolio.close()
        portfolio.close()


class TestDescentDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_same_optimum_at_any_width(self, workers):
        result = descend(2, FermihedralConfig(portfolio=workers))
        assert result.weight == 6
        assert result.proved_optimal

    def test_three_modes_weight_and_proof_agree(self):
        outcomes = {
            workers: descend(3, FermihedralConfig(portfolio=workers))
            for workers in (1, 2, 4)
        }
        weights = {r.weight for r in outcomes.values()}
        assert weights == {11}
        assert all(r.proved_optimal for r in outcomes.values())
        # identical bound trajectories: statuses are objective per bound
        trajectories = {
            w: [(s.bound, s.status) for s in r.steps] for w, r in outcomes.items()
        }
        assert trajectories[1] == trajectories[2] == trajectories[4]

    def test_fixed_width_reproducible_encoding(self):
        first = descend(2, FermihedralConfig(portfolio=2))
        second = descend(2, FermihedralConfig(portfolio=2))
        assert [s.label() for s in first.encoding.strings] == [
            s.label() for s in second.encoding.strings
        ]
