"""Process-pool batch executor: isolation, fast paths, events, identity."""

import pytest

from repro.core.config import FermihedralConfig
from repro.parallel.events import (
    BatchFinished,
    BatchStarted,
    JobFinished,
    JobStarted,
    event_to_dict,
    format_event,
)
from repro.parallel.executor import ProcessBatchExecutor
from repro.store import BatchCompiler, CompilationCache, CompileJob


def _job(modes: int, label: str | None = None, **kwargs) -> CompileJob:
    return CompileJob(method="independent", num_modes=modes, label=label, **kwargs)


#: A job that fingerprints fine in the parent but explodes inside the
#: worker: the qubit_weights length contradicts the mode count, which
#: only ``descend`` checks.
def _poison_job(label: str = "poison") -> CompileJob:
    return _job(2, label=label, config=FermihedralConfig(qubit_weights=(1, 1, 1)))


class TestExecutor:
    def test_runs_unique_jobs(self):
        executor = ProcessBatchExecutor(jobs=2)
        outcomes = executor.run([("k1", _job(2, "a")), ("k2", _job(3, "b"))])
        assert set(outcomes) == {"k1", "k2"}
        assert outcomes["k1"].status == "compiled"
        assert outcomes["k1"].result.weight == 6
        assert outcomes["k2"].result.weight == 11

    def test_failure_is_isolated_per_job(self):
        executor = ProcessBatchExecutor(jobs=2)
        outcomes = executor.run([
            ("good", _job(2, "good")),
            ("bad", _poison_job()),
            ("also-good", _job(3, "also-good")),
        ])
        assert outcomes["bad"].status == "error"
        assert "qubit_weights" in outcomes["bad"].error
        assert outcomes["bad"].result is None
        assert outcomes["good"].status == "compiled"
        assert outcomes["also-good"].status == "compiled"

    def test_parent_fast_path_skips_dispatch(self, tmp_path, monkeypatch):
        cache = CompilationCache(tmp_path)
        job = _job(2, "warm")
        key = BatchCompiler(cache=cache)._job_key(job)
        first = ProcessBatchExecutor(jobs=2, cache=cache).run([(key, job)])
        assert first[key].status == "compiled"

        # Once the entry is final, the executor must answer from the
        # parent without creating any worker process.
        import repro.parallel.executor as executor_module

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("worker pool should not be created on a full hit")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", forbid)
        cache2 = CompilationCache(tmp_path)
        second = ProcessBatchExecutor(jobs=2, cache=cache2).run([(key, job)])
        assert second[key].status == "cache-hit"
        assert second[key].result.weight == 6
        assert cache2.stats.hits == 1

    def test_executor_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            ProcessBatchExecutor(jobs=0)


class TestBatchCompilerProcessPath:
    def test_jobs_1_and_4_identical_results(self):
        jobs = [_job(2, "a"), _job(2, "a-dup"), _job(3, "b")]
        serial = BatchCompiler(jobs=1).compile(jobs)
        parallel = BatchCompiler(jobs=4).compile(jobs)
        assert [o.status for o in serial.outcomes] == [
            o.status for o in parallel.outcomes
        ]
        assert [(o.result.weight, o.result.proved_optimal)
                for o in serial.outcomes] == [
            (o.result.weight, o.result.proved_optimal)
            for o in parallel.outcomes
        ]

    def test_dedup_before_dispatch(self):
        events = []
        jobs = [_job(2, "a"), _job(2, "b"), _job(2, "c")]
        report = BatchCompiler(jobs=2, on_event=events.append).compile(jobs)
        started = [e for e in events if isinstance(e, BatchStarted)]
        assert started[0].total == 3 and started[0].unique == 1
        assert report.counts == {"compiled": 1, "deduplicated": 2}

    def test_event_stream_shape(self):
        events = []
        report = BatchCompiler(jobs=2, on_event=events.append).compile(
            [_job(2, "a"), _job(3, "b"), _poison_job()]
        )
        assert isinstance(events[0], BatchStarted)
        assert isinstance(events[-1], BatchFinished)
        for index in range(3):
            starts = [e for e in events
                      if isinstance(e, JobStarted) and e.index == index]
            ends = [e for e in events
                    if isinstance(e, JobFinished) and e.index == index]
            assert len(starts) == 1 and len(ends) == 1
            assert events.index(starts[0]) < events.index(ends[0])
        error_events = [e for e in events
                        if isinstance(e, JobFinished) and e.status == "error"]
        assert len(error_events) == 1 and "qubit_weights" in error_events[0].error
        assert not report.ok

    def test_thread_path_emits_the_same_events(self):
        events = []
        BatchCompiler(jobs=1, on_event=events.append).compile([_job(2, "a")])
        kinds = [type(e).__name__ for e in events]
        assert kinds == ["BatchStarted", "JobStarted", "JobFinished",
                         "BatchFinished"]

    def test_process_path_persists_to_shared_cache(self, tmp_path):
        cache = CompilationCache(tmp_path)
        report = BatchCompiler(cache=cache, jobs=2).compile(
            [_job(2, "a"), _job(3, "b")]
        )
        assert report.ok
        assert len(cache) == 2
        rerun = BatchCompiler(cache=CompilationCache(tmp_path), jobs=2).compile(
            [_job(2, "a"), _job(3, "b")]
        )
        assert [o.status for o in rerun.outcomes] == ["cache-hit", "cache-hit"]


class TestEvents:
    def test_format_event_lines(self):
        start = BatchStarted(total=3, unique=2, deduplicated=1, workers=4)
        assert "3 jobs" in format_event(start)
        job_started = JobStarted(0, 2, "h2", "abc")
        assert format_event(job_started).startswith("[1/2] h2")
        done = JobFinished(1, 2, "h2", "abc", "compiled", 1.5, weight=12)
        assert "weight 12" in format_event(done)
        failed = JobFinished(1, 2, "h2", "abc", "error", 0.1, error="Boom")
        assert "Boom" in format_event(failed)
        finished = BatchFinished(total=2, elapsed_s=2.0, counts={"compiled": 2})
        assert "2 compiled" in format_event(finished)
        with pytest.raises(TypeError):
            format_event("not an event")

    def test_event_to_dict(self):
        event = JobStarted(0, 1, "x", "k")
        data = event_to_dict(event)
        assert data["kind"] == "JobStarted" and data["label"] == "x"
