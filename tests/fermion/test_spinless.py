"""Tests for the spinless t-V model."""

import numpy as np
import pytest

from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import tv_chain, tv_model_from_graph
from repro.paulis import pauli_sum_matrix
from repro.simulator import diagonalize


class TestTvModel:
    def test_one_mode_per_site(self):
        assert tv_chain(4).num_modes == 4

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            tv_chain(1)

    def test_hermitian_after_encoding(self):
        encoded = jordan_wigner(4).encode(tv_chain(4))
        assert encoded.is_hermitian()

    def test_encoding_invariant_spectrum(self):
        hamiltonian = tv_chain(3)
        jw = np.linalg.eigvalsh(pauli_sum_matrix(jordan_wigner(3).encode(hamiltonian)))
        bk = np.linalg.eigvalsh(pauli_sum_matrix(bravyi_kitaev(3).encode(hamiltonian)))
        assert np.allclose(jw, bk, atol=1e-9)

    def test_free_fermions_at_zero_repulsion(self):
        """V = 0: single-particle hopping band, spectrum symmetric on the
        open chain (particle-hole symmetry)."""
        hamiltonian = tv_chain(3, repulsion=0.0, periodic=False)
        spectrum = diagonalize(jordan_wigner(3).encode(hamiltonian))
        energies = np.array(spectrum.energies)
        assert np.allclose(np.sort(energies), np.sort(-energies[::-1]), atol=1e-9)

    def test_repulsion_raises_full_state_energy(self):
        """The all-occupied state's energy is exactly V * #edges."""
        for repulsion in (0.5, 2.0):
            hamiltonian = tv_chain(3, repulsion=repulsion, periodic=True)
            encoded = jordan_wigner(3).encode(hamiltonian)
            matrix = pauli_sum_matrix(encoded)
            full_state = np.zeros(8)
            full_state[7] = 1.0  # |111>
            energy = float(full_state @ matrix.real @ full_state)
            assert energy == pytest.approx(3 * repulsion)

    def test_open_vs_periodic(self):
        periodic = tv_chain(4, periodic=True)
        open_chain = tv_chain(4, periodic=False)
        assert len(periodic.monomials) > len(open_chain.monomials)

    def test_custom_graph(self):
        import networkx as nx

        star = tv_model_from_graph(nx.star_graph(3))
        assert star.num_modes == 4
        assert jordan_wigner(4).encode(star).is_hermitian()
