"""Tests for the Hamiltonian container and the three benchmark families."""

import numpy as np
import pytest

from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import (
    FermionOperator,
    FermionicHamiltonian,
    h2_hamiltonian,
    hubbard_chain,
    hubbard_lattice,
    molecular_hamiltonian,
    random_molecular_hamiltonian,
    syk_hamiltonian,
)
from repro.fermion.molecules import H2_NUCLEAR_REPULSION
from repro.paulis import pauli_sum_matrix
from repro.simulator import diagonalize


class TestContainer:
    def test_from_fermion_operator(self):
        hamiltonian = FermionicHamiltonian.from_fermion_operator(
            "test", FermionOperator.number(1)
        )
        assert hamiltonian.num_modes == 2
        assert hamiltonian.monomials == [(2, 3)]

    def test_mode_range_validated(self):
        with pytest.raises(ValueError):
            FermionicHamiltonian.from_fermion_operator(
                "bad", FermionOperator.number(3), num_modes=2
            )

    def test_positive_modes_required(self):
        from repro.fermion import MajoranaPolynomial

        with pytest.raises(ValueError):
            FermionicHamiltonian.from_majorana("bad", MajoranaPolynomial(), num_modes=0)


class TestH2:
    def test_structure(self):
        h2 = h2_hamiltonian()
        assert h2.num_modes == 4
        assert h2.constant == pytest.approx(H2_NUCLEAR_REPULSION)
        assert h2.fermionic is not None

    def test_fci_ground_energy(self):
        """The known FCI energy of H2/STO-3G at R=0.7414 is ~-1.1373 Ha."""
        h2 = h2_hamiltonian()
        spectrum = diagonalize(jordan_wigner(4).encode(h2))
        assert spectrum.ground_energy == pytest.approx(-1.1373, abs=2e-3)

    def test_energy_encoding_invariant(self):
        h2 = h2_hamiltonian()
        jw = np.linalg.eigvalsh(pauli_sum_matrix(jordan_wigner(4).encode(h2)))
        bk = np.linalg.eigvalsh(pauli_sum_matrix(bravyi_kitaev(4).encode(h2)))
        assert np.allclose(jw, bk, atol=1e-9)

    def test_hermitian(self):
        assert jordan_wigner(4).encode(h2_hamiltonian()).is_hermitian()


class TestHubbard:
    def test_chain_mode_count(self):
        assert hubbard_chain(3).num_modes == 6

    def test_lattice_reduces_to_chain(self):
        lattice = hubbard_lattice(3, 1)
        chain = hubbard_chain(3)
        assert lattice.num_modes == chain.num_modes
        assert sorted(lattice.monomials) == sorted(chain.monomials)

    def test_2x2_has_eight_modes(self):
        assert hubbard_lattice(2, 2).num_modes == 8

    def test_chain_too_short_rejected(self):
        with pytest.raises(ValueError):
            hubbard_chain(1)

    def test_bad_lattice_rejected(self):
        with pytest.raises(ValueError):
            hubbard_lattice(0, 2)

    def test_hermitian_after_encoding(self):
        hamiltonian = hubbard_chain(2, periodic=False)
        assert jordan_wigner(4).encode(hamiltonian).is_hermitian()

    def test_open_vs_periodic_differ(self):
        periodic = hubbard_chain(3, periodic=True)
        open_chain = hubbard_chain(3, periodic=False)
        assert len(periodic.monomials) > len(open_chain.monomials)

    def test_half_filling_particle_hole_symmetric_spectrum(self):
        """At U=0 the single-particle hopping spectrum is symmetric."""
        hamiltonian = hubbard_chain(2, interaction=0.0, periodic=False)
        spectrum = diagonalize(jordan_wigner(4).encode(hamiltonian))
        energies = np.array(spectrum.energies)
        assert np.allclose(np.sort(energies), np.sort(-energies[::-1]), atol=1e-9)


class TestSyk:
    def test_mode_count_and_monomials(self):
        from math import comb

        syk = syk_hamiltonian(3, seed=5)
        assert syk.num_modes == 3
        assert len(syk.monomials) == comb(6, 4)
        assert all(len(monomial) == 4 for monomial in syk.monomials)

    def test_seed_reproducible(self):
        a = syk_hamiltonian(3, seed=1)
        b = syk_hamiltonian(3, seed=1)
        assert {m: c for m, c in a.majorana.items()} == {m: c for m, c in b.majorana.items()}

    def test_different_seeds_differ(self):
        a = syk_hamiltonian(3, seed=1)
        b = syk_hamiltonian(3, seed=2)
        assert {m: c for m, c in a.majorana.items()} != {m: c for m, c in b.majorana.items()}

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            syk_hamiltonian(1)

    def test_encoded_hermitian(self):
        """Majorana quadruples with real couplings encode to hermitian sums."""
        syk = syk_hamiltonian(3)
        assert jordan_wigner(3).encode(syk).is_hermitian()


class TestSyntheticMolecular:
    def test_requires_even_modes(self):
        with pytest.raises(ValueError):
            random_molecular_hamiltonian(5)

    def test_structure_and_hermiticity(self):
        hamiltonian = random_molecular_hamiltonian(4, seed=3)
        assert hamiltonian.num_modes == 4
        encoded = jordan_wigner(4).encode(hamiltonian)
        assert encoded.is_hermitian(tolerance=1e-8)

    def test_spin_symmetric_interactions(self):
        """Both spin sectors receive the same one-body term structure."""
        hamiltonian = random_molecular_hamiltonian(4, seed=3)
        operator = hamiltonian.fermionic
        up = operator.coefficient(((0, True), (0, False)))
        down = operator.coefficient(((1, True), (1, False)))
        assert up == pytest.approx(down)

    def test_molecular_one_body_only(self):
        one_body = np.array([[1.0, 0.2], [0.2, -0.5]])
        hamiltonian = molecular_hamiltonian(one_body, {}, name="toy")
        encoded = jordan_wigner(4).encode(hamiltonian)
        assert encoded.is_hermitian()
        assert hamiltonian.num_modes == 4
