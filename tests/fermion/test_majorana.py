"""Tests for Majorana algebra and the fermion-to-Majorana expansion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings import jordan_wigner
from repro.fermion import (
    FermionOperator,
    MajoranaPolynomial,
    canonicalize_indices,
    fermion_to_majorana,
    hamiltonian_monomials,
)
from repro.paulis import pauli_sum_matrix


class TestCanonicalize:
    def test_sorted_input_unchanged(self):
        assert canonicalize_indices((0, 1, 2)) == ((0, 1, 2), 1)

    def test_single_swap_negates(self):
        assert canonicalize_indices((1, 0)) == ((0, 1), -1)

    def test_square_is_identity(self):
        assert canonicalize_indices((3, 3)) == ((), 1)

    def test_m1_m2_m1_reduces(self):
        # m1 m2 m1 = -m2
        assert canonicalize_indices((1, 2, 1)) == ((2,), -1)

    def test_empty(self):
        assert canonicalize_indices(()) == ((), 1)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 5), max_size=8))
    def test_canonical_form_is_sorted_and_distinct(self, indices):
        monomial, sign = canonicalize_indices(indices)
        assert list(monomial) == sorted(set(monomial))
        assert sign in (-1, 1)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 5), max_size=6), st.lists(st.integers(0, 5), max_size=6))
    def test_concatenation_is_multiplicative(self, left, right):
        # canonicalize(a + b) == canonicalize(canonical(a) + canonical(b)) with signs
        mono_l, sign_l = canonicalize_indices(left)
        mono_r, sign_r = canonicalize_indices(right)
        direct, sign_direct = canonicalize_indices(tuple(left) + tuple(right))
        via, sign_via = canonicalize_indices(mono_l + mono_r)
        assert direct == via
        assert sign_direct == sign_l * sign_r * sign_via


class TestPolynomial:
    def test_add_product_canonicalizes(self):
        polynomial = MajoranaPolynomial()
        polynomial.add_product((1, 0), 1.0)
        assert polynomial.coefficient((0, 1)) == -1.0

    def test_cancellation(self):
        polynomial = MajoranaPolynomial()
        polynomial.add_product((0, 1), 1.0)
        polynomial.add_product((1, 0), 1.0)  # equals -(0,1)
        assert polynomial.is_zero

    def test_multiplication(self):
        a = MajoranaPolynomial({(0,): 1.0})
        b = MajoranaPolynomial({(1,): 1.0})
        product = a * b
        assert product.coefficient((0, 1)) == 1.0

    def test_square_of_majorana_is_one(self):
        a = MajoranaPolynomial({(2,): 1.0})
        assert (a * a).coefficient(()) == 1.0

    def test_scalar_multiplication(self):
        a = MajoranaPolynomial({(0, 1): 2.0}) * 0.5
        assert a.coefficient((0, 1)) == 1.0

    def test_support_monomials_excludes_identity(self):
        polynomial = MajoranaPolynomial({(): 5.0, (0, 1): 1.0})
        assert polynomial.support_monomials() == [(0, 1)]

    def test_max_index(self):
        assert MajoranaPolynomial({(0, 7): 1.0}).max_index == 7
        assert MajoranaPolynomial().max_index == -1


class TestFermionToMajorana:
    def test_annihilation_expansion(self):
        # a_0 = (m_0 + i m_1) / 2
        polynomial = fermion_to_majorana(FermionOperator.annihilation(0))
        assert polynomial.coefficient((0,)) == 0.5
        assert polynomial.coefficient((1,)) == 0.5j

    def test_creation_expansion(self):
        polynomial = fermion_to_majorana(FermionOperator.creation(0))
        assert polynomial.coefficient((0,)) == 0.5
        assert polynomial.coefficient((1,)) == -0.5j

    def test_number_operator_expansion(self):
        # a†_0 a_0 = (1 - i m_0 m_1 ... ) check: (m0 - i m1)(m0 + i m1)/4
        polynomial = fermion_to_majorana(FermionOperator.number(0))
        assert polynomial.coefficient(()) == pytest.approx(0.5)
        assert polynomial.coefficient((0, 1)) == pytest.approx(0.5j)

    def test_matches_jordan_wigner_matrices(self):
        """Full consistency loop: fermion op -> majorana -> JW Pauli -> matrix
        must equal fermion op -> (JW a / a† sums) -> matrix."""
        encoding = jordan_wigner(2)
        operator = (
            FermionOperator.creation(0) * FermionOperator.annihilation(1)
            + FermionOperator.number(1) * 0.5
        )
        via_majorana = encoding.encode(operator)
        direct = (
            encoding.creation(0) * encoding.annihilation(1)
            + encoding.creation(1) * encoding.annihilation(1) * 0.5
        )
        assert np.allclose(pauli_sum_matrix(via_majorana), pauli_sum_matrix(direct))

    def test_hamiltonian_monomials_distinct(self):
        operator = FermionOperator.number(0) + FermionOperator.number(1)
        monomials = hamiltonian_monomials(operator)
        assert sorted(monomials) == [(0, 1), (2, 3)]

    def test_hermitian_hopping_cancels_symmetric_monomials(self):
        """a†_0 a_1 + a†_1 a_0 expands to only the cross terms m_0 m_3 and
        m_1 m_2 — the m_0 m_2 and m_1 m_3 products cancel by anticommutation."""
        hop = FermionOperator.from_monomial(((0, True), (1, False)), 1.0)
        hermitian = hop + hop.hermitian_conjugate()
        monomials = hamiltonian_monomials(hermitian)
        assert sorted(monomials) == [(0, 3), (1, 2)]
