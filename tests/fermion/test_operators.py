"""Tests for second-quantized fermionic operators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fermion import FermionOperator


def _random_operator(draw, max_mode=3, max_factors=4, max_terms=3):
    terms = {}
    for _ in range(draw(st.integers(0, max_terms))):
        length = draw(st.integers(0, max_factors))
        monomial = tuple(
            (draw(st.integers(0, max_mode)), draw(st.booleans())) for _ in range(length)
        )
        terms[monomial] = complex(draw(st.integers(-3, 3)), draw(st.integers(-3, 3)))
    return FermionOperator(terms)


fermion_operators = st.composite(_random_operator)()


class TestConstruction:
    def test_creation_annihilation(self):
        creation = FermionOperator.creation(2)
        assert list(creation.items()) == [(((2, True),), 1.0)]
        annihilation = FermionOperator.annihilation(0)
        assert list(annihilation.items()) == [(((0, False),), 1.0)]

    def test_number_operator(self):
        number = FermionOperator.number(1)
        assert number.coefficient(((1, True), (1, False))) == 1.0

    def test_zero_and_identity(self):
        assert FermionOperator.zero().is_zero
        assert FermionOperator.identity(2.0).coefficient(()) == 2.0

    def test_num_modes(self):
        operator = FermionOperator.creation(4) * FermionOperator.annihilation(1)
        assert operator.num_modes == 5
        assert FermionOperator.zero().num_modes == 0


class TestAlgebra:
    def test_multiplication_concatenates(self):
        product = FermionOperator.creation(0) * FermionOperator.annihilation(1)
        assert product.coefficient(((0, True), (1, False))) == 1.0

    def test_addition_combines(self):
        total = FermionOperator.creation(0) + FermionOperator.creation(0)
        assert total.coefficient(((0, True),)) == 2.0

    def test_scalar_multiplication(self):
        scaled = 2.5 * FermionOperator.creation(1)
        assert scaled.coefficient(((1, True),)) == 2.5

    def test_subtraction_cancels(self):
        assert (FermionOperator.creation(0) - FermionOperator.creation(0)).is_zero

    def test_hermitian_conjugate_reverses_and_flips(self):
        operator = FermionOperator.from_monomial(((0, True), (1, False)), 2j)
        conjugate = operator.hermitian_conjugate()
        assert conjugate.coefficient(((1, True), (0, False))) == -2j

    def test_number_operator_is_hermitian(self):
        assert FermionOperator.number(0).is_hermitian()

    def test_hopping_term_hermitian(self):
        hop = FermionOperator.from_monomial(((0, True), (1, False)), 1.0)
        assert (hop + hop.hermitian_conjugate()).is_hermitian()


class TestNormalOrdering:
    def test_car_same_mode(self):
        # a_0 a†_0 = 1 - a†_0 a_0
        operator = FermionOperator.annihilation(0) * FermionOperator.creation(0)
        ordered = operator.normal_ordered()
        assert ordered.coefficient(()) == 1.0
        assert ordered.coefficient(((0, True), (0, False))) == -1.0

    def test_car_distinct_modes_anticommute(self):
        # a_0 a†_1 = -a†_1 a_0
        operator = FermionOperator.annihilation(0) * FermionOperator.creation(1)
        ordered = operator.normal_ordered()
        assert ordered.coefficient(((1, True), (0, False))) == -1.0
        assert len(ordered) == 1

    def test_nilpotency(self):
        squared = FermionOperator.creation(0) * FermionOperator.creation(0)
        assert squared.normal_ordered().is_zero

    def test_annihilation_ordering_descending(self):
        operator = FermionOperator.annihilation(0) * FermionOperator.annihilation(1)
        ordered = operator.normal_ordered()
        assert ordered.coefficient(((1, False), (0, False))) == -1.0

    def test_already_ordered_fixed_point(self):
        operator = FermionOperator.from_monomial(((1, True), (0, True), (1, False)), 3.0)
        once = operator.normal_ordered()
        twice = once.normal_ordered()
        assert list(sorted(once.items())) == list(sorted(twice.items()))

    @settings(max_examples=60, deadline=None)
    @given(fermion_operators)
    def test_normal_ordering_idempotent(self, operator):
        once = operator.normal_ordered()
        twice = once.normal_ordered()
        keys = set(dict(once.items())) | set(dict(twice.items()))
        for key in keys:
            assert once.coefficient(key) == pytest.approx(twice.coefficient(key))

    @settings(max_examples=40, deadline=None)
    @given(fermion_operators, fermion_operators)
    def test_normal_ordering_respects_addition(self, a, b):
        left = (a + b).normal_ordered()
        right = a.normal_ordered() + b.normal_ordered()
        keys = set(dict(left.items())) | set(dict(right.items()))
        for key in keys:
            assert left.coefficient(key) == pytest.approx(right.coefficient(key))
