"""Tests for regression fits and weight metrics."""

import numpy as np
import pytest

from repro.analysis import (
    LogFit,
    WeightComparison,
    average_weight_per_majorana,
    compare_hamiltonian_weight,
    fit_log2,
    format_percent,
    format_table,
    improvement_percent,
)
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import hubbard_chain


class TestLogFit:
    def test_exact_fit_recovered(self):
        xs = [1, 2, 4, 8, 16]
        ys = [0.5 * np.log2(x) + 1.25 for x in xs]
        fit = fit_log2(xs, ys)
        assert fit.slope == pytest.approx(0.5)
        assert fit.intercept == pytest.approx(1.25)
        assert fit.residual == pytest.approx(0.0, abs=1e-18)

    def test_predict(self):
        fit = LogFit(slope=1.0, intercept=0.0, residual=0.0)
        assert fit.predict(8) == pytest.approx(3.0)

    def test_str_format(self):
        assert "log2(N)" in str(LogFit(0.56, 0.95, 0.0))

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_log2([1], [1.0])

    def test_nonpositive_x_rejected(self):
        with pytest.raises(ValueError):
            fit_log2([0, 1], [1.0, 2.0])


class TestImprovement:
    def test_reduction(self):
        assert improvement_percent(100, 80) == pytest.approx(20.0)

    def test_negative_when_worse(self):
        assert improvement_percent(100, 110) == pytest.approx(-10.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            improvement_percent(0, 1)


class TestWeightHelpers:
    def test_average_weight(self):
        assert average_weight_per_majorana(jordan_wigner(2)) == pytest.approx(1.5)

    def test_comparison_row(self):
        hamiltonian = hubbard_chain(2, periodic=False)
        row = compare_hamiltonian_weight(
            "hubbard", hamiltonian, bravyi_kitaev(4), jordan_wigner(4)
        )
        assert row.baseline_weight == bravyi_kitaev(4).hamiltonian_pauli_weight(hamiltonian)
        assert row.candidate_weight == jordan_wigner(4).hamiltonian_pauli_weight(hamiltonian)
        assert isinstance(row.reduction_percent, float)


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_percent(self):
        assert format_percent(12.345) == "+12.35%"
        assert format_percent(-3.0) == "-3.00%"
