"""Tests for the Figure-4 dependence-probability machinery."""

import pytest

from repro.analysis import (
    column_event_holds,
    estimate_simultaneous_probability,
    sample_optimal_encodings,
)
from repro.core import FermihedralConfig, SolverBudget
from repro.encodings import jordan_wigner
from repro.paulis import PauliString


class TestColumnEvent:
    def test_identity_product_detected(self):
        strings = [PauliString.from_label("XI"), PauliString.from_label("XI")]
        assert column_event_holds(strings, [0, 1], qubit=0)
        assert column_event_holds(strings, [0, 1], qubit=1)

    def test_non_identity_product(self):
        strings = [PauliString.from_label("XI"), PauliString.from_label("YI")]
        # X·Y = iZ at qubit 1: not identity there
        assert not column_event_holds(strings, [0, 1], qubit=1)
        assert column_event_holds(strings, [0, 1], qubit=0)

    def test_singleton_subset(self):
        strings = [PauliString.from_label("XI")]
        assert column_event_holds(strings, [0], qubit=0)
        assert not column_event_holds(strings, [0], qubit=1)


class TestSampling:
    @pytest.fixture(scope="class")
    def encodings(self):
        config = FermihedralConfig(budget=SolverBudget(max_conflicts=100_000))
        return sample_optimal_encodings(2, count=8, config=config)

    def test_samples_are_distinct_and_optimal(self, encodings):
        # With the vacuum constraint, N=2 has exactly 4 optimal encodings:
        # pairs {(IX,IY),(XZ,YZ)} and {(XI,YI),(ZX,ZY)} in either mode order.
        assert len(encodings) == 4
        labels = {tuple(s.label() for s in e.strings) for e in encodings}
        assert len(labels) == 4
        assert all(e.total_majorana_weight == 6 for e in encodings)

    def test_probability_estimate_shape(self, encodings):
        estimate = estimate_simultaneous_probability(
            encodings, num_events=1, trials=800, seed=1
        )
        assert 0.0 <= estimate.probability <= 1.0
        assert estimate.prediction == pytest.approx(0.25)
        assert estimate.trials == 800

    def test_probability_decreases_with_events(self, encodings):
        one = estimate_simultaneous_probability(encodings, 1, trials=1500, seed=2)
        two = estimate_simultaneous_probability(encodings, 2, trials=1500, seed=2)
        assert two.probability <= one.probability

    def test_bad_event_count_rejected(self, encodings):
        with pytest.raises(ValueError):
            estimate_simultaneous_probability(encodings, 0)
        with pytest.raises(ValueError):
            estimate_simultaneous_probability(encodings, 5)

    def test_empty_encodings_rejected(self):
        with pytest.raises(ValueError):
            estimate_simultaneous_probability([], 1)
