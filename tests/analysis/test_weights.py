"""Weight-comparison metrics, including the zero-baseline edge case."""

from repro.analysis.weights import (
    WeightComparison,
    average_weight_per_majorana,
    compare_hamiltonian_weight,
)
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import h2_hamiltonian


def _comparison(baseline_weight: int, candidate_weight: int) -> WeightComparison:
    return WeightComparison(
        case="test",
        num_modes=2,
        baseline_name="jw",
        baseline_weight=baseline_weight,
        candidate_name="fermihedral",
        candidate_weight=candidate_weight,
    )


class TestReductionPercent:
    def test_plain_reduction(self):
        assert _comparison(10, 7).reduction_percent == 30.0

    def test_zero_baseline_does_not_divide(self):
        # An identity-only Hamiltonian has weight 0 under every encoding;
        # this used to raise ZeroDivisionError.
        assert _comparison(0, 0).reduction_percent == 0.0

    def test_negative_reduction(self):
        assert _comparison(10, 12).reduction_percent == -20.0


class TestCompareHamiltonianWeight:
    def test_h2_row(self):
        hamiltonian = h2_hamiltonian()
        row = compare_hamiltonian_weight(
            "H2", hamiltonian, jordan_wigner(4), bravyi_kitaev(4)
        )
        assert row.num_modes == 4
        assert row.baseline_weight > 0
        # Whatever the numbers, the property must be finite and defined.
        assert isinstance(row.reduction_percent, float)


def test_average_weight_per_majorana():
    encoding = jordan_wigner(2)
    assert average_weight_per_majorana(encoding) == (
        encoding.total_majorana_weight / 4
    )
