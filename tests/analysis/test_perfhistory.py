"""Perf-history ledger: direction rules, baselines, regression gating."""

import json

from repro.analysis.perfhistory import (
    compare_runs,
    format_report,
    git_sha,
    metric_direction,
    read_history,
    record_run,
)


def _snapshot(json_dir, name="sat_ladder_rung", **overrides):
    data = {
        "name": name,
        "written_at": 1.0,
        "preprocessed_wall_s": 10.0,
        "raw_wall_s": 20.0,
        "jobs_per_s": 5.0,
        "raw_conflicts": 1000,
        "gate_ok": True,
        "modes": 6,
        "max_conflicts": 20000,
    }
    data.update(overrides)
    json_dir.mkdir(exist_ok=True)
    (json_dir / f"BENCH_{name}.json").write_text(json.dumps(data))
    return data


class TestDirectionRules:
    def test_rates_are_higher_better(self):
        assert metric_direction("jobs_per_s") == "higher"
        assert metric_direction("submit_throughput") == "higher"

    def test_costs_are_lower_better(self):
        assert metric_direction("preprocessed_wall_s") == "lower"
        assert metric_direction("raw_conflicts") == "lower"
        assert metric_direction("peak_bytes") == "lower"

    def test_rate_wins_over_seconds_suffix(self):
        # "jobs_per_s" ends in "_s" too; the rate pattern must win.
        assert metric_direction("compiles_per_s") == "higher"

    def test_parameters_are_untracked(self):
        assert metric_direction("gate_ok") is None
        assert metric_direction("modes") is None
        assert metric_direction("bound") is None


class TestRecord:
    def test_record_appends_one_entry_per_bench(self, tmp_path):
        _snapshot(tmp_path / "run")
        _snapshot(tmp_path / "run", name="service_throughput",
                  jobs_per_s=12.0)
        ledger = tmp_path / "history.jsonl"
        entries = record_run(tmp_path / "run", ledger, sha="aaa111",
                             note="seed")
        assert [e["name"] for e in entries] == [
            "sat_ladder_rung", "service_throughput"]
        assert all(e["sha"] == "aaa111" and e["note"] == "seed"
                   for e in entries)
        assert read_history(ledger) == entries

    def test_empty_snapshot_dir_records_nothing(self, tmp_path):
        (tmp_path / "empty").mkdir()
        assert record_run(tmp_path / "empty", tmp_path / "h.jsonl") == []
        assert not (tmp_path / "h.jsonl").exists()

    def test_corrupt_ledger_lines_are_skipped(self, tmp_path):
        _snapshot(tmp_path / "run")
        ledger = tmp_path / "history.jsonl"
        record_run(tmp_path / "run", ledger, sha="aaa111")
        with open(ledger, "a") as handle:
            handle.write('{"half written\n')
        assert len(read_history(ledger)) == 1


class TestCompare:
    def test_identical_run_is_clean(self, tmp_path):
        _snapshot(tmp_path / "run")
        ledger = tmp_path / "history.jsonl"
        record_run(tmp_path / "run", ledger, sha="aaa111")
        report = compare_runs(tmp_path / "run", ledger, sha="bbb222")
        assert report.ok and report.baseline_sha == "aaa111"
        assert all(not d.regressed for d in report.deltas)

    def test_regressions_flagged_both_directions(self, tmp_path):
        _snapshot(tmp_path / "base")
        ledger = tmp_path / "history.jsonl"
        record_run(tmp_path / "base", ledger, sha="aaa111")
        # Wall time up 50%, throughput down 50%: both must trip.
        _snapshot(tmp_path / "now", preprocessed_wall_s=15.0, jobs_per_s=2.5)
        report = compare_runs(tmp_path / "now", ledger, sha="bbb222")
        assert not report.ok
        assert sorted(d.metric for d in report.regressions) == [
            "jobs_per_s", "preprocessed_wall_s"]
        text = format_report(report)
        assert "REGRESSION" in text and "2 regression(s)" in text

    def test_improvement_is_never_a_regression(self, tmp_path):
        _snapshot(tmp_path / "base")
        ledger = tmp_path / "history.jsonl"
        record_run(tmp_path / "base", ledger, sha="aaa111")
        _snapshot(tmp_path / "now", preprocessed_wall_s=1.0, jobs_per_s=50.0)
        assert compare_runs(tmp_path / "now", ledger, sha="bbb222").ok

    def test_within_threshold_noise_passes(self, tmp_path):
        _snapshot(tmp_path / "base")
        ledger = tmp_path / "history.jsonl"
        record_run(tmp_path / "base", ledger, sha="aaa111")
        _snapshot(tmp_path / "now", preprocessed_wall_s=10.9)  # +9%
        assert compare_runs(tmp_path / "now", ledger, sha="bbb222").ok

    def test_threshold_is_configurable(self, tmp_path):
        _snapshot(tmp_path / "base")
        ledger = tmp_path / "history.jsonl"
        record_run(tmp_path / "base", ledger, sha="aaa111")
        _snapshot(tmp_path / "now", preprocessed_wall_s=10.9)
        report = compare_runs(tmp_path / "now", ledger,
                              threshold=0.05, sha="bbb222")
        assert not report.ok

    def test_same_sha_entries_are_skipped_as_baseline(self, tmp_path):
        # Re-recording on the commit under test must not let it become
        # its own baseline.
        _snapshot(tmp_path / "base")
        ledger = tmp_path / "history.jsonl"
        record_run(tmp_path / "base", ledger, sha="aaa111")
        _snapshot(tmp_path / "now", preprocessed_wall_s=15.0)
        record_run(tmp_path / "now", ledger, sha="bbb222")
        report = compare_runs(tmp_path / "now", ledger, sha="bbb222")
        assert report.baseline_sha == "aaa111"
        assert [d.metric for d in report.regressions] == [
            "preprocessed_wall_s"]

    def test_parameters_never_trip_the_gate(self, tmp_path):
        _snapshot(tmp_path / "base")
        ledger = tmp_path / "history.jsonl"
        record_run(tmp_path / "base", ledger, sha="aaa111")
        # Doubling the budget knob is a choice, not a regression.
        _snapshot(tmp_path / "now", max_conflicts=40000)
        report = compare_runs(tmp_path / "now", ledger, sha="bbb222")
        assert report.ok
        assert "max_conflicts" not in {d.metric for d in report.deltas}

    def test_new_bench_is_missing_baseline_not_failure(self, tmp_path):
        _snapshot(tmp_path / "base")
        ledger = tmp_path / "history.jsonl"
        record_run(tmp_path / "base", ledger, sha="aaa111")
        _snapshot(tmp_path / "now")
        _snapshot(tmp_path / "now", name="brand_new", fresh_wall_s=1.0)
        report = compare_runs(tmp_path / "now", ledger, sha="bbb222")
        assert report.ok
        assert report.missing_baseline == ["brand_new"]

    def test_empty_ledger_compares_clean(self, tmp_path):
        _snapshot(tmp_path / "now")
        report = compare_runs(tmp_path / "now", tmp_path / "none.jsonl",
                              sha="bbb222")
        assert report.ok and report.baseline_sha is None
        assert "(none recorded)" in format_report(report)


class TestGitSha:
    def test_repo_checkout_resolves_a_real_sha(self):
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40

    def test_non_repo_directory_is_unknown(self, tmp_path):
        assert git_sha(tmp_path) == "unknown"
