"""The structured chaos engine: grammar, triggers, typing, and the shim."""

from __future__ import annotations

import pytest

from repro import chaos
from repro.chaos import (
    CHAOS_ENV,
    CHAOS_SEED_ENV,
    FAULT_POINTS,
    LEGACY_CHAOS_ENV,
    ChaosEngine,
    ChaosFault,
    ChaosIOFault,
    FaultRule,
    parse_rules,
)
from repro.telemetry import Telemetry


@pytest.fixture(autouse=True)
def _isolated_engine():
    """Each test gets a fresh module-level engine and leaves none behind."""
    chaos.reset()
    yield
    chaos.reset()


# -- grammar ------------------------------------------------------------------


def test_parse_simple_rules():
    rules = parse_rules("cache.write=once,solver.slice=always")
    assert rules["cache.write"] == FaultRule("cache.write", "once")
    assert rules["solver.slice"] == FaultRule("solver.slice", "always")


def test_parse_after_prob_and_kill():
    rules = parse_rules("solver.slice=after:3:kill, cache.read=prob:0.25")
    assert rules["solver.slice"].trigger == "after"
    assert rules["solver.slice"].after == 3
    assert rules["solver.slice"].kill is True
    assert rules["cache.read"].probability == 0.25
    assert rules["cache.read"].kill is False


def test_bare_point_defaults_to_once():
    assert parse_rules("http.handler")["http.handler"].trigger == "once"


def test_parse_rejects_unknown_point():
    with pytest.raises(ValueError, match="unknown chaos point"):
        parse_rules("cache.explode=once")


def test_parse_rejects_unknown_trigger():
    with pytest.raises(ValueError, match="unknown chaos trigger"):
        parse_rules("cache.read=sometimes")


def test_parse_rejects_malformed_args():
    with pytest.raises(ValueError, match="needs a count"):
        parse_rules("solver.slice=after")
    with pytest.raises(ValueError, match="needs a probability"):
        parse_rules("cache.read=prob")
    with pytest.raises(ValueError, match="out of"):
        parse_rules("cache.read=prob:1.5")
    with pytest.raises(ValueError, match="takes no argument"):
        parse_rules("cache.read=once:3")


# -- trigger semantics --------------------------------------------------------


def hits_that_fault(engine: ChaosEngine, point: str, n: int) -> list[int]:
    fired = []
    for hit in range(1, n + 1):
        try:
            engine.inject(point)
        except ChaosFault:
            fired.append(hit)
    return fired


def test_once_faults_only_first_hit():
    engine = ChaosEngine(parse_rules("job.run=once"))
    assert hits_that_fault(engine, "job.run", 5) == [1]


def test_always_faults_every_hit():
    engine = ChaosEngine(parse_rules("job.run=always"))
    assert hits_that_fault(engine, "job.run", 4) == [1, 2, 3, 4]


def test_after_passes_n_then_faults():
    engine = ChaosEngine(parse_rules("solver.slice=after:2"))
    assert hits_that_fault(engine, "solver.slice", 5) == [3, 4, 5]


def test_prob_is_deterministic_per_seed():
    first = hits_that_fault(
        ChaosEngine(parse_rules("cache.read=prob:0.5"), seed=7),
        "cache.read", 64,
    )
    replay = hits_that_fault(
        ChaosEngine(parse_rules("cache.read=prob:0.5"), seed=7),
        "cache.read", 64,
    )
    other_seed = hits_that_fault(
        ChaosEngine(parse_rules("cache.read=prob:0.5"), seed=8),
        "cache.read", 64,
    )
    assert first == replay
    assert first != other_seed
    assert 0 < len(first) < 64  # actually probabilistic, not constant


def test_prob_extremes():
    never = ChaosEngine(parse_rules("cache.read=prob:0.0"))
    assert hits_that_fault(never, "cache.read", 16) == []
    always = ChaosEngine(parse_rules("cache.read=prob:1.0"))
    assert hits_that_fault(always, "cache.read", 4) == [1, 2, 3, 4]


def test_unarmed_point_never_faults():
    engine = ChaosEngine(parse_rules("cache.read=always"))
    engine.inject("cache.write")  # different point: no-op
    assert engine.hits.get("cache.write") is None


def test_inert_engine_is_inactive():
    assert not ChaosEngine().active
    assert ChaosEngine(parse_rules("job.run=once")).active


# -- fault typing -------------------------------------------------------------


def test_io_points_raise_oserror_subclass():
    for point in ("cache.read", "cache.write", "checkpoint.write"):
        engine = ChaosEngine(parse_rules(f"{point}=once"))
        with pytest.raises(OSError) as excinfo:
            engine.inject(point)
        assert isinstance(excinfo.value, ChaosIOFault)
        assert excinfo.value.point == point


def test_non_io_points_raise_plain_chaosfault():
    engine = ChaosEngine(parse_rules("worker.spawn=once"))
    with pytest.raises(ChaosFault) as excinfo:
        engine.inject("worker.spawn")
    assert not isinstance(excinfo.value, OSError)
    assert isinstance(excinfo.value, RuntimeError)


def test_fault_message_carries_the_grep_marker():
    engine = ChaosEngine(parse_rules("job.run=once"))
    with pytest.raises(ChaosFault, match="chaos fault injected"):
        engine.inject("job.run", detail="(drill)")


def test_every_fault_point_parses():
    spec = ",".join(f"{point}=once" for point in FAULT_POINTS)
    assert set(parse_rules(spec)) == set(FAULT_POINTS)


# -- counters and telemetry ---------------------------------------------------


def test_hit_and_fault_counters():
    engine = ChaosEngine(parse_rules("solver.slice=after:1"))
    hits_that_fault(engine, "solver.slice", 3)
    assert engine.hits["solver.slice"] == 3
    assert engine.faults["solver.slice"] == 2


def test_injected_faults_bump_telemetry_counter():
    telemetry = Telemetry()
    engine = ChaosEngine(parse_rules("worker.spawn=always"))
    for _ in range(3):
        with pytest.raises(ChaosFault):
            engine.inject("worker.spawn", telemetry=telemetry)
    rendered = telemetry.render_metrics()
    assert "repro_chaos_faults_total" in rendered
    assert 'point="worker.spawn"' in rendered


# -- module-level engine / env arming -----------------------------------------


def test_engine_arms_from_environment(monkeypatch):
    monkeypatch.setenv(CHAOS_ENV, "job.run=once")
    monkeypatch.setenv(CHAOS_SEED_ENV, "3")
    chaos.reset()
    with pytest.raises(ChaosFault):
        chaos.inject("job.run")
    chaos.inject("job.run")  # once: second hit passes
    assert chaos.engine().seed == 3


def test_configure_accepts_spec_string_and_none():
    chaos.configure("cache.write=always")
    with pytest.raises(ChaosIOFault):
        chaos.inject("cache.write")
    chaos.configure(None)
    chaos.inject("cache.write")  # inert again


def test_unset_environment_means_inert(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    chaos.reset()
    for point in FAULT_POINTS:
        chaos.inject(point)  # all no-ops


# -- legacy REPRO_CHAOS_FAIL shim ---------------------------------------------


def test_legacy_fault_matches_substring(monkeypatch):
    monkeypatch.setenv(LEGACY_CHAOS_ENV, "chaos")
    with pytest.raises(ChaosFault) as excinfo:
        chaos.legacy_job_fault("chaos-drill")
    # Exact legacy message shape: the CI forensics drill greps for it.
    assert "chaos fault injected" in str(excinfo.value)
    assert "REPRO_CHAOS_FAIL" in str(excinfo.value)
    assert excinfo.value.point == "job.run"


def test_legacy_fault_ignores_other_labels(monkeypatch):
    monkeypatch.setenv(LEGACY_CHAOS_ENV, "chaos")
    chaos.legacy_job_fault("healthy-job")
    chaos.legacy_job_fault(None)


def test_legacy_fault_inert_when_unset(monkeypatch):
    monkeypatch.delenv(LEGACY_CHAOS_ENV, raising=False)
    chaos.legacy_job_fault("chaos-drill")
