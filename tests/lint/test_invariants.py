"""Per-rule fixtures for the invariant family (L001–L005), clean and
violating variants."""

from __future__ import annotations


def _rules(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


class TestL001ConfigClassification:
    CLEAN = {
        "config.py": """
            import dataclasses

            EXECUTION_ONLY_FIELDS = ("jobs",)

            @dataclasses.dataclass(frozen=True)
            class FermihedralConfig:
                budget: int = 0
                jobs: int = 1
        """,
        "fingerprint.py": """
            import dataclasses
            from config import EXECUTION_ONLY_FIELDS

            def canonical_config(config):
                data = dataclasses.asdict(config)
                for name in EXECUTION_ONLY_FIELDS:
                    data.pop(name, None)
                return data
        """,
    }

    def test_asdict_minus_pop_loop_is_clean(self, lint_tree):
        assert _rules(lint_tree(dict(self.CLEAN)), "L001") == []

    def test_unclassified_field_flagged(self, lint_tree):
        files = dict(self.CLEAN)
        files["config.py"] = files["config.py"].replace(
            "budget: int = 0",
            "budget: int = 0\n                shiny: bool = False",
        )
        # asdict() fingerprints 'shiny' automatically, so the asdict shape
        # stays clean; an explicit dict build misses the new field.
        files["fingerprint.py"] = """
            def canonical_config(config):
                return {"budget": config.budget}
        """
        (finding,) = _rules(lint_tree(files), "L001")
        assert "shiny" in finding.message
        assert "unclassified" in finding.message

    def test_execution_only_field_leaking_into_fingerprint(self, lint_tree):
        files = dict(self.CLEAN)
        files["fingerprint.py"] = """
            def canonical_config(config):
                return {"budget": config.budget, "jobs": config.jobs}
        """
        (finding,) = _rules(lint_tree(files), "L001")
        assert "jobs" in finding.message and "still reaches" in finding.message

    def test_stale_execution_only_entry(self, lint_tree):
        files = dict(self.CLEAN)
        files["config.py"] = files["config.py"].replace(
            '("jobs",)', '("jobs", "gone")'
        )
        (finding,) = _rules(lint_tree(files), "L001")
        assert "gone" in finding.message and "stale" in finding.message

    def test_rule_silent_without_fingerprint_module(self, lint_tree):
        files = {"config.py": self.CLEAN["config.py"]}
        assert _rules(lint_tree(files), "L001") == []


class TestL002HotPathTelemetry:
    def test_unguarded_call_flagged(self, lint_tree):
        report = lint_tree({"mod.py": """
            # repro-lint: hot-path
            def solve(telemetry):
                telemetry.counter("x").inc()
        """})
        (finding,) = _rules(report, "L002")
        assert "unguarded telemetry call" in finding.message

    def test_is_not_none_gate_accepted(self, lint_tree):
        report = lint_tree({"mod.py": """
            # repro-lint: hot-path
            def solve(telemetry):
                if telemetry is not None:
                    telemetry.counter("x").inc()
        """})
        assert _rules(report, "L002") == []

    def test_early_return_gate_dominates_the_rest(self, lint_tree):
        report = lint_tree({"mod.py": """
            # repro-lint: hot-path
            def solve(telemetry):
                if telemetry is None:
                    return None
                telemetry.counter("x").inc()
                return True
        """})
        assert _rules(report, "L002") == []

    def test_passing_telemetry_as_argument_is_fine(self, lint_tree):
        report = lint_tree({"mod.py": """
            def _span(telemetry, name):
                return None

            # repro-lint: hot-path
            def solve(telemetry):
                with _span(telemetry, "rung"):
                    return 1
        """})
        assert _rules(report, "L002") == []

    def test_gate_does_not_leak_into_a_closure(self, lint_tree):
        report = lint_tree({"mod.py": """
            # repro-lint: hot-path
            def solve(telemetry):
                if telemetry is not None:
                    def finish():
                        telemetry.counter("x").inc()
                    return finish
        """})
        (finding,) = _rules(report, "L002")
        assert "finish" in finding.message

    def test_unmarked_function_is_out_of_scope(self, lint_tree):
        report = lint_tree({"mod.py": """
            def cold(telemetry):
                telemetry.counter("x").inc()
        """})
        assert _rules(report, "L002") == []

    def test_else_branch_of_none_check_is_guarded(self, lint_tree):
        report = lint_tree({"mod.py": """
            # repro-lint: hot-path
            def solve(telemetry):
                if telemetry is None:
                    pass
                else:
                    telemetry.counter("x").inc()
        """})
        assert _rules(report, "L002") == []


class TestL003StdlibBoundary:
    def test_third_party_import_in_layer_flagged(self, lint_tree):
        report = lint_tree({"sat/solver.py": "import numpy\n"})
        (finding,) = _rules(report, "L003")
        assert "numpy" in finding.message and "'sat'" in finding.message

    def test_stdlib_and_intra_project_imports_pass(self, lint_tree):
        report = lint_tree({
            "pkg/sat/a.py": "import threading\nfrom pkg.sat.b import X\n",
            "pkg/sat/b.py": "X = 1\n",
        })
        assert _rules(report, "L003") == []

    def test_single_module_layer_form(self, lint_tree):
        report = lint_tree({"chaos.py": "import requests\n"})
        (finding,) = _rules(report, "L003")
        assert "requests" in finding.message

    def test_file_outside_the_layers_is_unconstrained(self, lint_tree):
        report = lint_tree({"analysis/plots.py": "import numpy\n"})
        assert _rules(report, "L003") == []

    def test_relative_imports_pass(self, lint_tree):
        report = lint_tree({
            "sat/__init__.py": "",
            "sat/a.py": "from . import b\n",
            "sat/b.py": "",
        })
        assert _rules(report, "L003") == []


class TestL004SerializationBackCompat:
    DATACLASS = """
        from dataclasses import dataclass

        @dataclass
        class Record:
            weight: int
            degraded: bool = False
    """

    def test_bare_subscript_on_defaulted_field_flagged(self, lint_tree):
        report = lint_tree({
            "model.py": self.DATACLASS,
            "serial.py": """
                from model import Record

                def record_from_dict(data):
                    return Record(
                        weight=data["weight"],
                        degraded=data["degraded"],
                    )
            """,
        })
        (finding,) = _rules(report, "L004")
        assert "degraded" in finding.message and ".get" in finding.message

    def test_get_read_is_clean(self, lint_tree):
        report = lint_tree({
            "model.py": self.DATACLASS,
            "serial.py": """
                from model import Record

                def record_from_dict(data):
                    return Record(
                        weight=data["weight"],
                        degraded=data.get("degraded", False),
                    )
            """,
        })
        assert _rules(report, "L004") == []

    def test_required_field_may_subscript(self, lint_tree):
        report = lint_tree({
            "model.py": self.DATACLASS,
            "serial.py": """
                from model import Record

                def record_from_dict(data):
                    return Record(weight=data["weight"])
            """,
        })
        assert _rules(report, "L004") == []

    def test_classmethod_cls_pattern(self, lint_tree):
        report = lint_tree({"model.py": """
            from dataclasses import dataclass

            @dataclass
            class Record:
                weight: int
                degraded: bool = False

                @classmethod
                def from_dict(cls, data):
                    return cls(
                        weight=data["weight"],
                        degraded=data["degraded"],
                    )
        """})
        (finding,) = _rules(report, "L004")
        assert "degraded" in finding.message

    def test_positional_arguments_are_mapped_to_fields(self, lint_tree):
        report = lint_tree({"model.py": """
            from dataclasses import dataclass

            @dataclass
            class Record:
                weight: int
                degraded: bool = False

                @classmethod
                def from_dict(cls, data):
                    return cls(data["weight"], data["degraded"])
        """})
        (finding,) = _rules(report, "L004")
        assert "degraded" in finding.message

    def test_non_from_dict_functions_are_out_of_scope(self, lint_tree):
        report = lint_tree({
            "model.py": self.DATACLASS,
            "other.py": """
                from model import Record

                def build(data):
                    return Record(weight=1, degraded=data["degraded"])
            """,
        })
        assert _rules(report, "L004") == []


class TestL005WorkerPicklability:
    def test_lock_without_getstate_flagged(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            # repro-lint: worker-shipped
            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
        """})
        (finding,) = _rules(report, "L005")
        assert "Cache" in finding.message and "_lock" in finding.message

    def test_getstate_makes_it_clean(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            # repro-lint: worker-shipped
            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                def __getstate__(self):
                    return {}
        """})
        assert _rules(report, "L005") == []

    def test_reduce_also_counts(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            # repro-lint: worker-shipped
            class Cache:
                def __init__(self):
                    self._handle = open("/dev/null")

                def __reduce__(self):
                    return (Cache, ())
        """})
        assert _rules(report, "L005") == []

    def test_open_file_handle_flagged(self, lint_tree):
        report = lint_tree({"mod.py": """
            # repro-lint: worker-shipped
            class Sink:
                def __init__(self, path):
                    self._handle = open(path)
        """})
        (finding,) = _rules(report, "L005")
        assert "_handle" in finding.message

    def test_unmarked_class_is_out_of_scope(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            class Internal:
                def __init__(self):
                    self._lock = threading.Lock()
        """})
        assert _rules(report, "L005") == []

    def test_marker_above_decorator(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading
            from dataclasses import dataclass

            def decorate(cls):
                return cls

            # repro-lint: worker-shipped
            @decorate
            class Job:
                def __init__(self):
                    self._lock = threading.Lock()
        """})
        (finding,) = _rules(report, "L005")
        assert "Job" in finding.message
