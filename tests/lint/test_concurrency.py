"""Lock-graph analyzer fixtures: seeded inversions must be flagged,
the codebase's known-safe idioms must come back clean."""

from __future__ import annotations


def _rules(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


INVERSION = {
    "inv.py": """
        import threading

        class A:
            def __init__(self, b: "B"):
                self._la = threading.Lock()
                self.b = b

            def forward(self):
                with self._la:
                    self.b.inner()

            def tail(self):
                with self._la:
                    pass

        class B:
            def __init__(self, a: A):
                self._lb = threading.Lock()
                self.a = a

            def inner(self):
                with self._lb:
                    pass

            def backward(self):
                with self._lb:
                    self.a.tail()
    """,
}


class TestC001Inversions:
    def test_seeded_inversion_flagged(self, lint_tree):
        (finding,) = _rules(lint_tree(dict(INVERSION)), "C001")
        assert "lock-order inversion" in finding.message
        assert "A._la" in finding.message and "B._lb" in finding.message

    def test_fixed_ordering_is_clean(self, lint_tree):
        files = dict(INVERSION)
        # the canonical fix: snapshot under the lock, call outside it
        files["inv.py"] = files["inv.py"].replace(
            "def backward(self):\n"
            "                with self._lb:\n"
            "                    self.a.tail()",
            "def backward(self):\n"
            "                with self._lb:\n"
            "                    pass\n"
            "                self.a.tail()",
        )
        assert _rules(lint_tree(files), "C001") == []

    def test_call_after_with_block_is_outside_the_region(self, lint_tree):
        # the metrics render() idiom: copy hooks under the lock, call
        # them after releasing it — must NOT create an edge
        report = lint_tree({"render.py": """
            import threading

            class Registry:
                def __init__(self, bus: "Bus"):
                    self._lock = threading.Lock()
                    self.bus = bus

                def render(self):
                    with self._lock:
                        hooks = [1]
                    self.bus.emit()

            class Bus:
                def __init__(self, registry: Registry):
                    self._cond = threading.Condition()
                    self.registry = registry

                def emit(self):
                    with self._cond:
                        pass

                def snapshot(self):
                    with self._cond:
                        self.registry.render()
        """})
        # bus->registry edge exists (snapshot), registry->bus does NOT
        # (render calls emit outside its region): no cycle
        assert _rules(report, "C001") == []

    def test_nested_with_in_opposite_orders(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            LOCK_A = threading.Lock()
            LOCK_B = threading.Lock()

            def one():
                with LOCK_A:
                    with LOCK_B:
                        pass

            def two():
                with LOCK_B:
                    with LOCK_A:
                        pass
        """})
        (finding,) = _rules(report, "C001")
        assert "LOCK_A" in finding.message and "LOCK_B" in finding.message

    def test_self_deadlock_through_helper(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
        """})
        (finding,) = _rules(report, "C001")
        assert "self-deadlock" in finding.message

    def test_rlock_reentry_is_fine(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
        """})
        assert _rules(report, "C001") == []

    def test_shared_lock_alias_is_one_node(self, lint_tree):
        # a family hands its RLock to children (the MetricsRegistry
        # pattern); child and parent acquisitions must unify instead of
        # reading as two lockable resources
        report = lint_tree({"metrics.py": """
            import threading

            class Child:
                def __init__(self, lock: threading.RLock):
                    self._lock = lock

                def set(self, value):
                    with self._lock:
                        pass

            class Family:
                def __init__(self):
                    self._lock = threading.RLock()

                def child(self):
                    with self._lock:
                        return Child(self._lock)

                def update(self):
                    with self._lock:
                        self.child().set(1)
        """})
        assert _rules(report, "C001") == []


class TestC002GuardedWrites:
    def test_unguarded_write_flagged(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            class Pool:
                def __init__(self):
                    self._guard = threading.Lock()
                    self._broken = False

                def run(self):
                    with self._guard:
                        self._broken = False

                def dispatch(self):
                    self._broken = True
        """})
        (finding,) = _rules(report, "C002")
        assert "dispatch" in finding.message and "_broken" in finding.message

    def test_all_writes_guarded_is_clean(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            class Pool:
                def __init__(self):
                    self._guard = threading.Lock()
                    self._broken = False

                def run(self):
                    with self._guard:
                        self._broken = False

                def dispatch(self):
                    with self._guard:
                        self._broken = True
        """})
        assert _rules(report, "C002") == []

    def test_init_writes_are_exempt(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            class Pool:
                def __init__(self):
                    self._guard = threading.Lock()
                    self._broken = False
                    self._broken = True

                def run(self):
                    with self._guard:
                        self._broken = False
        """})
        assert _rules(report, "C002") == []

    def test_lock_held_by_caller_helper_is_exempt(self, lint_tree):
        # the service daemon's "(lock held)" pattern: an underscore
        # helper writes guarded state, every call site holds the lock
        report = lint_tree({"mod.py": """
            import threading

            class Service:
                def __init__(self):
                    self._wake = threading.Condition()
                    self._state = "idle"

                def submit(self):
                    with self._wake:
                        self._install()

                def cancel(self):
                    with self._wake:
                        self._state = "cancelled"

                def _install(self):
                    self._state = "queued"
        """})
        assert _rules(report, "C002") == []

    def test_helper_with_an_unlocked_call_site_is_flagged(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            class Service:
                def __init__(self):
                    self._wake = threading.Condition()
                    self._state = "idle"

                def submit(self):
                    with self._wake:
                        self._install()

                def sneaky(self):
                    self._install()

                def cancel(self):
                    with self._wake:
                        self._state = "cancelled"

                def _install(self):
                    self._state = "queued"
        """})
        (finding,) = _rules(report, "C002")
        assert "_install" in finding.message

    def test_dict_item_writes_count(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = {}

                def bump(self, name):
                    with self._lock:
                        self.hits[name] = self.hits.get(name, 0) + 1

                def reset(self, name):
                    self.hits[name] = 0
        """})
        (finding,) = _rules(report, "C002")
        assert "reset" in finding.message and "hits" in finding.message
