"""Engine-level behavior: suppression, baselines, output schemas."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    JSON_SCHEMA_VERSION,
    all_rules,
    baseline_dict,
    explain_rule,
    load_baseline,
    rules_by_id,
    run_lint,
)

_VIOLATING_L005 = """
    import threading

    # repro-lint: worker-shipped
    class Bad:
        def __init__(self):
            self._lock = threading.Lock()
"""


class TestSuppression:
    def test_inline_suppression_on_the_class_line(self, lint_tree):
        report = lint_tree({"mod.py": """
            import threading

            # repro-lint: worker-shipped
            class Bad:  # repro-lint: disable=L005
                def __init__(self):
                    self._lock = threading.Lock()
        """})
        assert report.findings == []
        assert report.suppressed == 1

    def test_suppression_comment_on_the_line_above(self, lint_tree):
        report = lint_tree({"sat/mod.py": """
            # repro-lint: disable=L003
            import numpy
        """})
        assert report.findings == []
        assert report.suppressed == 1

    def test_disable_all(self, lint_tree):
        report = lint_tree({"sat/mod.py": """
            import numpy  # repro-lint: disable=all
        """})
        assert report.findings == []

    def test_unrelated_rule_id_does_not_suppress(self, lint_tree):
        report = lint_tree({"sat/mod.py": """
            import numpy  # repro-lint: disable=L004
        """})
        assert [finding.rule for finding in report.findings] == ["L003"]


class TestBaseline:
    def test_baseline_filters_matching_findings(self, lint_tree):
        first = lint_tree({"mod.py": _VIOLATING_L005})
        assert len(first.findings) == 1
        entries = baseline_dict(first)["entries"]
        second = lint_tree({"mod.py": _VIOLATING_L005}, baseline=entries)
        assert second.findings == []
        assert second.baselined == 1
        assert second.stale_baseline == []

    def test_stale_entries_reported(self, lint_tree):
        stale = [{"rule": "L005", "path": "gone.py", "message": "nope"}]
        report = lint_tree({"mod.py": "x = 1\n"}, baseline=stale)
        assert report.stale_baseline == stale

    def test_baseline_round_trips_through_json(self, tmp_path, lint_tree):
        report = lint_tree({"mod.py": _VIOLATING_L005})
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline_dict(report)))
        entries = load_baseline(str(path))
        assert entries and entries[0]["rule"] == "L005"


class TestOutputs:
    def test_json_schema_is_stable(self, lint_tree):
        report = lint_tree({"mod.py": _VIOLATING_L005})
        payload = report.to_json()
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert set(payload) == {"version", "files", "rules", "findings",
                                "summary"}
        assert set(payload["findings"][0]) == {"rule", "severity", "path",
                                               "line", "message"}
        assert set(payload["summary"]) == {"errors", "warnings", "suppressed",
                                           "baselined", "stale_baseline"}
        json.dumps(payload)  # must be serializable as-is

    def test_sarif_document_shape(self, lint_tree):
        report = lint_tree({"mod.py": _VIOLATING_L005})
        sarif = report.to_sarif()
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        (result,) = run["results"]
        assert result["ruleId"] == "L005"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "mod.py"

    def test_text_output_names_rule_and_location(self, lint_tree):
        report = lint_tree({"mod.py": _VIOLATING_L005})
        text = report.to_text()
        assert "mod.py:" in text and "L005" in text and "error" in text

    def test_parse_failure_is_a_finding(self, lint_tree):
        report = lint_tree({"broken.py": "def oops(:\n"})
        assert [finding.rule for finding in report.findings] == ["E001"]
        assert report.exit_code == 1


class TestRuleSelection:
    def test_rules_allowlist(self, lint_tree):
        report = lint_tree(
            {"sat/mod.py": "import numpy\n", "mod.py": _VIOLATING_L005},
            rules=["L003"],
        )
        assert {finding.rule for finding in report.findings} == {"L003"}

    def test_unknown_rule_id_rejected(self, lint_tree):
        with pytest.raises(ValueError, match="unknown rule ids"):
            lint_tree({"mod.py": "x = 1\n"}, rules=["L999"])

    def test_registry_has_both_families(self):
        ids = {rule.id for rule in all_rules()}
        assert {"L001", "L002", "L003", "L004", "L005",
                "C001", "C002"} <= ids


class TestExplain:
    def test_every_rule_explains_itself(self):
        for rule_id, rule in rules_by_id().items():
            text = explain_rule(rule_id)
            assert rule_id in text
            assert "Violating:" in text and "Fixed:" in text
            assert rule.summary in text

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            explain_rule("Z999")


def test_exit_code_zero_on_clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text("VALUE = 1\n")
    report = run_lint([str(tmp_path)], root=str(tmp_path))
    assert report.findings == []
    assert report.exit_code == 0
