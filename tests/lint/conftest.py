"""Helpers for the linter tests: write a fixture mini-package and lint it."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import LintReport, run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """``lint_tree({"pkg/mod.py": source, ...})`` → :class:`LintReport`.

    Sources are dedented; paths in findings are relative to the tree
    root, so assertions can match on the literal keys passed in.
    """

    def _lint(files: dict[str, str], rules: list[str] | None = None,
              baseline: list[dict] | None = None) -> LintReport:
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return run_lint(
            [str(tmp_path)], root=str(tmp_path), rules=rules,
            baseline=baseline,
        )

    return _lint
