"""Self-check: the linter must pass on the repository's own sources,
non-vacuously, and fail on the committed injected-violation fixture."""

from __future__ import annotations

import io
import json
import pathlib

from contextlib import redirect_stdout

from repro.cli import main
from repro.lint import run_lint
from repro.lint.concurrency import lock_graph
from repro.lint.project import (
    MARKER_HOT_PATH,
    MARKER_WORKER_SHIPPED,
    load_project,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
INJECTED = pathlib.Path(__file__).parent / "fixtures" / "injected_violation"


def test_repo_sources_lint_clean():
    report = run_lint([str(SRC)], root=str(REPO_ROOT))
    messages = [f"{f.path}:{f.line}: {f.rule} {f.message}"
                for f in report.findings]
    assert report.findings == [], "\n".join(messages)
    assert report.exit_code == 0
    assert report.files > 50  # the whole tree was scanned, not a subset


def test_markers_are_present_in_the_tree():
    project = load_project([str(SRC)], root=str(REPO_ROOT))
    hot = sum(
        1 for sf in project.files for word in sf.markers.values()
        if word == MARKER_HOT_PATH
    )
    shipped = sum(
        1 for sf in project.files for word in sf.markers.values()
        if word == MARKER_WORKER_SHIPPED
    )
    assert hot >= 3, "hot-path markers disappeared; L002 would be vacuous"
    assert shipped >= 3, "worker-shipped markers gone; L005 would be vacuous"


def test_lock_graph_is_nonvacuous_and_acyclic():
    # The known-safe orderings (service wake condition taken before the
    # metrics-registry lock and the progress-bus condition) must appear
    # as edges — proof the analyzer sees real acquisitions — and the
    # graph must stay cycle-free.
    project = load_project([str(SRC)], root=str(REPO_ROOT))
    edges = lock_graph(project)
    assert edges, "no lock-ordering edges found in src/; analyzer is blind"
    inner = {pair[1] for pair in edges}
    assert any("ProgressBus" in name or "_lock" in name for name in inner)
    report = run_lint([str(SRC)], root=str(REPO_ROOT), rules=["C001"])
    assert report.findings == []


def test_injected_violation_fixture_goes_red():
    report = run_lint([str(INJECTED)], root=str(INJECTED))
    rules = {finding.rule for finding in report.findings}
    assert "L003" in rules and "L005" in rules
    assert report.exit_code == 1


def test_cli_lint_smoke():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["lint", str(SRC), "--json"])
    assert code == 0
    payload = json.loads(buffer.getvalue())
    assert payload["findings"] == []
    assert payload["summary"]["errors"] == 0


def test_cli_lint_explain_smoke():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["lint", "--explain", "C001"])
    assert code == 0
    assert "lock-order" in buffer.getvalue()
