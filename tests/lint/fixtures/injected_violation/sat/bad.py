"""Deliberately violating module: CI's lint job must go red on this tree.

Kept OUTSIDE src/ so `repro lint src/` stays green; the negative test
(and the CI step) lint this directory explicitly and require exit 1.
"""

import numpy  # L003: third-party import inside the 'sat' layer
import threading


# repro-lint: worker-shipped
class LeakyJob:
    """L005: shipped to workers but carries a raw lock, no __getstate__."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.data = numpy.zeros if hasattr(numpy, "zeros") else None
