"""Tests for the gate IR."""

import math

import pytest

from repro.circuits import Gate, cnot, h, rz, s, sdg, x, y, z


class TestConstruction:
    def test_builders(self):
        assert h(0).name == "H"
        assert s(1).qubits == (1,)
        assert sdg(2).name == "SDG"
        assert rz(0, 0.5).parameter == 0.5
        assert cnot(0, 1).qubits == (0, 1)
        assert x(0).name == "X" and y(0).name == "Y" and z(0).name == "Z"

    def test_rz_requires_angle(self):
        with pytest.raises(ValueError):
            Gate("RZ", (0,))

    def test_cnot_needs_distinct_qubits(self):
        with pytest.raises(ValueError):
            Gate("CNOT", (1, 1))

    def test_single_qubit_gates_take_one_qubit(self):
        with pytest.raises(ValueError):
            Gate("H", (0, 1))

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            Gate("T", (0,))

    def test_parameter_on_clifford_rejected(self):
        with pytest.raises(ValueError):
            Gate("H", (0,), 0.1)


class TestInverse:
    def test_self_inverse_gates(self):
        for gate in (h(0), x(0), y(0), z(0), cnot(0, 1)):
            assert gate.inverse() == gate
            assert gate.is_inverse_of(gate)

    def test_s_and_sdg(self):
        assert s(0).inverse() == sdg(0)
        assert sdg(0).inverse() == s(0)
        assert s(0).is_inverse_of(sdg(0))
        assert not s(0).is_inverse_of(s(0))

    def test_rz_inverse_negates_angle(self):
        gate = rz(0, 0.7)
        assert gate.inverse().parameter == -0.7
        assert gate.is_inverse_of(rz(0, -0.7))

    def test_rz_inverse_modulo_4pi(self):
        assert rz(0, math.pi).is_inverse_of(rz(0, 4.0 * math.pi - math.pi))

    def test_different_qubits_never_inverse(self):
        assert not h(0).is_inverse_of(h(1))
        assert not cnot(0, 1).is_inverse_of(cnot(1, 0))

    def test_is_two_qubit(self):
        assert cnot(0, 1).is_two_qubit
        assert not h(0).is_two_qubit

    def test_repr(self):
        assert "RZ" in repr(rz(0, 0.25))
        assert "CNOT" in repr(cnot(0, 1))
