"""Tests for first-order Trotterization."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuits import trotter_circuit
from repro.paulis import PauliString, PauliSum, pauli_sum_matrix
from repro.simulator import circuit_unitary


def _phase_distance(left: np.ndarray, right: np.ndarray) -> float:
    """Operator distance modulo global phase."""
    index = np.argmax(np.abs(right))
    phase = left.flat[index] / right.flat[index]
    phase /= abs(phase)
    return float(np.max(np.abs(left - phase * right)))


class TestTrotter:
    def test_single_term_exact(self):
        hamiltonian = PauliSum.from_label("XX", 0.8)
        unitary = circuit_unitary(trotter_circuit(hamiltonian, time=0.5))
        reference = expm(1j * 0.5 * pauli_sum_matrix(hamiltonian))
        assert _phase_distance(unitary, reference) < 1e-9

    def test_commuting_terms_exact(self):
        hamiltonian = PauliSum.from_label("ZI", 0.3) + PauliSum.from_label("IZ", -0.7)
        unitary = circuit_unitary(trotter_circuit(hamiltonian, time=1.0))
        reference = expm(1j * pauli_sum_matrix(hamiltonian))
        assert _phase_distance(unitary, reference) < 1e-9

    def test_error_shrinks_with_steps(self):
        # X and Z on the same qubit anticommute: genuine Trotter error.
        hamiltonian = PauliSum.from_label("XI", 0.9) + PauliSum.from_label("ZI", 0.6)
        reference = expm(1j * pauli_sum_matrix(hamiltonian))
        errors = []
        for steps in (1, 4, 16):
            unitary = circuit_unitary(trotter_circuit(hamiltonian, 1.0, steps=steps))
            errors.append(_phase_distance(unitary, reference))
        assert errors[0] > errors[1] > errors[2]
        # first-order Trotter: error ~ t^2/steps
        assert errors[2] < errors[0] / 10

    def test_identity_terms_skipped(self):
        hamiltonian = PauliSum.identity(2, 5.0) + PauliSum.from_label("XI", 0.1)
        circuit = trotter_circuit(hamiltonian, 1.0)
        assert all(g.name != "RZ" or g.qubits == (1,) for g in circuit)

    def test_nonhermitian_rejected(self):
        with pytest.raises(ValueError):
            trotter_circuit(PauliSum.from_label("XY", 1j), 1.0)

    def test_bad_steps_rejected(self):
        with pytest.raises(ValueError):
            trotter_circuit(PauliSum.from_label("X"), 1.0, steps=0)

    def test_custom_term_order(self):
        hamiltonian = PauliSum.from_label("XI", 0.1) + PauliSum.from_label("IZ", 0.2)
        order = [PauliString.from_label("IZ"), PauliString.from_label("XI")]
        circuit = trotter_circuit(hamiltonian, 1.0, term_order=order)
        first_rz = next(g for g in circuit if g.name == "RZ")
        assert first_rz.qubits == (0,)  # the IZ term acts on qubit 0

    def test_steps_multiply_gate_count(self):
        hamiltonian = PauliSum.from_label("XY", 0.4) + PauliSum.from_label("ZZ", 0.2)
        one = trotter_circuit(hamiltonian, 1.0, steps=1)
        three = trotter_circuit(hamiltonian, 1.0, steps=3)
        assert len(three) == 3 * len(one)


class TestSecondOrder:
    def test_symmetric_formula_matches_exponential_better(self):
        hamiltonian = PauliSum.from_label("XI", 0.9) + PauliSum.from_label("ZI", 0.6)
        reference = expm(1j * pauli_sum_matrix(hamiltonian))
        first = circuit_unitary(trotter_circuit(hamiltonian, 1.0, steps=4, order=1))
        second = circuit_unitary(trotter_circuit(hamiltonian, 1.0, steps=4, order=2))
        assert _phase_distance(second, reference) < _phase_distance(first, reference)

    def test_second_order_error_scales_quadratically(self):
        hamiltonian = PauliSum.from_label("XY", 0.7) + PauliSum.from_label("YX", 0.4) \
            + PauliSum.from_label("ZI", 0.3)
        reference = expm(1j * pauli_sum_matrix(hamiltonian))
        errors = []
        for steps in (1, 2, 4):
            unitary = circuit_unitary(
                trotter_circuit(hamiltonian, 1.0, steps=steps, order=2)
            )
            errors.append(_phase_distance(unitary, reference))
        # doubling steps should shrink the error by ~4x; allow slack
        assert errors[1] < errors[0] / 2.0
        assert errors[2] < errors[1] / 2.0

    def test_second_order_gate_count_doubles(self):
        hamiltonian = PauliSum.from_label("XX", 0.4) + PauliSum.from_label("ZZ", 0.2)
        first = trotter_circuit(hamiltonian, 1.0, steps=1, order=1)
        second = trotter_circuit(hamiltonian, 1.0, steps=1, order=2)
        assert len(second) == 2 * len(first)

    def test_commuting_terms_exact_for_both_orders(self):
        hamiltonian = PauliSum.from_label("ZI", 0.3) + PauliSum.from_label("IZ", -0.7)
        reference = expm(1j * pauli_sum_matrix(hamiltonian))
        for order in (1, 2):
            unitary = circuit_unitary(trotter_circuit(hamiltonian, 1.0, order=order))
            assert _phase_distance(unitary, reference) < 1e-9

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            trotter_circuit(PauliSum.from_label("X"), 1.0, order=3)
