"""Tests for exp(iλP) synthesis — validated against matrix exponentials."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.circuits import pauli_evolution_circuit
from repro.paulis import PauliString, pauli_string_matrix
from repro.simulator import circuit_unitary
from tests.conftest import pauli_strings


def _phase_equal(left: np.ndarray, right: np.ndarray, atol=1e-9) -> bool:
    index = np.argmax(np.abs(right))
    if abs(right.flat[index]) < atol:
        return np.allclose(left, right, atol=atol)
    phase = left.flat[index] / right.flat[index]
    return abs(abs(phase) - 1.0) < atol and np.allclose(left, phase * right, atol=atol)


class TestSynthesis:
    @pytest.mark.parametrize("label", ["X", "Y", "Z", "XY", "ZZ", "XYZ", "IYXI"])
    def test_matches_matrix_exponential(self, label):
        string = PauliString.from_label(label)
        angle = 0.37
        unitary = circuit_unitary(pauli_evolution_circuit(string, angle))
        reference = expm(1j * angle * pauli_string_matrix(string))
        assert _phase_equal(unitary, reference)

    @settings(max_examples=25, deadline=None)
    @given(pauli_strings(max_qubits=3), st.floats(-3.0, 3.0, allow_nan=False))
    def test_property_matches_exponential(self, string, angle):
        unitary = circuit_unitary(pauli_evolution_circuit(string, angle))
        reference = expm(1j * angle * pauli_string_matrix(string))
        assert _phase_equal(unitary, reference, atol=1e-8)

    def test_identity_string_empty_circuit(self):
        circuit = pauli_evolution_circuit(PauliString.identity(3), 0.5)
        assert len(circuit) == 0

    def test_gate_count_proportional_to_weight(self):
        """Weight-w string: 2(w-1) CNOTs; singles bounded by 4w + 1."""
        for label in ("XX", "XYZ", "YYYY", "ZXZY"):
            string = PauliString.from_label(label)
            circuit = pauli_evolution_circuit(string, 0.1)
            weight = string.weight
            assert circuit.cnot_count == 2 * (weight - 1)
            assert circuit.single_qubit_count <= 4 * weight + 1

    def test_z_only_string_needs_no_basis_gates(self):
        circuit = pauli_evolution_circuit(PauliString.from_label("ZZ"), 0.2)
        names = {g.name for g in circuit}
        assert names == {"CNOT", "RZ"}

    def test_custom_target(self):
        string = PauliString.from_label("XX")
        circuit = pauli_evolution_circuit(string, 0.3, target=0)
        rz_gates = [g for g in circuit if g.name == "RZ"]
        assert rz_gates[0].qubits == (0,)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            pauli_evolution_circuit(PauliString.from_label("XI"), 0.1, target=0)


class TestLadderOrder:
    """The ladder parameter reorders parity accumulation without changing
    the implemented unitary (used by the hardware-aware synthesizer)."""

    def test_reordered_ladder_same_unitary(self):
        from repro.simulator import circuit_unitary

        string = PauliString.from_label("XZZY")
        default = pauli_evolution_circuit(string, 0.37)
        reordered = pauli_evolution_circuit(string, 0.37, target=3,
                                            ladder=[2, 0, 1])
        assert _phase_equal(circuit_unitary(default),
                            circuit_unitary(reordered))

    def test_ladder_must_permute_non_target_support(self):
        string = PauliString.from_label("XZZY")
        with pytest.raises(ValueError):
            pauli_evolution_circuit(string, 0.1, target=3, ladder=[0, 1])
        with pytest.raises(ValueError):
            pauli_evolution_circuit(string, 0.1, target=3, ladder=[0, 1, 3])

    def test_ladder_controls_emitted_in_requested_order(self):
        string = PauliString.from_label("ZZZ")
        circuit = pauli_evolution_circuit(string, 0.1, target=0, ladder=[2, 1])
        cnots = [gate for gate in circuit if gate.is_two_qubit]
        assert [gate.qubits[0] for gate in cnots[:2]] == [2, 1]
