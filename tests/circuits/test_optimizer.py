"""Tests for peephole circuit optimization."""

import numpy as np

from repro.circuits import (
    QuantumCircuit,
    cancel_adjacent_gates,
    cnot,
    h,
    optimize_circuit,
    rz,
    s,
    sdg,
    trotter_circuit,
)
from repro.paulis import PauliSum
from repro.simulator import circuit_unitary


def _unitary_equal_up_to_phase(a: QuantumCircuit, b: QuantumCircuit) -> bool:
    ua, ub = circuit_unitary(a), circuit_unitary(b)
    index = np.argmax(np.abs(ub))
    phase = ua.flat[index] / ub.flat[index]
    return np.allclose(ua, phase * ub, atol=1e-9)


class TestCancellation:
    def test_hh_cancels(self):
        circuit = QuantumCircuit(1, [h(0), h(0)])
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_s_sdg_cancels(self):
        circuit = QuantumCircuit(1, [s(0), sdg(0)])
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_cnot_pair_cancels(self):
        circuit = QuantumCircuit(2, [cnot(0, 1), cnot(0, 1)])
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_reversed_cnot_does_not_cancel(self):
        circuit = QuantumCircuit(2, [cnot(0, 1), cnot(1, 0)])
        assert len(cancel_adjacent_gates(circuit)) == 2

    def test_intervening_gate_blocks_cancellation(self):
        circuit = QuantumCircuit(1, [h(0), s(0), h(0)])
        assert len(cancel_adjacent_gates(circuit)) == 3

    def test_gate_on_other_qubit_does_not_block(self):
        circuit = QuantumCircuit(2, [h(0), h(1), h(0)])
        optimized = cancel_adjacent_gates(circuit)
        assert [g.qubits for g in optimized] == [(1,)]

    def test_partial_overlap_blocks(self):
        # CNOT(0,1), H(1), CNOT(0,1): H blocks the pair
        circuit = QuantumCircuit(2, [cnot(0, 1), h(1), cnot(0, 1)])
        assert len(cancel_adjacent_gates(circuit)) == 3


class TestRotationMerging:
    def test_adjacent_rz_merge(self):
        circuit = QuantumCircuit(1, [rz(0, 0.25), rz(0, 0.5)])
        optimized = cancel_adjacent_gates(circuit)
        assert len(optimized) == 1
        assert optimized.gates[0].parameter == 0.75

    def test_opposite_rz_vanish(self):
        circuit = QuantumCircuit(1, [rz(0, 0.25), rz(0, -0.25)])
        assert len(cancel_adjacent_gates(circuit)) == 0

    def test_cascading_cancellation_via_fixpoint(self):
        # h s sdg h: one pass removes s/sdg, second removes h/h
        circuit = QuantumCircuit(1, [h(0), s(0), sdg(0), h(0)])
        assert len(optimize_circuit(circuit)) == 0


class TestSemanticPreservation:
    def test_trotter_circuit_preserved(self):
        hamiltonian = (
            PauliSum.from_label("XZ", 0.4)
            + PauliSum.from_label("ZZ", -0.3)
            + PauliSum.from_label("XX", 0.2)
        )
        circuit = trotter_circuit(hamiltonian, time=1.0, steps=2)
        optimized = optimize_circuit(circuit)
        assert len(optimized) < len(circuit)
        assert _unitary_equal_up_to_phase(circuit, optimized)

    def test_optimizer_reduces_consecutive_evolution_blocks(self):
        """Consecutive X-basis evolutions on overlapping supports share their
        Hadamard basis layers, which cancel across block boundaries."""
        hamiltonian = PauliSum.from_label("XI", 0.3) + PauliSum.from_label("XZ", 0.4)
        circuit = trotter_circuit(hamiltonian, time=1.0, steps=2)
        optimized = optimize_circuit(circuit)
        assert optimized.total_count < circuit.total_count
        assert _unitary_equal_up_to_phase(circuit, optimized)
