"""Tests for the QuantumCircuit container."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, cnot, h, rz, s
from repro.simulator import circuit_unitary


class TestConstruction:
    def test_append_and_len(self):
        circuit = QuantumCircuit(2)
        circuit.append(h(0))
        circuit.append(cnot(0, 1))
        assert len(circuit) == 2

    def test_rejects_out_of_range_qubits(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.append(h(5))

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(1, [h(0)])
        duplicate = circuit.copy()
        duplicate.append(h(0))
        assert len(circuit) == 1
        assert len(duplicate) == 2


class TestComposeInverse:
    def test_compose(self):
        a = QuantumCircuit(2, [h(0)])
        b = QuantumCircuit(2, [cnot(0, 1)])
        combined = a.compose(b)
        assert [g.name for g in combined] == ["H", "CNOT"]

    def test_compose_width_mismatch(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).compose(QuantumCircuit(2))

    def test_inverse_reverses_and_inverts(self):
        circuit = QuantumCircuit(2, [h(0), s(1), cnot(0, 1)])
        inverse = circuit.inverse()
        assert [g.name for g in inverse] == ["CNOT", "SDG", "H"]

    def test_circuit_times_inverse_is_identity(self):
        circuit = QuantumCircuit(2, [h(0), s(1), cnot(0, 1), rz(0, 0.3)])
        identity = circuit.compose(circuit.inverse())
        assert np.allclose(circuit_unitary(identity), np.eye(4), atol=1e-9)


class TestStatistics:
    def test_counts(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1), rz(1, 0.1)])
        assert circuit.single_qubit_count == 2
        assert circuit.cnot_count == 1
        assert circuit.total_count == 3

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(2, [h(0), h(1)])
        assert circuit.depth == 1

    def test_depth_serial_gates(self):
        circuit = QuantumCircuit(1, [h(0), h(0), h(0)])
        assert circuit.depth == 3

    def test_depth_cnot_blocks_both_qubits(self):
        circuit = QuantumCircuit(2, [cnot(0, 1), h(0), h(1)])
        assert circuit.depth == 2

    def test_empty_circuit_depth_zero(self):
        assert QuantumCircuit(3).depth == 0

    def test_gate_statistics_dict(self):
        stats = QuantumCircuit(2, [h(0), cnot(0, 1)]).gate_statistics()
        assert stats == {"single": 1, "cnot": 1, "total": 2, "depth": 2}
