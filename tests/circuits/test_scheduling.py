"""Tests for the Paulihedral-lite greedy term scheduling."""

import numpy as np

from repro.circuits import (
    cancellation_affinity,
    greedy_cancellation_order,
    optimize_circuit,
    trotter_circuit,
)
from repro.paulis import PauliString, PauliSum


class TestAffinity:
    def test_identical_strings(self):
        string = PauliString.from_label("XYZ")
        assert cancellation_affinity(string, string) == 3

    def test_disjoint_supports(self):
        a = PauliString.from_label("XII")
        b = PauliString.from_label("IIZ")
        assert cancellation_affinity(a, b) == 0

    def test_same_operator_positions_counted(self):
        a = PauliString.from_label("XXZ")
        b = PauliString.from_label("XYZ")
        # X matches at qubit 2, Z at qubit 0; middle differs.
        assert cancellation_affinity(a, b) == 2

    def test_identity_positions_do_not_count(self):
        a = PauliString.from_label("III")
        b = PauliString.from_label("III")
        assert cancellation_affinity(a, b) == 0

    def test_symmetric(self):
        a = PauliString.from_label("XZY")
        b = PauliString.from_label("XZZ")
        assert cancellation_affinity(a, b) == cancellation_affinity(b, a)


class TestGreedyOrder:
    def test_orders_all_terms_once(self):
        operator = (
            PauliSum.from_label("XX", 0.1)
            + PauliSum.from_label("YY", 0.2)
            + PauliSum.from_label("ZZ", 0.3)
        )
        order = greedy_cancellation_order(operator)
        assert sorted(s.label() for s in order) == ["XX", "YY", "ZZ"]

    def test_identity_excluded(self):
        operator = PauliSum.identity(2, 1.0) + PauliSum.from_label("XI", 0.1)
        order = greedy_cancellation_order(operator)
        assert [s.label() for s in order] == ["XI"]

    def test_empty_sum(self):
        assert greedy_cancellation_order(PauliSum.zero(2)) == []

    def test_deterministic(self):
        operator = (
            PauliSum.from_label("XZ", 0.1)
            + PauliSum.from_label("XX", 0.2)
            + PauliSum.from_label("ZX", 0.3)
        )
        assert greedy_cancellation_order(operator) == greedy_cancellation_order(operator)

    def test_groups_shared_basis_terms(self):
        """XX-like terms should end up adjacent rather than interleaved
        with Z-terms."""
        operator = (
            PauliSum.from_label("XX", 0.1)
            + PauliSum.from_label("ZZ", 0.2)
            + PauliSum.from_label("XI", 0.3)
            + PauliSum.from_label("ZI", 0.4)
        )
        order = [s.label() for s in greedy_cancellation_order(operator)]
        x_positions = [order.index("XX"), order.index("XI")]
        z_positions = [order.index("ZZ"), order.index("ZI")]
        assert abs(x_positions[0] - x_positions[1]) == 1
        assert abs(z_positions[0] - z_positions[1]) == 1


class TestEndToEndImprovement:
    def test_scheduled_circuit_not_larger(self):
        """Greedy order + peephole never beats sorted order by being larger."""
        from repro.encodings import bravyi_kitaev
        from repro.fermion import h2_hamiltonian

        operator = bravyi_kitaev(4).encode(h2_hamiltonian()).without_identity()
        sorted_circuit = optimize_circuit(trotter_circuit(operator, 1.0))
        scheduled = optimize_circuit(
            trotter_circuit(operator, 1.0, term_order=greedy_cancellation_order(operator))
        )
        assert scheduled.total_count <= sorted_circuit.total_count

    def test_scheduled_circuit_preserves_unitary(self):
        from repro.simulator import circuit_unitary

        operator = (
            PauliSum.from_label("XZ", 0.4)
            + PauliSum.from_label("XX", 0.3)
            + PauliSum.from_label("ZI", 0.2)
        )
        plain = trotter_circuit(operator, 1.0)
        # NOTE: reordering terms changes the Trotter *approximation*, not
        # the per-term blocks; we only check the scheduled circuit is a
        # valid product of the same evolutions (unitary, right dimensions).
        scheduled = trotter_circuit(
            operator, 1.0, term_order=greedy_cancellation_order(operator)
        )
        unitary = circuit_unitary(optimize_circuit(scheduled))
        assert np.allclose(unitary @ unitary.conj().T, np.eye(4), atol=1e-9)
        assert len(scheduled) == len(plain)


# -- property-based coverage --------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

_labels = st.text(alphabet="IXYZ", min_size=1, max_size=6)


def _pair_of_labels():
    return _labels.flatmap(
        lambda left: st.tuples(
            st.just(left), st.text(alphabet="IXYZ", min_size=len(left),
                                   max_size=len(left))
        )
    )


class TestAffinityProperties:
    @settings(max_examples=200, deadline=None)
    @given(_pair_of_labels())
    def test_symmetric(self, labels):
        left = PauliString.from_label(labels[0])
        right = PauliString.from_label(labels[1])
        assert cancellation_affinity(left, right) == cancellation_affinity(
            right, left
        )

    @settings(max_examples=200, deadline=None)
    @given(_pair_of_labels())
    def test_bounded_by_min_weight(self, labels):
        left = PauliString.from_label(labels[0])
        right = PauliString.from_label(labels[1])
        affinity = cancellation_affinity(left, right)
        assert 0 <= affinity <= min(left.weight, right.weight)

    @settings(max_examples=100, deadline=None)
    @given(_labels)
    def test_self_affinity_is_weight(self, label):
        string = PauliString.from_label(label)
        assert cancellation_affinity(string, string) == string.weight


class TestGreedyOrderProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(alphabet="IXYZ", min_size=3, max_size=3),
                    min_size=1, max_size=8, unique=True))
    def test_orders_every_non_identity_term_once_deterministically(self, labels):
        operator = PauliSum.zero(3)
        for position, label in enumerate(labels):
            operator = operator + PauliSum.from_label(label, 0.5 + position)
        first = greedy_cancellation_order(operator)
        second = greedy_cancellation_order(operator)
        assert first == second
        expected = sorted(label for label in labels if label != "III")
        assert sorted(string.label() for string in first) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(alphabet="IXYZ", min_size=2, max_size=2),
                    min_size=1, max_size=6, unique=True))
    def test_identity_never_scheduled(self, labels):
        operator = PauliSum.identity(2, 2.0)
        for label in labels:
            operator = operator + PauliSum.from_label(label, 0.25)
        order = greedy_cancellation_order(operator)
        assert all(not string.is_identity for string in order)
