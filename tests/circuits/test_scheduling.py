"""Tests for the Paulihedral-lite greedy term scheduling."""

import numpy as np

from repro.circuits import (
    cancellation_affinity,
    greedy_cancellation_order,
    optimize_circuit,
    trotter_circuit,
)
from repro.paulis import PauliString, PauliSum


class TestAffinity:
    def test_identical_strings(self):
        string = PauliString.from_label("XYZ")
        assert cancellation_affinity(string, string) == 3

    def test_disjoint_supports(self):
        a = PauliString.from_label("XII")
        b = PauliString.from_label("IIZ")
        assert cancellation_affinity(a, b) == 0

    def test_same_operator_positions_counted(self):
        a = PauliString.from_label("XXZ")
        b = PauliString.from_label("XYZ")
        # X matches at qubit 2, Z at qubit 0; middle differs.
        assert cancellation_affinity(a, b) == 2

    def test_identity_positions_do_not_count(self):
        a = PauliString.from_label("III")
        b = PauliString.from_label("III")
        assert cancellation_affinity(a, b) == 0

    def test_symmetric(self):
        a = PauliString.from_label("XZY")
        b = PauliString.from_label("XZZ")
        assert cancellation_affinity(a, b) == cancellation_affinity(b, a)


class TestGreedyOrder:
    def test_orders_all_terms_once(self):
        operator = (
            PauliSum.from_label("XX", 0.1)
            + PauliSum.from_label("YY", 0.2)
            + PauliSum.from_label("ZZ", 0.3)
        )
        order = greedy_cancellation_order(operator)
        assert sorted(s.label() for s in order) == ["XX", "YY", "ZZ"]

    def test_identity_excluded(self):
        operator = PauliSum.identity(2, 1.0) + PauliSum.from_label("XI", 0.1)
        order = greedy_cancellation_order(operator)
        assert [s.label() for s in order] == ["XI"]

    def test_empty_sum(self):
        assert greedy_cancellation_order(PauliSum.zero(2)) == []

    def test_deterministic(self):
        operator = (
            PauliSum.from_label("XZ", 0.1)
            + PauliSum.from_label("XX", 0.2)
            + PauliSum.from_label("ZX", 0.3)
        )
        assert greedy_cancellation_order(operator) == greedy_cancellation_order(operator)

    def test_groups_shared_basis_terms(self):
        """XX-like terms should end up adjacent rather than interleaved
        with Z-terms."""
        operator = (
            PauliSum.from_label("XX", 0.1)
            + PauliSum.from_label("ZZ", 0.2)
            + PauliSum.from_label("XI", 0.3)
            + PauliSum.from_label("ZI", 0.4)
        )
        order = [s.label() for s in greedy_cancellation_order(operator)]
        x_positions = [order.index("XX"), order.index("XI")]
        z_positions = [order.index("ZZ"), order.index("ZI")]
        assert abs(x_positions[0] - x_positions[1]) == 1
        assert abs(z_positions[0] - z_positions[1]) == 1


class TestEndToEndImprovement:
    def test_scheduled_circuit_not_larger(self):
        """Greedy order + peephole never beats sorted order by being larger."""
        from repro.encodings import bravyi_kitaev
        from repro.fermion import h2_hamiltonian

        operator = bravyi_kitaev(4).encode(h2_hamiltonian()).without_identity()
        sorted_circuit = optimize_circuit(trotter_circuit(operator, 1.0))
        scheduled = optimize_circuit(
            trotter_circuit(operator, 1.0, term_order=greedy_cancellation_order(operator))
        )
        assert scheduled.total_count <= sorted_circuit.total_count

    def test_scheduled_circuit_preserves_unitary(self):
        from repro.simulator import circuit_unitary

        operator = (
            PauliSum.from_label("XZ", 0.4)
            + PauliSum.from_label("XX", 0.3)
            + PauliSum.from_label("ZI", 0.2)
        )
        plain = trotter_circuit(operator, 1.0)
        # NOTE: reordering terms changes the Trotter *approximation*, not
        # the per-term blocks; we only check the scheduled circuit is a
        # valid product of the same evolutions (unitary, right dimensions).
        scheduled = trotter_circuit(
            operator, 1.0, term_order=greedy_cancellation_order(operator)
        )
        unitary = circuit_unitary(optimize_circuit(scheduled))
        assert np.allclose(unitary @ unitary.conj().T, np.eye(4), atol=1e-9)
        assert len(scheduled) == len(plain)
