"""Packaging checks: every package ships, the console script exists, and
the version constants agree."""

import re
from pathlib import Path

from setuptools import find_packages

REPO_ROOT = Path(__file__).parent.parent
SETUP_PY = (REPO_ROOT / "setup.py").read_text()


class TestPackages:
    def test_all_source_packages_are_discovered(self):
        packages = set(find_packages(where=str(REPO_ROOT / "src")))
        expected = {
            "repro",
            "repro.analysis",
            "repro.circuits",
            "repro.core",
            "repro.encodings",
            "repro.fermion",
            "repro.hardware",
            "repro.paulis",
            "repro.sat",
            "repro.simulator",
            "repro.store",
            "repro.tapering",
        }
        assert expected <= packages

    def test_every_package_directory_has_an_init(self):
        source = REPO_ROOT / "src" / "repro"
        for directory in source.iterdir():
            if directory.is_dir() and any(directory.glob("*.py")):
                assert (directory / "__init__.py").exists(), directory


class TestMetadata:
    def test_console_script_registered(self):
        assert "repro=repro.cli:main" in SETUP_PY.replace(" ", "")

    def test_setup_py_reads_version_from_the_package(self):
        """setup.py must parse __version__ from src/repro/__init__.py (the
        single source of truth) rather than pin its own copy."""
        import repro

        assert "version=package_version()" in SETUP_PY.replace(" ", "")
        source = (REPO_ROOT / "src" / "repro" / "__init__.py").read_text()
        match = re.search(r'^__version__ = "([^"]+)"', source, re.MULTILINE)
        assert match and match.group(1) == repro.__version__

    def test_cli_version_action_uses_package_version(self):
        from repro.cli import build_parser

        parser = build_parser()
        actions = {action.dest: action for action in parser._actions}
        assert "version" in actions
