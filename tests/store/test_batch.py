"""Tests for the batch compiler: deduplication, caching, error isolation."""

import pytest

from repro.core import (
    METHOD_ANNEALING,
    METHOD_FULL_SAT,
    METHOD_INDEPENDENT,
    FermihedralConfig,
)
from repro.fermion import hubbard_chain
from repro.store import BatchCompiler, CompilationCache, CompileJob


class TestCompileJob:
    def test_independent_needs_modes(self):
        with pytest.raises(ValueError):
            CompileJob(method=METHOD_INDEPENDENT)

    def test_independent_rejects_hamiltonian(self):
        with pytest.raises(ValueError):
            CompileJob(method=METHOD_INDEPENDENT, hamiltonian=hubbard_chain(2))

    def test_dependent_needs_hamiltonian(self):
        with pytest.raises(ValueError):
            CompileJob(method=METHOD_FULL_SAT, num_modes=4)

    def test_modes_contradiction_rejected(self):
        with pytest.raises(ValueError):
            CompileJob(
                method=METHOD_FULL_SAT, hamiltonian=hubbard_chain(2), num_modes=3
            )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            CompileJob(method="psychic", num_modes=2)

    def test_modes_and_display(self):
        job = CompileJob(method=METHOD_FULL_SAT, hamiltonian=hubbard_chain(2))
        assert job.modes == 4
        assert job.display == hubbard_chain(2).name
        assert CompileJob(num_modes=3).display == "3 modes"
        assert CompileJob(num_modes=3, label="trio").display == "trio"


class TestBatchCompiler:
    def test_duplicates_compile_once(self, tmp_path, fast_config):
        cache = CompilationCache(tmp_path)
        compiler = BatchCompiler(cache=cache, default_config=fast_config)
        jobs = [
            CompileJob(num_modes=2),
            CompileJob(num_modes=2),
            CompileJob(num_modes=1),
        ]
        report = compiler.compile(jobs)
        statuses = [outcome.status for outcome in report.outcomes]
        assert statuses == ["compiled", "deduplicated", "compiled"]
        # one store per unique fingerprint, none for the duplicate
        assert cache.stats.stores == 2
        assert report.outcomes[0].result is report.outcomes[1].result
        assert report.ok
        assert report.counts == {"compiled": 2, "deduplicated": 1}
        assert "3 jobs" in report.summary()

    def test_second_batch_hits_the_cache(self, tmp_path, fast_config):
        cache = CompilationCache(tmp_path)
        jobs = [CompileJob(num_modes=2)]
        BatchCompiler(cache=cache, default_config=fast_config).compile(jobs)
        report = BatchCompiler(cache=cache, default_config=fast_config).compile(jobs)
        assert [outcome.status for outcome in report.outcomes] == ["cache-hit"]

    def test_dedup_without_cache(self, fast_config):
        compiler = BatchCompiler(default_config=fast_config)
        report = compiler.compile([CompileJob(num_modes=1), CompileJob(num_modes=1)])
        assert [outcome.status for outcome in report.outcomes] == [
            "compiled",
            "deduplicated",
        ]

    def test_per_job_config_changes_the_fingerprint(self, fast_config):
        loose = FermihedralConfig(vacuum_preservation=False)
        compiler = BatchCompiler(default_config=fast_config)
        report = compiler.compile(
            [CompileJob(num_modes=1), CompileJob(num_modes=1, config=loose)]
        )
        assert [outcome.status for outcome in report.outcomes] == [
            "compiled",
            "compiled",
        ]

    def test_errors_are_isolated_and_shared_with_duplicates(
        self, fast_config, monkeypatch
    ):
        import repro.store.batch as batch_module

        real_compiler = batch_module.FermihedralCompiler

        class ExplodingCompiler(real_compiler):
            def compile(self, method="independent", **kwargs):
                if method == METHOD_ANNEALING:
                    raise RuntimeError("boom")
                return super().compile(method=method, **kwargs)

        monkeypatch.setattr(batch_module, "FermihedralCompiler", ExplodingCompiler)
        jobs = [
            CompileJob(
                method=METHOD_ANNEALING, hamiltonian=hubbard_chain(2), seed=1
            ),
            CompileJob(
                method=METHOD_ANNEALING, hamiltonian=hubbard_chain(2), seed=1
            ),
            CompileJob(num_modes=1),
        ]
        report = BatchCompiler(default_config=fast_config).compile(jobs)
        statuses = [outcome.status for outcome in report.outcomes]
        assert statuses == ["error", "error", "compiled"]
        assert not report.ok
        assert "boom" in report.outcomes[0].error
        assert "boom" in report.outcomes[1].error

    def test_empty_batch(self, fast_config):
        report = BatchCompiler(default_config=fast_config).compile([])
        assert report.outcomes == []
        assert report.ok


class TestDeviceJobs:
    def _fast(self):
        from repro.core import SolverBudget

        return FermihedralConfig(budget=SolverBudget(time_budget_s=30.0))

    def test_different_devices_not_deduplicated(self):
        compiler = BatchCompiler(default_config=self._fast())
        report = compiler.compile([
            CompileJob(method=METHOD_INDEPENDENT, num_modes=2),
            CompileJob(method=METHOD_INDEPENDENT, num_modes=2,
                       device="grid-2x2"),
        ])
        assert report.ok
        assert [o.status for o in report.outcomes] == ["compiled", "compiled"]
        assert report.outcomes[0].result.device is None
        assert report.outcomes[1].result.device == "grid-2x2"
        assert report.outcomes[1].result.hardware is not None

    def test_same_device_deduplicated(self):
        compiler = BatchCompiler(default_config=self._fast())
        report = compiler.compile([
            CompileJob(method=METHOD_INDEPENDENT, num_modes=2,
                       device="grid-2x2"),
            CompileJob(method=METHOD_INDEPENDENT, num_modes=2,
                       device="grid-2x2", label="duplicate"),
        ])
        assert report.counts == {"compiled": 1, "deduplicated": 1}

    def test_bad_device_is_isolated_per_job(self):
        """A typo'd or too-small device fails its own job at fingerprint
        time without aborting the rest of the batch."""
        compiler = BatchCompiler(default_config=self._fast())
        report = compiler.compile([
            CompileJob(method=METHOD_INDEPENDENT, num_modes=2,
                       device="gird-3x3"),
            CompileJob(method=METHOD_INDEPENDENT, num_modes=4,
                       device="linear-3"),
            CompileJob(method=METHOD_INDEPENDENT, num_modes=2),
        ])
        assert [o.status for o in report.outcomes] == [
            "error", "error", "compiled",
        ]
        assert "unknown device" in report.outcomes[0].error
        assert report.outcomes[2].result is not None
        assert not report.ok
