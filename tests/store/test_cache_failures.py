"""A broken cache directory must never cost a finished compilation.

The batch engine and the service daemon both rely on this isolation: a
worker whose cache directory is unwritable (or vanished mid-run) still
returns its result — the job is *not* an error, the failure is recorded
on the side.
"""

import pytest

from repro.core import FermihedralCompiler, FermihedralConfig, SolverBudget
from repro.store import BatchCompiler, CompilationCache, CompileJob


@pytest.fixture
def config():
    return FermihedralConfig(budget=SolverBudget(time_budget_s=30.0))


def _unwritable_cache(tmp_path) -> CompilationCache:
    """A cache whose root can never be created: a path under a file."""
    blocker = tmp_path / "blocker"
    blocker.write_text("a file where a directory was expected")
    return CompilationCache(blocker / "cache")


class TestCompilerStoreFailure:
    def test_result_survives_unwritable_cache(self, tmp_path, config):
        compiler = FermihedralCompiler(2, config, cache=_unwritable_cache(tmp_path))
        result = compiler.compile(method="independent")
        assert result.weight == 6
        assert compiler.last_cache_status == "store-failed"
        assert compiler.last_cache_error is not None

    def test_put_failure_mid_run(self, tmp_path, config, monkeypatch):
        """The cache directory vanishing between get and put."""
        cache = CompilationCache(tmp_path / "cache")

        def vanished(key, result):
            raise FileNotFoundError("shard removed by a concurrent cleanup")

        monkeypatch.setattr(cache, "put", vanished)
        compiler = FermihedralCompiler(2, config, cache=cache)
        result = compiler.compile(method="independent")
        assert result.proved_optimal
        assert compiler.last_cache_status == "store-failed"
        assert "FileNotFoundError" in compiler.last_cache_error

    def test_healthy_cache_still_stores(self, tmp_path, config):
        cache = CompilationCache(tmp_path / "cache")
        compiler = FermihedralCompiler(2, config, cache=cache)
        compiler.compile(method="independent")
        assert compiler.last_cache_status == "miss"
        assert compiler.last_cache_error is None
        assert cache.stats.stores == 1


class TestBatchStoreFailure:
    def _jobs(self):
        return [
            CompileJob(method="independent", num_modes=2, label="a"),
            CompileJob(method="independent", num_modes=3, label="b"),
        ]

    def test_thread_path_keeps_batch_alive(self, tmp_path, config):
        batch = BatchCompiler(
            cache=_unwritable_cache(tmp_path), default_config=config
        )
        report = batch.compile(self._jobs())
        assert report.ok  # no job is an error
        assert [o.status for o in report.outcomes] == ["compiled", "compiled"]
        assert all(o.result is not None for o in report.outcomes)
        assert all(o.cache_error for o in report.outcomes)

    def test_process_path_keeps_batch_alive(self, tmp_path, config):
        batch = BatchCompiler(
            cache=_unwritable_cache(tmp_path), default_config=config, jobs=2
        )
        report = batch.compile(self._jobs())
        assert report.ok
        assert [o.status for o in report.outcomes] == ["compiled", "compiled"]
        assert all(o.result is not None for o in report.outcomes)
        assert all(o.cache_error for o in report.outcomes)
