"""Concurrent-writer safety of the compilation cache."""

import os
import pickle
import tempfile
import threading
from pathlib import Path

from repro.core.pipeline import FermihedralCompiler
from repro.store.cache import CompilationCache


def _result():
    return FermihedralCompiler(2).hamiltonian_independent()


def _key(cache, **overrides):
    from repro.core.config import FermihedralConfig

    return cache.key_for(num_modes=2, config=FermihedralConfig(), **overrides)


class TestPickling:
    def test_cache_pickles_by_directory(self, tmp_path):
        cache = CompilationCache(tmp_path, validate=False)
        cache.put(_key(cache), _result())
        assert cache.stats.stores == 1
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.root == cache.root
        assert clone.validate is False
        # process-local state starts fresh in the clone
        assert clone.stats.stores == 0
        assert clone.get(_key(clone)) is not None
        assert clone.stats.hits == 1


class TestConcurrentWriters:
    def test_racing_writers_one_key(self, tmp_path):
        cache = CompilationCache(tmp_path)
        result = _result()
        key = _key(cache)
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    cache.put(key, result)
                    cache.get(key)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.get(key) is not None
        assert len(cache) == 1

    def test_gc_racing_readers(self, tmp_path):
        cache = CompilationCache(tmp_path)
        result = _result()
        keys = [
            _key(cache, method="independent", seed=None),
        ]
        errors = []
        stop = threading.Event()

        def churn():
            try:
                while not stop.is_set():
                    for key in keys:
                        cache.put(key, result)
                    cache.gc(max_entries=0)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def read():
            try:
                for _ in range(40):
                    for key in keys:
                        cache.get(key)  # hit or miss, never an exception
                    cache.entries()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        writer = threading.Thread(target=churn)
        readers = [threading.Thread(target=read) for _ in range(3)]
        writer.start()
        for t in readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        writer.join()
        assert errors == []


class TestVanishingFiles:
    def test_get_tolerates_entry_vanishing_after_exists(self, tmp_path, monkeypatch):
        """The exists() -> read race with a concurrent gc is a miss, not a
        crash."""
        cache = CompilationCache(tmp_path)
        key = _key(cache)
        monkeypatch.setattr(Path, "exists", lambda self: True)
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupted == 0

    def test_put_retries_when_shard_dir_removed(self, tmp_path):
        """A concurrent cleanup deleting the shard directory mid-put is
        absorbed by recreating it once."""
        cache = CompilationCache(tmp_path)
        key = _key(cache)
        result = _result()
        shard = cache.path_for(key).parent

        real_mkstemp = tempfile.mkstemp
        calls = {"n": 0}

        def sabotage(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                # simulate the directory vanishing before the temp file
                # can be created in it
                for child in shard.glob("*"):
                    child.unlink()
                shard.rmdir()
                raise FileNotFoundError(f"no such directory: {shard}")
            return real_mkstemp(*args, **kwargs)

        try:
            tempfile.mkstemp = sabotage
            path = cache.put(key, result)
        finally:
            tempfile.mkstemp = real_mkstemp
        assert path.exists()
        assert calls["n"] == 2
        assert cache.get(key) is not None

    def test_put_retries_when_replace_target_dir_removed(self, tmp_path):
        cache = CompilationCache(tmp_path)
        key = _key(cache)
        result = _result()
        shard = cache.path_for(key).parent

        real_replace = os.replace
        calls = {"n": 0}

        def sabotage(src, dst):
            calls["n"] += 1
            if calls["n"] == 1:
                os.unlink(src)
                for child in shard.glob("*"):
                    child.unlink()
                shard.rmdir()
                raise FileNotFoundError(f"no such directory: {shard}")
            return real_replace(src, dst)

        try:
            os.replace = sabotage
            path = cache.put(key, result)
        finally:
            os.replace = real_replace
        assert path.exists()
        assert calls["n"] == 2
