"""Tests for compilation-job fingerprints."""

import pytest

from repro.core import (
    METHOD_ANNEALING,
    METHOD_FULL_SAT,
    METHOD_INDEPENDENT,
    AnnealingSchedule,
    FermihedralConfig,
    SolverBudget,
)
from repro.fermion import MajoranaPolynomial, h2_hamiltonian, hubbard_chain
from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.store import compilation_key, job_payload


def _hamiltonian_with_coefficients(scale: float) -> FermionicHamiltonian:
    polynomial = MajoranaPolynomial({(0, 1): 0.5 * scale, (0, 1, 2, 3): 0.25 * scale})
    return FermionicHamiltonian.from_majorana("toy", polynomial, num_modes=2)


class TestStability:
    def test_same_job_same_key(self):
        config = FermihedralConfig()
        first = compilation_key(4, config, h2_hamiltonian(), METHOD_FULL_SAT)
        second = compilation_key(4, config, h2_hamiltonian(), METHOD_FULL_SAT)
        assert first == second

    def test_key_is_hex_sha256(self):
        key = compilation_key(2, FermihedralConfig())
        assert len(key) == 64
        int(key, 16)

    def test_coefficients_do_not_change_the_key(self):
        """Compilation depends only on the monomial support, so rescaled
        Hamiltonians (same molecule, different geometry) share a key."""
        config = FermihedralConfig()
        first = compilation_key(
            2, config, _hamiltonian_with_coefficients(1.0), METHOD_FULL_SAT
        )
        second = compilation_key(
            2, config, _hamiltonian_with_coefficients(-3.7), METHOD_FULL_SAT
        )
        assert first == second


class TestSensitivity:
    def test_modes_change_the_key(self):
        config = FermihedralConfig()
        assert compilation_key(2, config) != compilation_key(3, config)

    def test_method_changes_the_key(self):
        config = FermihedralConfig()
        h2 = h2_hamiltonian()
        keys = {
            compilation_key(4, config, h2, METHOD_FULL_SAT),
            compilation_key(4, config, h2, METHOD_ANNEALING),
        }
        assert len(keys) == 2

    def test_hamiltonian_changes_the_key(self):
        config = FermihedralConfig()
        assert compilation_key(
            4, config, h2_hamiltonian(), METHOD_FULL_SAT
        ) != compilation_key(4, config, hubbard_chain(2), METHOD_FULL_SAT)

    def test_config_fields_change_the_key(self):
        base = FermihedralConfig()
        variants = [
            FermihedralConfig(algebraic_independence=False),
            FermihedralConfig(vacuum_preservation=False),
            FermihedralConfig(strategy="bisection"),
            FermihedralConfig(budget=SolverBudget(time_budget_s=1.0)),
        ]
        base_key = compilation_key(3, base)
        for variant in variants:
            assert compilation_key(3, variant) != base_key

    def test_annealing_seed_and_schedule_fingerprinted(self):
        config = FermihedralConfig()
        h2 = h2_hamiltonian()
        by_seed = {
            compilation_key(4, config, h2, METHOD_ANNEALING, seed=seed)
            for seed in (1, 2)
        }
        assert len(by_seed) == 2
        schedule = AnnealingSchedule(iterations_per_step=3)
        assert compilation_key(
            4, config, h2, METHOD_ANNEALING, schedule=schedule
        ) != compilation_key(4, config, h2, METHOD_ANNEALING)

    def test_seed_ignored_outside_annealing(self):
        config = FermihedralConfig()
        h2 = h2_hamiltonian()
        assert compilation_key(
            4, config, h2, METHOD_FULL_SAT, seed=1
        ) == compilation_key(4, config, h2, METHOD_FULL_SAT, seed=2)


class TestDeviceSensitivity:
    def test_device_shapes_change_the_key(self):
        from repro.hardware import all_to_all_topology, linear_topology

        config = FermihedralConfig()
        keys = {
            compilation_key(3, config),
            compilation_key(3, config, device=linear_topology(3)),
            compilation_key(3, config, device=all_to_all_topology(3)),
        }
        assert len(keys) == 3

    def test_device_name_does_not_change_the_key(self):
        """Fingerprints key on the coupling graph, not the display name."""
        from repro.hardware import DeviceTopology, linear_topology

        config = FermihedralConfig()
        named = DeviceTopology(3, [(0, 1), (1, 2)], name="my-favorite-chain")
        assert compilation_key(3, config, device=named) == compilation_key(
            3, config, device=linear_topology(3)
        )

    def test_same_shape_same_key(self):
        from repro.hardware import ring_topology

        config = FermihedralConfig()
        assert compilation_key(3, config, device=ring_topology(3)) == (
            compilation_key(3, config, device=ring_topology(3))
        )

    def test_qubit_weights_change_the_key(self):
        base = FermihedralConfig()
        weighted = base.with_qubit_weights((1, 2, 1))
        assert compilation_key(3, base) != compilation_key(3, weighted)


class TestPayload:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            job_payload(2, FermihedralConfig(), method="quantum-vibes")

    def test_payload_is_json_plain(self):
        import json

        payload = job_payload(
            4, FermihedralConfig(), h2_hamiltonian(), METHOD_ANNEALING, seed=7
        )
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text) == payload

    def test_independent_payload_has_no_hamiltonian(self):
        payload = job_payload(3, FermihedralConfig(), method=METHOD_INDEPENDENT)
        assert payload["hamiltonian"] is None
        assert payload["annealing"] is None
