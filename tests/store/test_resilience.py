"""Resilience plumbing at the batch layer: deadline specs, fingerprint
invariance, degraded outcomes, and the ``job.run`` chaos point."""

import pytest

from repro import chaos
from repro.core import FermihedralConfig, SolverBudget
from repro.core.verify import verify_encoding
from repro.store import CompilationCache, CompileJob
from repro.store.batch import (
    compile_job_key,
    config_from_spec,
    job_from_spec,
    run_compile_job,
)

FAST_CONFIG = FermihedralConfig(
    budget=SolverBudget(max_conflicts=200_000, time_budget_s=60)
)


@pytest.fixture(autouse=True)
def _no_ambient_chaos():
    chaos.reset()
    yield
    chaos.reset()


class TestDeadlineSpec:
    def test_config_spec_accepts_deadline(self):
        config = config_from_spec({"deadline_s": 2.5}, FAST_CONFIG)
        assert config.deadline_s == 2.5
        # Absent field keeps the base value.
        assert config_from_spec({}, FAST_CONFIG).deadline_s is None

    def test_config_spec_rejects_non_numeric_deadline(self):
        with pytest.raises(ValueError, match="deadline_s"):
            config_from_spec({"deadline_s": "soon"}, FAST_CONFIG)
        with pytest.raises(ValueError, match="deadline_s"):
            config_from_spec({"deadline_s": True}, FAST_CONFIG)

    def test_job_spec_carries_deadline(self):
        job = job_from_spec(
            {"modes": 2, "method": "independent",
             "config": {"deadline_s": 3.0}},
            base_config=FAST_CONFIG,
        )
        assert job.config.deadline_s == 3.0

    def test_deadline_does_not_change_the_fingerprint(self):
        # deadline_s is an execution knob: the same job with and without
        # one must dedup onto one cache entry / one service record.
        plain = CompileJob(num_modes=2)
        timed = CompileJob(num_modes=2, config=FAST_CONFIG.with_deadline(5.0))
        assert compile_job_key(plain, FAST_CONFIG) == \
            compile_job_key(timed, FAST_CONFIG)


class TestDegradedOutcome:
    def test_expired_deadline_yields_degraded_status(self):
        job = CompileJob(num_modes=3)
        outcome = run_compile_job(
            job, FAST_CONFIG.with_deadline(1e-6), cache=None, key="k-degraded"
        )
        assert outcome.status == "degraded"
        assert outcome.error is None
        assert outcome.result is not None
        assert outcome.result.degraded
        assert verify_encoding(outcome.result.encoding).valid
        # Degradation is not an infrastructure failure: no retry.
        assert outcome.retryable is False

    def test_normal_job_is_not_degraded(self, tmp_path):
        cache = CompilationCache(tmp_path)
        outcome = run_compile_job(
            CompileJob(num_modes=2), FAST_CONFIG, cache=cache,
            key=compile_job_key(CompileJob(num_modes=2), FAST_CONFIG),
        )
        assert outcome.status == "compiled"
        assert outcome.result.degraded is False


class TestJobRunChaos:
    def test_job_run_fault_is_an_error_outcome(self):
        chaos.configure("job.run=once")
        job = CompileJob(num_modes=1)
        first = run_compile_job(job, FAST_CONFIG, cache=None, key="k-chaos")
        assert first.status == "error"
        assert "chaos fault injected" in first.error
        # ChaosFault is deterministic from the job's perspective: the
        # daemon must not waste attempts on it.
        assert first.retryable is False
        # ``once`` spent: the identical call now succeeds.
        second = run_compile_job(job, FAST_CONFIG, cache=None, key="k-chaos")
        assert second.status == "compiled"

    def test_legacy_env_still_fails_matching_labels(self, monkeypatch):
        monkeypatch.setenv(chaos.LEGACY_CHAOS_ENV, "drill")
        chaos.reset()
        job = CompileJob(num_modes=1, label="chaos-drill")
        outcome = run_compile_job(job, FAST_CONFIG, cache=None, key="k-legacy")
        assert outcome.status == "error"
        assert "chaos fault injected" in outcome.error
        assert chaos.LEGACY_CHAOS_ENV in outcome.error
        clean = CompileJob(num_modes=1, label="healthy")
        assert run_compile_job(
            clean, FAST_CONFIG, cache=None, key="k-clean"
        ).status == "compiled"
