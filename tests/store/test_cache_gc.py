"""gc's stale-temp handling: staleness, the stat/unlink race, counting."""

import os
import time

from repro.store import cache as cache_module
from repro.store.cache import CompilationCache


def _make_temp(root, age_s: float, name: str = ".deadbeef.12345.tmp"):
    shard = root / "de"
    shard.mkdir(parents=True, exist_ok=True)
    temp = shard / name
    temp.write_text("half-written entry")
    stamp = time.time() - age_s
    os.utime(temp, (stamp, stamp))
    return temp


class TestStaleTempRemoval:
    def test_fresh_temp_survives(self, tmp_path):
        cache = CompilationCache(tmp_path)
        temp = _make_temp(tmp_path, age_s=1.0)
        report = cache.gc()
        assert report.temp_files_removed == 0
        assert temp.exists()

    def test_stale_temp_removed_and_counted(self, tmp_path):
        cache = CompilationCache(tmp_path)
        temp = _make_temp(tmp_path, age_s=cache_module._STALE_TEMP_S + 10)
        report = cache.gc()
        assert report.temp_files_removed == 1
        assert not temp.exists()

    def test_dry_run_counts_without_deleting(self, tmp_path):
        cache = CompilationCache(tmp_path)
        temp = _make_temp(tmp_path, age_s=cache_module._STALE_TEMP_S + 10)
        report = cache.gc(dry_run=True)
        assert report.dry_run and report.temp_files_removed == 1
        assert temp.exists()


class TestUnlinkIfUnchanged:
    """The removal primitive that closes the stat/unlink race."""

    def test_unchanged_file_removed(self, tmp_path):
        path = tmp_path / ".x.tmp"
        path.write_text("x")
        observed = path.stat()
        assert CompilationCache._unlink_if_unchanged(path, observed) is True
        assert not path.exists()

    def test_replaced_between_stat_and_unlink_kept(self, tmp_path):
        # A writer finishing (os.replace) removes the temp name and a new
        # writer may recreate it: the mtime/inode no longer match what gc
        # observed, so the fresh file must be left alone and not counted.
        path = tmp_path / ".x.tmp"
        path.write_text("old writer")
        observed = path.stat()
        path.unlink()
        path.write_text("new writer")  # same name, different file
        assert CompilationCache._unlink_if_unchanged(path, observed) is False
        assert path.exists()
        assert path.read_text() == "new writer"

    def test_mtime_refresh_kept(self, tmp_path):
        # A stalled put() that resumes (or a clock-skewed writer syncing)
        # bumps the mtime in place; gc must treat that as "not stale
        # after all".
        path = tmp_path / ".x.tmp"
        path.write_text("stalled writer")
        old = time.time() - 10_000
        os.utime(path, (old, old))
        observed = path.stat()
        os.utime(path, None)  # writer touches the file again
        assert CompilationCache._unlink_if_unchanged(path, observed) is False
        assert path.exists()

    def test_vanished_file_not_counted(self, tmp_path):
        path = tmp_path / ".x.tmp"
        path.write_text("x")
        observed = path.stat()
        path.unlink()  # writer completed: temp renamed onto its entry
        assert CompilationCache._unlink_if_unchanged(path, observed) is False


class TestGcRace:
    def test_temp_replaced_mid_gc_not_counted(self, tmp_path, monkeypatch):
        """Simulate the writer completing between gc's stat and unlink."""
        cache = CompilationCache(tmp_path)
        temp = _make_temp(tmp_path, age_s=cache_module._STALE_TEMP_S + 10)

        real = CompilationCache._unlink_if_unchanged

        def racing(path, observed):
            # The writer finishes its put() right before removal: the
            # temp is replaced onto the entry path (unlink + fresh file
            # models the same name-level effect).
            if path == temp and path.exists():
                path.unlink()
                path.write_text("a brand-new writer's temp")
            return real(path, observed)

        monkeypatch.setattr(
            CompilationCache, "_unlink_if_unchanged", staticmethod(racing)
        )
        report = cache.gc()
        assert report.temp_files_removed == 0
        assert temp.exists()
        assert temp.read_text() == "a brand-new writer's temp"
