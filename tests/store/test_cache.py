"""Tests for the persistent compilation cache: hit, miss, warm-start,
corrupted-entry handling, and garbage collection."""

import json

import pytest

from repro.core import (
    METHOD_INDEPENDENT,
    CompilationResult,
    FermihedralCompiler,
    FermihedralConfig,
)
from repro.core.descent import DescentResult
from repro.encodings import jordan_wigner
from repro.store import CompilationCache


def _fake_unproved_result(num_modes: int = 2) -> CompilationResult:
    """A valid but suboptimal, unproved result (plain Jordan-Wigner)."""
    encoding = jordan_wigner(num_modes)
    descent = DescentResult(
        encoding=encoding,
        weight=encoding.total_majorana_weight,
        proved_optimal=False,
        steps=[],
    )
    return CompilationResult(
        encoding=encoding,
        method="full-sat/independent",
        weight=encoding.total_majorana_weight,
        proved_optimal=False,
        descent=descent,
    )


class TestGetPut:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = CompilationCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_put_then_get_round_trips(self, tmp_path):
        cache = CompilationCache(tmp_path)
        result = _fake_unproved_result()
        key = "ab" + "0" * 62
        path = cache.put(key, result)
        assert path.exists()
        assert path.parent.name == "ab"
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.weight == result.weight
        assert loaded.proved_optimal is False
        assert [s.label() for s in loaded.encoding.strings] == [
            s.label() for s in result.encoding.strings
        ]
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_contains_and_len(self, tmp_path):
        cache = CompilationCache(tmp_path)
        key = "cd" + "1" * 62
        assert key not in cache
        assert len(cache) == 0
        cache.put(key, _fake_unproved_result())
        assert key in cache
        assert len(cache) == 1


class TestCorruptedEntries:
    def test_garbage_json_is_a_counted_miss(self, tmp_path):
        cache = CompilationCache(tmp_path)
        key = "ef" + "2" * 62
        cache.put(key, _fake_unproved_result())
        cache.path_for(key).write_text("{not json at all")
        assert cache.get(key) is None
        assert cache.stats.corrupted == 1
        assert cache.stats.misses == 1

    def test_key_mismatch_is_corrupted(self, tmp_path):
        cache = CompilationCache(tmp_path)
        key = "0a" + "3" * 62
        other = "0a" + "4" * 62
        cache.put(key, _fake_unproved_result())
        # copy the entry under a different key without rewriting its body
        cache.path_for(other).write_text(cache.path_for(key).read_text())
        assert cache.get(other) is None
        assert cache.stats.corrupted == 1

    def test_wrong_entry_version_is_corrupted(self, tmp_path):
        cache = CompilationCache(tmp_path)
        key = "1b" + "5" * 62
        cache.put(key, _fake_unproved_result())
        data = json.loads(cache.path_for(key).read_text())
        data["entry_format_version"] = 99
        cache.path_for(key).write_text(json.dumps(data))
        assert cache.get(key) is None
        assert cache.stats.corrupted == 1

    def test_entries_flags_corrupted(self, tmp_path):
        cache = CompilationCache(tmp_path)
        good = "2c" + "6" * 62
        bad = "2c" + "7" * 62
        cache.put(good, _fake_unproved_result())
        cache.path_for(bad).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(bad).write_text("garbage")
        infos = {info.key: info for info in cache.entries()}
        assert not infos[good].corrupted
        assert infos[bad].corrupted


class TestGc:
    def _populate(self, cache):
        proved = _fake_unproved_result()
        proved.proved_optimal = True
        cache.put("aa" + "0" * 62, proved)
        cache.put("bb" + "0" * 62, _fake_unproved_result())
        cache.path_for("cc" + "0" * 62).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("cc" + "0" * 62).write_text("junk")

    def test_gc_removes_corrupted_only_by_default(self, tmp_path):
        cache = CompilationCache(tmp_path)
        self._populate(cache)
        report = cache.gc()
        assert [info.key[:2] for info in report.removed] == ["cc"]
        assert report.kept == 2
        assert not cache.path_for("cc" + "0" * 62).exists()

    def test_gc_drop_unproved(self, tmp_path):
        cache = CompilationCache(tmp_path)
        self._populate(cache)
        report = cache.gc(drop_unproved=True)
        removed = {info.key[:2] for info in report.removed}
        assert removed == {"bb", "cc"}
        assert cache.path_for("aa" + "0" * 62).exists()

    def test_gc_drop_unproved_keeps_annealing_entries(self, tmp_path):
        """sat+annealing results are unproved by nature but serve as full
        cache hits — drop_unproved must not evict them."""
        cache = CompilationCache(tmp_path)
        annealed = _fake_unproved_result()
        annealed.method = "sat+annealing"
        cache.put("dd" + "0" * 62, annealed)
        cache.put("ee" + "0" * 62, _fake_unproved_result())
        report = cache.gc(drop_unproved=True)
        assert [info.key[:2] for info in report.removed] == ["ee"]
        assert cache.path_for("dd" + "0" * 62).exists()

    def test_gc_max_entries_keeps_newest(self, tmp_path):
        import os

        cache = CompilationCache(tmp_path)
        old = "aa" + "0" * 62
        new = "bb" + "0" * 62
        cache.put(old, _fake_unproved_result())
        cache.put(new, _fake_unproved_result())
        # rewrite created_at so ordering does not depend on clock resolution
        for key, created in ((old, 100.0), (new, 200.0)):
            data = json.loads(cache.path_for(key).read_text())
            data["created_at"] = created
            cache.path_for(key).write_text(json.dumps(data))
        report = cache.gc(max_entries=1)
        assert [info.key for info in report.removed] == [old]
        assert cache.path_for(new).exists()
        assert not cache.path_for(old).exists()
        assert os.path.isdir(cache.root)

    def test_gc_dry_run_deletes_nothing(self, tmp_path):
        cache = CompilationCache(tmp_path)
        self._populate(cache)
        report = cache.gc(drop_unproved=True, dry_run=True)
        assert len(report.removed) == 2
        assert len(list(cache._entry_paths())) == 3

    def test_gc_catches_deep_corruption_entries_misses(self, tmp_path):
        """Corruption buried in the result payload is invisible to the
        cheap entries() summary but must still be gc'd (and reasoned)."""
        cache = CompilationCache(tmp_path)
        key = "dd" + "8" * 62
        cache.put(key, _fake_unproved_result())
        data = json.loads(cache.path_for(key).read_text())
        data["result"]["result_format_version"] = 999
        cache.path_for(key).write_text(json.dumps(data))
        # shallow listing cannot see it...
        assert not [info for info in cache.entries() if info.corrupted]
        # ...but get() rejects it, and gc removes it
        assert cache.get(key) is None
        assert cache.stats.corrupted == 1
        report = cache.gc()
        assert [info.key for info in report.removed] == [key]
        assert report.reasons[key] == "corrupted"
        assert not cache.path_for(key).exists()

    def test_gc_reasons_label_each_eviction(self, tmp_path):
        cache = CompilationCache(tmp_path)
        self._populate(cache)
        old = "dd" + "9" * 62
        cache.put(old, _fake_unproved_result())
        data = json.loads(cache.path_for(old).read_text())
        data["created_at"] = 1.0
        cache.path_for(old).write_text(json.dumps(data))
        report = cache.gc(drop_unproved=True, max_entries=0)
        reasons = {key[:2]: reason for key, reason in report.reasons.items()}
        assert reasons == {"cc": "corrupted", "bb": "unproved",
                           "dd": "unproved", "aa": "over-limit"}

    def test_gc_removes_stale_temp_files_only(self, tmp_path):
        import os

        cache = CompilationCache(tmp_path)
        cache.put("aa" + "0" * 62, _fake_unproved_result())
        shard = cache.root / "aa"
        stale = shard / ".deadbeef.123.tmp"
        fresh = shard / ".cafecafe.456.tmp"
        stale.write_text("{half-written")
        fresh.write_text("{half-written")
        os.utime(stale, (0, 0))  # ancient: a crashed writer's orphan
        report = cache.gc()
        assert report.temp_files_removed == 1
        assert not stale.exists()
        assert fresh.exists()  # could belong to a live writer

    def test_entries_skips_files_vanishing_mid_listing(self, tmp_path, monkeypatch):
        cache = CompilationCache(tmp_path)
        cache.put("aa" + "0" * 62, _fake_unproved_result())
        cache.put("bb" + "0" * 62, _fake_unproved_result())
        gone = cache.path_for("aa" + "0" * 62)

        real_paths = list(cache._entry_paths())
        gone.unlink()
        monkeypatch.setattr(cache, "_entry_paths", lambda: iter(real_paths))
        infos = cache.entries()
        assert [info.key[:2] for info in infos] == ["bb"]


class TestCompilerIntegration:
    def test_second_compile_is_a_hit_with_zero_sat_calls(
        self, tmp_path, fast_config, monkeypatch
    ):
        """The acceptance criterion: a cache-enabled compiler performs no
        SAT work when re-compiling an already-proved job."""
        cache = CompilationCache(tmp_path)
        first = FermihedralCompiler(2, fast_config, cache=cache)
        result1 = first.hamiltonian_independent()
        assert first.last_cache_status == "miss"
        assert result1.proved_optimal

        def _no_sat_allowed(*args, **kwargs):
            raise AssertionError("descend() ran on what should be a cache hit")

        monkeypatch.setattr("repro.core.pipeline.descend", _no_sat_allowed)
        second = FermihedralCompiler(2, fast_config, cache=cache)
        result2 = second.hamiltonian_independent()
        assert second.last_cache_status == "hit"
        assert cache.stats.hits == 1
        # the cached descent trace is preserved verbatim
        assert result2.descent.sat_calls == result1.descent.sat_calls
        assert [step.bound for step in result2.descent.steps] == [
            step.bound for step in result1.descent.steps
        ]
        assert result2.weight == result1.weight
        assert [s.label() for s in result2.encoding.strings] == [
            s.label() for s in result1.encoding.strings
        ]

    def test_unproved_entry_warm_starts_the_descent(
        self, tmp_path, fast_config, monkeypatch
    ):
        """A cached non-optimal result must seed descend()'s starting bound
        (its encoding becomes the baseline) instead of being returned."""
        cache = CompilationCache(tmp_path)
        compiler = FermihedralCompiler(2, fast_config, cache=cache)
        key = cache.key_for(
            num_modes=2, config=fast_config, method=METHOD_INDEPENDENT
        )
        cache.put(key, _fake_unproved_result(2))

        seen_baselines = []
        import repro.core.pipeline as pipeline_module

        real_descend = pipeline_module.descend

        def _spy(num_modes, config=None, hamiltonian=None, baseline=None,
                 telemetry=None, checkpoint=None):
            seen_baselines.append(baseline)
            return real_descend(
                num_modes, config=config, hamiltonian=hamiltonian, baseline=baseline
            )

        monkeypatch.setattr("repro.core.pipeline.descend", _spy)
        result = compiler.hamiltonian_independent()
        assert compiler.last_cache_status == "warm-start"
        assert cache.stats.warm_starts == 1
        assert len(seen_baselines) == 1
        jw_labels = [s.label() for s in jordan_wigner(2).strings]
        assert [s.label() for s in seen_baselines[0].strings] == jw_labels
        # the improved result replaced the unproved entry
        assert result.proved_optimal
        stored = cache.get(key)
        assert stored.proved_optimal
        assert stored.weight == result.weight

    def test_corrupted_entry_recompiles_and_heals(self, tmp_path, fast_config):
        cache = CompilationCache(tmp_path)
        compiler = FermihedralCompiler(2, fast_config, cache=cache)
        result1 = compiler.hamiltonian_independent()
        key = cache.key_for(
            num_modes=2, config=fast_config, method=METHOD_INDEPENDENT
        )
        cache.path_for(key).write_text("{broken")
        again = FermihedralCompiler(2, fast_config, cache=cache)
        result2 = again.hamiltonian_independent()
        assert again.last_cache_status == "miss"
        assert cache.stats.corrupted == 1
        assert result2.weight == result1.weight
        # entry was rewritten and reads cleanly now
        assert cache.get(key) is not None

    def test_cacheless_compiler_reports_disabled(self, fast_config):
        compiler = FermihedralCompiler(2, fast_config)
        compiler.hamiltonian_independent()
        assert compiler.last_cache_status == "disabled"

    def test_compile_method_validation(self, fast_config):
        from repro.fermion import hubbard_chain

        compiler = FermihedralCompiler(2, fast_config)
        with pytest.raises(ValueError):
            compiler.compile(method="nope")
        with pytest.raises(ValueError):
            compiler.compile(method="full-sat")  # needs a Hamiltonian
        with pytest.raises(ValueError):
            compiler.compile(
                method="independent", hamiltonian=hubbard_chain(2)
            )
