"""Metrics registry: families, labels, exposition format, delta relay."""

import pytest

from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry.metrics import DEFAULT_LATENCY_BUCKETS


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        counter.inc()
        counter.inc(4)
        assert counter.labels().value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.labels().value == 12


class TestHistograms:
    def test_observe_fills_buckets_and_sum(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.bucket_counts == [1, 2]  # 5.0 only lands in +Inf
        assert child.count == 4
        assert child.sum == pytest.approx(6.05)

    def test_default_buckets_are_latency_shaped(self):
        histogram = MetricsRegistry().histogram("latency_seconds")
        assert histogram.buckets == DEFAULT_LATENCY_BUCKETS


class TestLabels:
    def test_label_combinations_are_distinct_children(self):
        counter = MetricsRegistry().counter("requests_total")
        counter.labels(outcome="hit").inc(2)
        counter.labels(outcome="miss").inc()
        assert counter.labels(outcome="hit").value == 2
        assert counter.labels(outcome="miss").value == 1

    def test_family_level_ops_hit_the_implicit_child(self):
        counter = MetricsRegistry().counter("requests_total")
        counter.inc()
        assert counter.labels().value == 1


class TestRender:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "cache hits").labels(tier="l1").inc(3)
        text = registry.render()
        assert "# HELP hits_total cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{tier="l1"} 3' in text

    def test_histogram_exposition_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x").labels(path='a"b\\c').inc()
        assert 'path="a\\"b\\\\c"' in registry.render()

    def test_collect_hooks_run_at_render_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        registry.add_collect_hook(lambda: gauge.set(7))
        assert "depth 7" in registry.render()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""


class TestDeltaRelay:
    def test_counters_drain_exactly_once(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc(5)
        first = registry.drain_deltas()
        assert [d["value"] for d in first if d["kind"] == "counter"] == [5]
        # Nothing new accumulated: a second drain ships no counter delta.
        assert not [d for d in registry.drain_deltas()
                    if d["kind"] == "counter"]
        registry.counter("hits_total").inc(2)
        third = registry.drain_deltas()
        assert [d["value"] for d in third if d["kind"] == "counter"] == [2]

    def test_histograms_drain_exactly_once(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        first = [d for d in registry.drain_deltas() if d["kind"] == "histogram"]
        assert first[0]["count"] == 1
        assert not [d for d in registry.drain_deltas()
                    if d["kind"] == "histogram"]

    def test_merge_reproduces_totals_without_double_count(self):
        worker = MetricsRegistry()
        worker.counter("hits_total").inc(3)
        worker.histogram("lat", buckets=(1.0,)).observe(0.5)
        worker.gauge("depth").set(4)

        parent = MetricsRegistry()
        parent.merge_deltas(worker.drain_deltas())
        parent.merge_deltas(worker.drain_deltas())  # empty second drain
        worker.counter("hits_total").inc(2)
        parent.merge_deltas(worker.drain_deltas())

        assert parent.counter("hits_total").labels().value == 5
        assert parent.histogram("lat").labels().count == 1
        assert parent.gauge("depth").labels().value == 4

    def test_merge_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_deltas([{"kind": "summary", "name": "x"}])


class TestTelemetryFacade:
    def test_auto_constructs_registry_and_tracer(self):
        telemetry = Telemetry()
        assert telemetry.metrics is not None
        assert telemetry.tracer is not None

    def test_relay_round_trip(self):
        worker = Telemetry()
        worker.counter("hits_total").inc(2)
        with worker.span("work"):
            pass
        payload = worker.drain_relay()

        parent = Telemetry()
        parent.absorb_relay(payload, extra={"job": "j1"})
        assert parent.counter("hits_total").labels().value == 2
        events = parent.tracer.events()
        assert [e["name"] for e in events] == ["work"]
        assert events[0]["attrs"]["job"] == "j1"

    def test_absorb_relay_tolerates_empty_payload(self):
        parent = Telemetry()
        parent.absorb_relay(None)
        parent.absorb_relay({})
        assert parent.tracer.events() == []


class TestHelpEscaping:
    def test_help_text_escapes_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("weird_total", "line one\nline two \\ slash").inc()
        text = registry.render()
        assert "# HELP weird_total line one\\nline two \\\\ slash" in text
        # Every line stays a single physical line.
        assert all(line.startswith(("#", "weird_total"))
                   for line in text.strip().splitlines())


class TestParseExposition:
    def test_round_trips_own_rendering(self):
        from repro.telemetry import parse_prometheus_text

        registry = MetricsRegistry()
        registry.counter(
            "jobs_total", 'with "quotes" and \\ and\nnewline'
        ).labels(state="a\nb").inc(3)
        registry.gauge("depth", "queue depth").set(7)
        histogram = registry.histogram("lat_seconds", "latency",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)

        families = parse_prometheus_text(registry.render())
        jobs = families["jobs_total"]
        assert jobs["kind"] == "counter"
        assert jobs["help"] == 'with "quotes" and \\ and\nnewline'
        (labels, value), = jobs["samples"]["jobs_total"]
        assert labels == {"state": "a\nb"} and value == 3.0
        assert families["depth"]["samples"]["depth"] == [({}, 7.0)]
        lat = families["lat_seconds"]
        assert lat["kind"] == "histogram"
        buckets = dict(
            (labels["le"], value)
            for labels, value in lat["samples"]["lat_seconds_bucket"]
        )
        assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 2.0}
        assert lat["samples"]["lat_seconds_count"] == [({}, 2.0)]

    def test_malformed_lines_are_skipped(self):
        from repro.telemetry import parse_prometheus_text

        families = parse_prometheus_text(
            "# TYPE good counter\n"
            "good 1\n"
            "torn{state=\"half\n"
            "not-a-number nan-ish oops extra\n"
        )
        assert families["good"]["samples"]["good"] == [({}, 1.0)]
        assert "torn" not in families


class TestHistogramQuantile:
    def test_interpolates_within_the_winning_bucket(self):
        from repro.telemetry import histogram_quantile

        # 10 observations <= 1.0, 10 more in (1.0, 2.0].
        buckets = [("1.0", 10), ("2.0", 20), ("+Inf", 20)]
        assert histogram_quantile(0.5, buckets) == pytest.approx(1.0)
        assert histogram_quantile(0.75, buckets) == pytest.approx(1.5)
        assert histogram_quantile(1.0, buckets) == pytest.approx(2.0)

    def test_tail_clamps_to_last_finite_bound(self):
        from repro.telemetry import histogram_quantile

        buckets = [("1.0", 5), ("+Inf", 10)]  # half the mass is unbounded
        assert histogram_quantile(0.99, buckets) == pytest.approx(1.0)

    def test_empty_histogram_is_none_and_bad_q_raises(self):
        from repro.telemetry import histogram_quantile

        assert histogram_quantile(0.5, []) is None
        assert histogram_quantile(0.5, [("+Inf", 0)]) is None
        with pytest.raises(ValueError):
            histogram_quantile(1.5, [("1.0", 1)])

    def test_quantiles_of_a_live_registry_scrape(self):
        from repro.telemetry import histogram_quantile, parse_prometheus_text

        registry = MetricsRegistry()
        histogram = registry.histogram("s", "seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        families = parse_prometheus_text(registry.render())
        buckets = [
            (labels["le"], value)
            for labels, value in families["s"]["samples"]["s_bucket"]
        ]
        p50 = histogram_quantile(0.5, buckets)
        assert 0.0 < p50 <= 1.0
