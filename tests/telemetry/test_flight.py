"""Flight recorder: bounded breadcrumbs, dump assembly, chaos drills.

The recorder is the forensics half of the observability story: it rides
along with a job (as an explicit breadcrumb log and as a progress-bus
sink), and when the job dies its :meth:`dump` freezes everything a
post-mortem needs — last events, spans still open, a metrics snapshot,
and the traceback.  ``REPRO_CHAOS_FAIL`` exists so the whole failure
path can be drilled on demand.
"""

import pytest

from repro.core.config import FermihedralConfig
from repro.store import CompileJob
from repro.store.batch import CHAOS_ENV, run_compile_job
from repro.telemetry import FlightRecorder, ProgressBus, Telemetry
from repro.telemetry.flight import DEFAULT_MAX_EVENTS


class TestRecorder:
    def test_records_breadcrumbs_in_order(self):
        recorder = FlightRecorder()
        recorder.record("info", "job started", job="k1")
        recorder.record("error", "job failed", error="boom")
        events = recorder.events()
        assert [e["message"] for e in events] == ["job started", "job failed"]
        assert events[0]["job"] == "k1"
        assert events[1]["level"] == "error"

    def test_ring_is_bounded(self):
        recorder = FlightRecorder(max_events=3)
        for index in range(10):
            recorder.record("info", f"crumb {index}")
        messages = [e["message"] for e in recorder.events()]
        assert messages == ["crumb 7", "crumb 8", "crumb 9"]

    def test_default_bound_is_modest(self):
        # The recorder lives inside every job; its memory must be flat.
        assert DEFAULT_MAX_EVENTS <= 1024

    def test_watch_captures_bus_events(self):
        bus = ProgressBus()
        recorder = FlightRecorder()
        bus.add_sink(recorder.watch)
        bus.emit("rung", bound=15, conflicts=120)
        events = recorder.events()
        assert events and events[0]["bound"] == 15
        assert events[0]["level"] == "progress"


class TestDump:
    def test_dump_carries_traceback_and_metrics(self):
        telemetry = Telemetry()
        telemetry.counter("repro_test_total", "test counter").inc()
        recorder = FlightRecorder()
        recorder.record("info", "before the fall")
        try:
            raise RuntimeError("synthetic failure")
        except RuntimeError as error:
            dump = recorder.dump(telemetry, error=error)
        assert dump["captured_at"] > 0
        assert "RuntimeError: synthetic failure" in dump["error"]
        assert "Traceback" in dump["error"]
        assert [e["message"] for e in dump["events"]] == ["before the fall"]
        assert "repro_test_total" in dump["metrics"]
        assert isinstance(dump["open_spans"], list)

    def test_dump_includes_spans_still_open(self):
        telemetry = Telemetry()
        recorder = FlightRecorder()
        with telemetry.span("compile", job="k1"):
            dump = recorder.dump(telemetry)
        names = [span["name"] for span in dump["open_spans"]]
        assert "compile" in names

    def test_dump_without_telemetry_still_works(self):
        dump = FlightRecorder().dump(None, error="plain text reason")
        assert dump["error"] == "plain text reason"
        assert dump["metrics"] is None


class TestChaosInjection:
    def test_matching_label_fails_with_forensics(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "chaos")
        telemetry = Telemetry()
        job = CompileJob(method="independent", num_modes=2,
                         label="chaos-drill", config=FermihedralConfig())
        outcome = run_compile_job(job, FermihedralConfig(), None, "key-1",
                                  telemetry=telemetry)
        assert outcome.status == "error"
        assert "chaos fault injected" in outcome.error
        dump = outcome.forensics
        assert dump is not None and not dump.get("synthesized")
        messages = [e["message"] for e in dump["events"]]
        assert messages[0] == "job started"
        assert messages[-1] == "job failed"
        assert "chaos fault injected" in dump["error"]
        # The per-job recorder detaches afterwards: the shared handle is
        # clean and the bus has no lingering recorder sink.
        assert telemetry.flight is None

    def test_non_matching_label_is_untouched(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "chaos")
        job = CompileJob(method="independent", num_modes=2, label="healthy")
        outcome = run_compile_job(job, FermihedralConfig(), None, "key-2",
                                  telemetry=Telemetry())
        assert outcome.status == "compiled"
        assert outcome.forensics is None

    def test_chaos_off_by_default(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        job = CompileJob(method="independent", num_modes=2,
                         label="chaos-drill")
        outcome = run_compile_job(job, FermihedralConfig(), None, "key-3",
                                  telemetry=Telemetry())
        assert outcome.status == "compiled"
