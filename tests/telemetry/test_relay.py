"""Cross-process relay: worker spans arrive in the parent exactly once.

Two producers ship telemetry back across process boundaries — portfolio
workers (one ``portfolio.slice`` span per worker per logical round) and
``ProcessBatchExecutor`` children (a full ``compile`` span tree per job).
These tests pin the exactly-once and ordering contracts at portfolio
widths 1, 2 and 4.
"""

import itertools

import pytest

from repro.parallel.executor import ProcessBatchExecutor
from repro.parallel.portfolio import PortfolioSolver
from repro.sat import CnfFormula
from repro.store import CompileJob
from repro.telemetry import Telemetry


def _pigeonhole(pigeons: int, holes: int) -> CnfFormula:
    formula = CnfFormula()
    slot = {}
    for p in range(pigeons):
        for h in range(holes):
            slot[p, h] = formula.new_variable()
    for p in range(pigeons):
        formula.add_clause(slot[p, h] for h in range(holes))
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            formula.add_clause((-slot[p1, h], -slot[p2, h]))
    return formula


class TestPortfolioRelay:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_slice_spans_arrive_exactly_once_in_round_order(self, workers):
        # A small per-round budget on a real UNSAT instance forces the
        # race through several logical rounds.
        telemetry = Telemetry()
        formula = _pigeonhole(5, 4)
        with PortfolioSolver(formula, workers=workers, round_conflicts=20,
                             telemetry=telemetry) as portfolio:
            result = portfolio.solve()
        assert result.is_unsat

        # Solver counters reached the parent registry at every width.
        assert "repro_solver_conflicts_total" in telemetry.render_metrics()

        # Remapped ids stay unique after the merge (trivially so at
        # width 1, where no relay is involved).
        span_ids = [e["span_id"] for e in telemetry.tracer.events()]
        assert len(span_ids) == len(set(span_ids))

        if workers == 1:
            # The degenerate width runs the reference solver in-process:
            # the parent handle IS the solver's handle, so nothing is
            # relayed and no slice spans exist.
            assert not [e for e in telemetry.tracer.events()
                        if e["name"] == "portfolio.slice"]
            return

        slices = [event for event in telemetry.tracer.events()
                  if event["name"] == "portfolio.slice"]
        assert slices, "no slice spans relayed"

        # Exactly once: the parent tags each absorbed batch with its
        # (round, worker) coordinate, so a duplicate absorption would
        # collide here.
        coordinates = [(e["attrs"]["round"], e["attrs"]["worker"])
                       for e in slices]
        assert len(coordinates) == len(set(coordinates))
        assert all(0 <= worker < workers for _, worker in coordinates)

        # Ordered by logical round: rounds are absorbed as they finish,
        # so arrival order never goes backwards in round number.
        rounds = [r for r, _ in coordinates]
        assert rounds == sorted(rounds)

    def test_multiple_rounds_were_exercised(self):
        telemetry = Telemetry()
        formula = _pigeonhole(5, 4)
        with PortfolioSolver(formula, workers=2, round_conflicts=20,
                             telemetry=telemetry) as portfolio:
            portfolio.solve()
        rounds = {event["attrs"]["round"]
                  for event in telemetry.tracer.events()
                  if event["name"] == "portfolio.slice"}
        assert len(rounds) > 1, "budget too large to exercise the relay"

    def test_worker_metrics_merge_into_the_parent(self):
        telemetry = Telemetry()
        formula = _pigeonhole(5, 4)
        with PortfolioSolver(formula, workers=2, round_conflicts=20,
                             telemetry=telemetry) as portfolio:
            portfolio.solve()
        text = telemetry.render_metrics()
        assert "repro_solver_conflicts_total" in text


class TestExecutorRelay:
    def test_child_compile_spans_arrive_exactly_once_per_job(self):
        telemetry = Telemetry()
        executor = ProcessBatchExecutor(jobs=2, telemetry=telemetry)
        jobs = [
            ("k1", CompileJob(method="independent", num_modes=2, label="a")),
            ("k2", CompileJob(method="independent", num_modes=3, label="b")),
        ]
        outcomes = executor.run(jobs)
        assert all(o.status == "compiled" for o in outcomes.values())

        compiles = [event for event in telemetry.tracer.events()
                    if event["name"] == "compile"]
        # One compile span per job, each tagged with the job it came from.
        assert sorted(e["attrs"]["job"] for e in compiles) == ["a", "b"]

        span_ids = [e["span_id"] for e in telemetry.tracer.events()]
        assert len(span_ids) == len(set(span_ids))

        # The raw relay payload stays on the outcome (the service stores
        # it as the per-job trace) — absorbing it did not consume it.
        for outcome in outcomes.values():
            assert outcome.telemetry and outcome.telemetry["events"]

        text = telemetry.render_metrics()
        assert "repro_solver_conflicts_total" in text
        assert "repro_preprocess_runs_total" in text
