"""Progress streaming: bus semantics, snapshots, and live descent feeds.

The contracts pinned here are the ones the service endpoints lean on:
cursor resume (``dropped`` instead of silent gaps), per-job snapshot
folding, the heartbeat throttle, the ingest field-precedence rule that
keeps a worker's ``job`` tag intact across the relay, and — end to end —
that a real descent emits a monotonic heartbeat stream at every
portfolio width.
"""

import itertools
import threading

import pytest

from repro.core.config import FermihedralConfig, SolverBudget
from repro.core.pipeline import solve_hamiltonian_independent
from repro.parallel.executor import ProcessBatchExecutor
from repro.sat import CdclSolver, CnfFormula
from repro.store import CompileJob
from repro.telemetry import (
    FileSnapshotSink,
    ProgressBus,
    RungEtaEstimator,
    Telemetry,
    read_snapshot,
)


def _pigeonhole(pigeons: int, holes: int) -> CnfFormula:
    formula = CnfFormula()
    slot = {}
    for p in range(pigeons):
        for h in range(holes):
            slot[p, h] = formula.new_variable()
    for p in range(pigeons):
        formula.add_clause(slot[p, h] for h in range(holes))
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            formula.add_clause((-slot[p1, h], -slot[p2, h]))
    return formula


class TestCursorFeed:
    def test_seqs_increase_and_since_resumes(self):
        bus = ProgressBus()
        for index in range(5):
            bus.emit("tick", index=index)
        batch = bus.since(0)
        assert [e["seq"] for e in batch["events"]] == [1, 2, 3, 4, 5]
        assert batch["next"] == 5 and not batch["dropped"]
        assert bus.since(5)["events"] == []
        resumed = bus.since(3)
        assert [e["index"] for e in resumed["events"]] == [3, 4]

    def test_ring_eviction_reports_dropped(self):
        bus = ProgressBus(max_events=4)
        for index in range(10):
            bus.emit("tick", index=index)
        batch = bus.since(0)
        assert batch["dropped"]
        # The reader resumes from the oldest still buffered, no gap lies.
        assert [e["seq"] for e in batch["events"]] == [7, 8, 9, 10]
        assert batch["next"] == 10
        # A reader already past the evicted range is not warned.
        assert not bus.since(8)["dropped"]

    def test_limit_caps_the_batch(self):
        bus = ProgressBus()
        for index in range(8):
            bus.emit("tick")
        batch = bus.since(0, limit=3)
        assert len(batch["events"]) == 3
        assert batch["next"] == 3  # resume cursor points at the cap

    def test_wait_since_returns_on_new_event(self):
        bus = ProgressBus()
        release = threading.Timer(0.05, lambda: bus.emit("late"))
        release.start()
        try:
            batch = bus.wait_since(0, timeout=5.0)
        finally:
            release.cancel()
        assert [e["kind"] for e in batch["events"]] == ["late"]

    def test_wait_since_times_out_empty(self):
        batch = ProgressBus().wait_since(0, timeout=0.01)
        assert batch["events"] == [] and not batch["dropped"]


class TestContextAndHeartbeat:
    def test_context_fields_attach_and_nest(self):
        bus = ProgressBus()
        with bus.context(job="j1", bound=15):
            with bus.context(bound=14, engine="incremental"):
                bus.emit("rung")
            bus.emit("outer")
        event, outer = bus.since(0)["events"]
        assert (event["job"], event["bound"], event["engine"]) == \
            ("j1", 14, "incremental")
        assert outer["bound"] == 15 and "engine" not in outer

    def test_explicit_fields_beat_context(self):
        bus = ProgressBus()
        with bus.context(engine="incremental"):
            bus.emit("rung", engine="portfolio")
        assert bus.since(0)["events"][0]["engine"] == "portfolio"

    def test_heartbeat_throttles_per_thread(self):
        bus = ProgressBus(heartbeat_interval_s=60.0)
        assert bus.heartbeat(conflicts=1) is not None  # first always emits
        assert bus.heartbeat(conflicts=2) is None      # inside the window
        assert len(bus.since(0)["events"]) == 1

    def test_heartbeat_derives_eta_from_expected_conflicts(self):
        bus = ProgressBus(heartbeat_interval_s=0.0)
        with bus.context(expected_conflicts=1000):
            event = bus.heartbeat(conflicts=400, conflicts_per_s=100.0)
        assert event["eta_s"] == pytest.approx(6.0)
        assert "expected_conflicts" not in event  # estimate, not payload

    def test_heartbeat_without_rate_has_no_eta(self):
        bus = ProgressBus(heartbeat_interval_s=0.0)
        with bus.context(expected_conflicts=1000):
            event = bus.heartbeat(conflicts=400)
        assert "eta_s" not in event


class TestSnapshotsAndSinks:
    def test_job_events_fold_into_snapshots(self):
        bus = ProgressBus()
        bus.emit("job", job="a", state="running")
        bus.emit("heartbeat", job="a", conflicts=10)
        bus.emit("heartbeat", job="a", conflicts=25)
        snapshot = bus.snapshot("a")
        assert snapshot["conflicts"] == 25
        assert snapshot["state"] == "running"  # older fields persist
        assert snapshot["last_kind"] == "heartbeat"
        bus.forget("a")
        assert bus.snapshot("a") is None

    def test_snapshot_registry_is_bounded(self):
        bus = ProgressBus(max_jobs=2)
        for job in ("a", "b", "c"):
            bus.emit("job", job=job)
        assert bus.snapshot("a") is None  # oldest evicted
        assert set(bus.snapshots()) == {"b", "c"}

    def test_sinks_see_events_and_failures_are_swallowed(self):
        bus = ProgressBus()
        seen = []

        def broken(event):
            raise RuntimeError("sink bug")

        bus.add_sink(broken)
        bus.add_sink(seen.append)
        bus.emit("tick", index=1)
        bus.remove_sink(seen.append)
        bus.emit("tick", index=2)
        assert [e["index"] for e in seen] == [1]


class TestRelay:
    def test_drain_then_ingest_resequences_in_order(self):
        worker, parent = ProgressBus(), ProgressBus()
        parent.emit("local")
        with worker.context(job="k1"):
            worker.emit("descent", modes=4)
            worker.emit("rung", bound=15)
        payload = worker.drain()
        assert worker.since(0)["events"] == []  # drained exactly once
        parent.ingest(payload)
        kinds = [e["kind"] for e in parent.since(0)["events"]]
        assert kinds == ["local", "descent", "rung"]
        assert [e["seq"] for e in parent.since(0)["events"]] == [1, 2, 3]

    def test_event_fields_beat_ingest_extra(self):
        # The executor tags relayed events with the display label, but a
        # worker's own job key (the registry key) must survive.
        worker, parent = ProgressBus(), ProgressBus()
        with worker.context(job="fingerprint-key"):
            worker.emit("rung", bound=12)
        parent.ingest(worker.drain(), extra={"job": "display", "round": 3})
        event = parent.since(0)["events"][0]
        assert event["job"] == "fingerprint-key"
        assert event["round"] == 3  # parent-only knowledge still lands
        assert parent.snapshot("fingerprint-key")["bound"] == 12


class TestFileSnapshotSink:
    def test_snapshot_file_roundtrip(self, tmp_path):
        path = tmp_path / "job.json"
        sink = FileSnapshotSink(path, min_interval_s=0.0)
        sink({"seq": 1, "ts": 1.0, "kind": "descent", "modes": 4})
        sink({"seq": 2, "ts": 2.0, "kind": "heartbeat", "conflicts": 10})
        data = read_snapshot(path)
        assert data["modes"] == 4 and data["conflicts"] == 10
        assert data["last_kind"] == "heartbeat"

    def test_heartbeats_throttle_but_other_kinds_flush(self, tmp_path):
        path = tmp_path / "job.json"
        sink = FileSnapshotSink(path, min_interval_s=60.0)
        sink({"kind": "heartbeat", "conflicts": 1})
        sink({"kind": "heartbeat", "conflicts": 2})
        assert read_snapshot(path)["conflicts"] == 1  # second throttled
        sink({"kind": "rung", "conflicts": 3})        # always flushes
        assert read_snapshot(path)["conflicts"] == 3

    def test_read_snapshot_tolerates_absence_and_junk(self, tmp_path):
        assert read_snapshot(tmp_path / "missing.json") is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"half":')
        assert read_snapshot(torn) is None
        not_dict = tmp_path / "list.json"
        not_dict.write_text("[1, 2]")
        assert read_snapshot(not_dict) is None


class TestRungEtaEstimator:
    def test_no_estimate_until_first_rung(self):
        eta = RungEtaEstimator()
        assert eta.expected_conflicts() is None
        eta.observe(100)
        assert eta.expected_conflicts() == 100.0

    def test_ema_tracks_recent_rungs(self):
        eta = RungEtaEstimator(smoothing=0.5)
        eta.observe(100)
        eta.observe(200)
        assert eta.expected_conflicts() == pytest.approx(150.0)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            RungEtaEstimator(smoothing=0.0)


class TestSolverHeartbeats:
    def test_restart_boundaries_heartbeat_with_rate(self):
        telemetry = Telemetry(progress=ProgressBus(heartbeat_interval_s=0.0))
        # A small restart base guarantees the search crosses several
        # restart boundaries — the only hot-loop touch point — before
        # the instance closes.
        solver = CdclSolver(
            _pigeonhole(5, 4), restart_base=8, telemetry=telemetry)
        result = solver.solve()
        assert result.is_unsat
        assert result.stats.restarts > 0
        beats = [e for e in telemetry.progress.since(0, limit=5000)["events"]
                 if e["kind"] == "heartbeat"]
        assert beats, "an UNSAT instance with restarts must heartbeat"
        conflicts = [e["conflicts"] for e in beats]
        assert conflicts == sorted(conflicts)  # monotone within one solve
        assert all(e["conflicts_per_s"] >= 0 for e in beats)
        assert all(e["elapsed_s"] >= 0 for e in beats)


class TestDescentProgress:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_heartbeats_monotonic_at_every_portfolio_width(self, workers):
        telemetry = Telemetry(progress=ProgressBus(heartbeat_interval_s=0.0))
        config = FermihedralConfig(
            portfolio=workers,
            budget=SolverBudget(time_budget_s=60.0),
        )
        result = solve_hamiltonian_independent(
            3, config=config, telemetry=telemetry)
        assert result.weight == 11

        events = telemetry.progress.since(0, limit=5000)["events"]
        kinds = {e["kind"] for e in events}
        assert "descent" in kinds and "rung" in kinds

        # The cursor feed is strictly monotonic however many workers fed it.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(seqs) == len(set(seqs))

        descent = next(e for e in events if e["kind"] == "descent")
        assert descent["modes"] == 3

        rungs = [e for e in events if e["kind"] == "rung"]
        assert all("bound" in e and "status" in e for e in rungs)
        # The ladder only ever tightens: bounds are strictly decreasing.
        bounds = [e["bound"] for e in rungs]
        assert bounds == sorted(bounds, reverse=True)

        for beat in (e for e in events if e["kind"] == "heartbeat"):
            if beat.get("bound") is not None:
                assert beat["bound"] >= min(bounds)
            assert beat["conflicts"] >= 0
            assert beat["elapsed_s"] >= 0


class TestExecutorProgressRelay:
    def test_children_relay_progress_exactly_once(self, tmp_path):
        telemetry = Telemetry()
        executor = ProcessBatchExecutor(
            jobs=2, telemetry=telemetry, progress_dir=str(tmp_path))
        work = [
            ("key-a", CompileJob(method="independent", num_modes=2, label="a")),
            ("key-b", CompileJob(method="independent", num_modes=3, label="b")),
        ]
        outcomes = executor.run(work)
        assert {o.status for o in outcomes.values()} == {"compiled"}

        events = telemetry.progress.since(0, limit=5000)["events"]
        descents = [e for e in events if e["kind"] == "descent"]
        assert len(descents) == 2  # one per job, never duplicated

        # Worker-side job keys survive the relay (ingest precedence) and
        # fold into per-job snapshots in the parent.
        for key in ("key-a", "key-b"):
            snapshot = telemetry.progress.snapshot(key)
            assert snapshot is not None
            assert snapshot["job"] == key

        # The live snapshot files are cleaned up once the jobs resolve.
        assert list(tmp_path.glob("*.json")) == []
