"""Span tracer: nesting, contexts, ingest remapping, JSONL, rendering."""

import pytest

from repro.telemetry import Tracer, read_jsonl, render_tree, write_jsonl


class TestSpans:
    def test_events_emit_on_close_with_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = tracer.events()
        # Spans close inside-out, so the inner span records first.
        inner, outer = events
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["duration_s"] >= inner["duration_s"] >= 0

    def test_yielded_attrs_are_mutable_until_close(self):
        tracer = Tracer()
        with tracer.span("solve", bound=36) as attrs:
            attrs["status"] = "UNSAT"
        (event,) = tracer.events()
        assert event["attrs"] == {"bound": 36, "status": "UNSAT"}

    def test_context_attrs_apply_to_every_span_inside(self):
        tracer = Tracer()
        with tracer.context(job="j1"):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        by_name = {e["name"]: e for e in tracer.events()}
        assert by_name["a"]["attrs"] == {"job": "j1"}
        assert by_name["b"]["attrs"] == {}

    def test_span_attrs_override_context(self):
        tracer = Tracer()
        with tracer.context(engine="cold"):
            with tracer.span("rung", engine="portfolio"):
                pass
        (event,) = tracer.events()
        assert event["attrs"]["engine"] == "portfolio"

    def test_event_cap_bounds_memory(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.events()) == 2


class TestDrainAndIngest:
    def test_drain_empties_the_buffer(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.events() == []

    def test_ingest_remaps_ids_and_preserves_links(self):
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        batch = worker.drain()

        parent = Tracer()
        with parent.span("local"):
            pass
        parent.ingest(batch)
        by_name = {e["name"]: e for e in parent.events()}
        ids = [e["span_id"] for e in parent.events()]
        assert len(set(ids)) == 3  # no collision with the local span
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None

    def test_ingest_orphans_become_roots(self):
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
            worker.drain()  # inner already shipped; outer closes later
        leftover = worker.drain()
        parent = Tracer()
        parent.ingest(leftover)
        (event,) = parent.events()
        assert event["name"] == "outer" and event["parent_id"] is None

    def test_ingest_extra_attrs_tag_every_event(self):
        worker = Tracer()
        with worker.span("slice", worker_local="yes"):
            pass
        parent = Tracer()
        parent.ingest(worker.drain(), extra={"round": 3, "worker": 1})
        (event,) = parent.events()
        assert event["attrs"] == {"worker_local": "yes", "round": 3,
                                  "worker": 1}


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("compile", modes=4):
            with tracer.span("descent"):
                pass
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer.events(), path)
        assert read_jsonl(path) == tracer.events()


class TestRenderTree:
    def test_tree_indents_children_and_shows_attrs(self):
        tracer = Tracer()
        with tracer.span("compile", modes=4):
            with tracer.span("descent.rung", bound=16):
                pass
        text = render_tree(tracer.events())
        lines = text.splitlines()
        assert lines[0].startswith("compile")
        assert "[modes=4]" in lines[0]
        assert lines[1].startswith("  descent.rung")
        assert "bound=16" in lines[1]

    def test_empty_trace_renders_placeholder(self):
        assert render_tree([]) == "(empty trace)"


class TestTolerantRead:
    def test_malformed_lines_are_skipped(self, tmp_path):
        tracer = Tracer()
        with tracer.span("compile"):
            pass
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer.events(), path)
        with open(path, "a") as handle:
            handle.write('{"torn": \n')      # crashed writer's tail
            handle.write("[1, 2, 3]\n")      # valid JSON, not a span
        events = read_jsonl(path)
        assert [e["name"] for e in events] == ["compile"]


class TestOrphanSpans:
    def test_orphan_spans_render_as_marked_roots(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("descent.rung", bound=16):
                pass
        events = tracer.events()
        # Simulate a truncated file: the root span's line is lost.
        orphaned = [e for e in events if e["name"] != "compile"]
        text = render_tree(orphaned)
        assert "descent.rung" in text
        assert "(orphan: parent span missing)" in text

    def test_intact_trees_carry_no_marker(self):
        tracer = Tracer()
        with tracer.span("compile"):
            pass
        assert "orphan" not in render_tree(tracer.events())


class TestOpenSpans:
    def test_open_spans_visible_until_close(self):
        tracer = Tracer()
        with tracer.span("compile", modes=4):
            with tracer.span("descent.rung", bound=16):
                open_now = tracer.open_spans()
        assert [s["name"] for s in open_now] == ["compile", "descent.rung"]
        assert open_now[0]["age_s"] >= 0
        assert open_now[1]["attrs"]["bound"] == 16
        assert open_now[1]["parent_id"] == open_now[0]["span_id"]
        assert tracer.open_spans() == []  # all closed on exit

    def test_open_spans_survive_an_exception_unwind(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("compile"):
                raise RuntimeError("boom")
        assert tracer.open_spans() == []  # finally always unregisters
