"""Tests for shot-based energy estimation with measurement grouping."""

import numpy as np
import pytest

from repro.encodings import jordan_wigner
from repro.fermion import h2_hamiltonian
from repro.paulis import PauliString, PauliSum
from repro.simulator import (
    diagonalize,
    expectation_pauli_sum,
    group_qubit_wise_commuting,
    measure_energy,
    measured_energy_statistics,
    qubit_wise_commuting,
    zero_state,
)


class TestQubitWiseCommuting:
    def test_same_string(self):
        string = PauliString.from_label("XZ")
        assert qubit_wise_commuting(string, string)

    def test_identity_is_compatible_with_all(self):
        identity = PauliString.identity(2)
        assert qubit_wise_commuting(identity, PauliString.from_label("XY"))

    def test_conflicting_position(self):
        assert not qubit_wise_commuting(
            PauliString.from_label("XZ"), PauliString.from_label("XX")
        )

    def test_disjoint_supports_compatible(self):
        assert qubit_wise_commuting(
            PauliString.from_label("XI"), PauliString.from_label("IZ")
        )

    def test_commuting_but_not_qubit_wise(self):
        """XX and YY commute globally but not qubit-wise."""
        assert PauliString.from_label("XX").commutes_with(PauliString.from_label("YY"))
        assert not qubit_wise_commuting(
            PauliString.from_label("XX"), PauliString.from_label("YY")
        )


class TestGrouping:
    def test_groups_cover_all_strings(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian()).without_identity()
        groups = group_qubit_wise_commuting(operator)
        grouped = [s for group in groups for s in group]
        assert sorted(s.label() for s in grouped) == sorted(
            s.label() for s, _ in operator.items()
        )

    def test_groups_internally_compatible(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian()).without_identity()
        for group in group_qubit_wise_commuting(operator):
            for i, left in enumerate(group):
                for right in group[i + 1:]:
                    assert qubit_wise_commuting(left, right)

    def test_grouping_reduces_measurement_settings(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian()).without_identity()
        groups = group_qubit_wise_commuting(operator)
        assert len(groups) < len(operator)

    def test_identity_excluded(self):
        operator = PauliSum.identity(2, 3.0) + PauliSum.from_label("XI", 1.0)
        groups = group_qubit_wise_commuting(operator)
        assert len(groups) == 1
        assert groups[0][0].label() == "XI"


class TestMeasureEnergy:
    def test_diagonal_operator_exact_on_basis_state(self):
        operator = PauliSum.from_label("ZZ", 2.0) + PauliSum.identity(2, 1.0)
        rng = np.random.default_rng(0)
        energy = measure_energy(zero_state(2), operator, shots_per_group=50, rng=rng)
        assert energy == pytest.approx(3.0)  # <00|ZZ|00> = 1, exact for basis states

    def test_estimate_converges_to_expectation(self):
        operator = (
            PauliSum.from_label("XI", 0.5)
            + PauliSum.from_label("ZZ", -0.25)
            + PauliSum.from_label("YY", 0.75)
        )
        rng = np.random.default_rng(42)
        state = rng.normal(size=4) + 1j * rng.normal(size=4)
        state /= np.linalg.norm(state)
        exact = expectation_pauli_sum(state, operator)
        estimate = measure_energy(
            state, operator, shots_per_group=60_000, rng=np.random.default_rng(1)
        )
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_statistics_mean_and_spread(self):
        operator = PauliSum.from_label("X", 1.0)
        state = zero_state(1)  # <X> = 0, maximal shot noise
        mean, std = measured_energy_statistics(
            state, operator, repetitions=40, shots_per_group=64, seed=5
        )
        assert abs(mean) < 0.15
        assert 0.02 < std < 0.3  # ~1/sqrt(64) = 0.125

    def test_more_shots_less_spread(self):
        operator = PauliSum.from_label("X", 1.0)
        state = zero_state(1)
        _, coarse = measured_energy_statistics(state, operator, 30, 16, seed=3)
        _, fine = measured_energy_statistics(state, operator, 30, 4096, seed=3)
        assert fine < coarse

    def test_readout_error_biases_estimate(self):
        operator = PauliSum.from_label("Z", 1.0)
        state = zero_state(1)  # <Z> = 1 exactly
        mean, _ = measured_energy_statistics(
            state, operator, repetitions=20, shots_per_group=500,
            seed=9, readout_error=0.2,
        )
        # bit flips with p=0.2: expected <Z> = 1 - 2p = 0.6
        assert mean == pytest.approx(0.6, abs=0.1)

    def test_h2_ground_energy_via_measurement(self):
        hamiltonian = h2_hamiltonian()
        encoding = jordan_wigner(4)
        encoded = encoding.encode(hamiltonian)
        ground = diagonalize(encoded).eigenstate(0)
        mean, std = measured_energy_statistics(
            ground, encoded, repetitions=12, shots_per_group=3000, seed=4
        )
        assert mean == pytest.approx(-1.1373, abs=0.02)
