"""Tests for the exact density-matrix engine — including the scientific
cross-check that Monte-Carlo trajectories sample the exact channel."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, cnot, h, rz, s
from repro.paulis import PauliSum, pauli_sum_matrix, pauli_string_matrix, PauliString
from repro.simulator import (
    NoiseModel,
    expectation_pauli_sum,
    run_circuit,
    simulate_noisy_energy,
    zero_state,
)
from repro.simulator.density import (
    density_expectation,
    density_from_state,
    run_density_circuit,
)


class TestNoiselessAgreement:
    def test_matches_statevector(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1), s(1), rz(0, 0.4)])
        state = run_circuit(circuit)
        rho = run_density_circuit(circuit, zero_state(2))
        assert np.allclose(rho, np.outer(state, state.conj()), atol=1e-12)

    def test_purity_preserved_without_noise(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1)] * 3)
        rho = run_density_circuit(circuit, zero_state(2))
        assert np.trace(rho @ rho).real == pytest.approx(1.0)


class TestChannelProperties:
    def test_trace_preserved_under_noise(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1)] * 4)
        noise = NoiseModel(single_qubit_error=0.05, two_qubit_error=0.1)
        rho = run_density_circuit(circuit, zero_state(2), noise)
        assert np.trace(rho).real == pytest.approx(1.0)

    def test_noise_reduces_purity(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1)] * 4)
        noise = NoiseModel(two_qubit_error=0.2)
        rho = run_density_circuit(circuit, zero_state(2), noise)
        assert np.trace(rho @ rho).real < 0.95

    def test_hermiticity(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1), s(0)])
        noise = NoiseModel(single_qubit_error=0.1, two_qubit_error=0.1)
        rho = run_density_circuit(circuit, zero_state(2), noise)
        assert np.allclose(rho, rho.conj().T)

    def test_full_depolarizing_single_qubit(self):
        """p = 1 single-qubit depolarizing after H: maximally mixed qubit."""
        circuit = QuantumCircuit(1, [h(0)])
        noise = NoiseModel(single_qubit_error=1.0)
        rho = run_density_circuit(circuit, zero_state(1), noise)
        # (1/3)(XρX + YρY + ZρZ) of |+><+| = (2I - |+><+|*... ) — for the
        # uniform-random-error convention the result is I/2 when combined
        # with weight (1-p)=0 only if the error twirl averages to I/2:
        # (XρX+YρY+ZρZ)/3 for ρ=|+><+| = (ρ + (I-ρ) + (I-ρ))/3
        plus = np.full((2, 2), 0.5)
        expected = (plus + 2 * (np.eye(2) - plus)) / 3.0
        assert np.allclose(rho, expected, atol=1e-12)


class TestExpectation:
    def test_matches_dense_trace(self):
        rng = np.random.default_rng(3)
        state = rng.normal(size=4) + 1j * rng.normal(size=4)
        state /= np.linalg.norm(state)
        rho = density_from_state(state)
        operator = (
            PauliSum.from_label("XY", 0.7)
            + PauliSum.from_label("ZI", -0.2)
            + PauliSum.from_label("YY", 1.1)
        )
        expected = np.trace(rho @ pauli_sum_matrix(operator)).real
        assert density_expectation(rho, operator) == pytest.approx(expected)

    def test_pure_state_matches_statevector_expectation(self):
        rng = np.random.default_rng(9)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        operator = PauliSum.from_label("XZY", 0.5) + PauliSum.from_label("IZI", 1.5)
        assert density_expectation(
            density_from_state(state), operator
        ) == pytest.approx(expectation_pauli_sum(state, operator))


class TestTrajectoryValidation:
    def test_monte_carlo_converges_to_exact_channel(self):
        """The headline cross-check: averaged trajectory energies equal the
        exact channel energy within Monte-Carlo error."""
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1), s(1), cnot(0, 1), h(0)])
        observable = PauliSum.from_label("ZZ", 1.0) + PauliSum.from_label("XI", 0.5)
        noise = NoiseModel(single_qubit_error=0.02, two_qubit_error=0.05)

        rho = run_density_circuit(circuit, zero_state(2), noise)
        exact = density_expectation(rho, observable)

        stats = simulate_noisy_energy(
            circuit, observable, zero_state(2), noise, shots=4000, seed=123
        )
        standard_error = stats.std / np.sqrt(len(stats.samples)) + 1e-6
        assert stats.mean == pytest.approx(exact, abs=5 * standard_error + 0.01)
