"""Tests for closed-form Pauli actions and expectation values."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paulis import PauliString, PauliSum, pauli_string_matrix, pauli_sum_matrix
from repro.simulator import (
    apply_pauli_string,
    apply_pauli_sum,
    expectation_pauli_string,
    expectation_pauli_sum,
    zero_state,
)
from tests.conftest import pauli_strings


def _random_state(num_qubits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
    return state / np.linalg.norm(state)


class TestApply:
    @settings(max_examples=60, deadline=None)
    @given(pauli_strings(max_qubits=4), st.integers(0, 100))
    def test_matches_matrix_action(self, string, seed):
        state = _random_state(string.num_qubits, seed)
        direct = apply_pauli_string(state, string)
        via_matrix = pauli_string_matrix(string) @ state
        assert np.allclose(direct, via_matrix)

    def test_apply_sum(self):
        operator = PauliSum.from_label("XI", 0.5) + PauliSum.from_label("ZZ", -1.0)
        state = _random_state(2, 3)
        assert np.allclose(
            apply_pauli_sum(state, operator), pauli_sum_matrix(operator) @ state
        )

    def test_y_phase_on_zero_state(self):
        # Y|0> = i|1>
        state = apply_pauli_string(zero_state(1), PauliString.from_label("Y"))
        assert np.allclose(state, [0, 1j])


class TestExpectation:
    def test_z_on_zero_state(self):
        assert expectation_pauli_string(
            zero_state(1), PauliString.from_label("Z")
        ) == 1.0

    def test_x_on_zero_state(self):
        assert expectation_pauli_string(
            zero_state(1), PauliString.from_label("X")
        ) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(pauli_strings(max_qubits=3), st.integers(0, 50))
    def test_matches_matrix_expectation(self, string, seed):
        state = _random_state(string.num_qubits, seed)
        direct = expectation_pauli_string(state, string)
        via_matrix = state.conj() @ pauli_string_matrix(string) @ state
        assert np.isclose(direct, via_matrix)

    def test_sum_expectation_real(self):
        operator = PauliSum.from_label("XX", 0.3) + PauliSum.from_label("ZI", 0.7)
        state = _random_state(2, 9)
        value = expectation_pauli_sum(state, operator)
        reference = (state.conj() @ pauli_sum_matrix(operator) @ state).real
        assert np.isclose(value, reference)
