"""Tests for exact diagonalization."""

import numpy as np
import pytest

from repro.encodings import jordan_wigner
from repro.fermion import h2_hamiltonian
from repro.paulis import PauliSum
from repro.simulator import diagonalize, distinct_eigenlevels, expectation_pauli_sum


class TestDiagonalize:
    def test_single_z(self):
        spectrum = diagonalize(PauliSum.from_label("Z"))
        assert np.allclose(spectrum.energies, [-1.0, 1.0])

    def test_eigenstates_are_eigenstates(self):
        operator = PauliSum.from_label("XX", 0.5) + PauliSum.from_label("ZZ", 1.0)
        spectrum = diagonalize(operator)
        for level in range(4):
            state = spectrum.eigenstate(level)
            energy = expectation_pauli_sum(state, operator)
            assert energy == pytest.approx(spectrum.energy(level), abs=1e-9)

    def test_nonhermitian_rejected(self):
        with pytest.raises(ValueError):
            diagonalize(PauliSum.from_label("XY", 1j))

    def test_ground_energy_property(self):
        spectrum = diagonalize(PauliSum.from_label("Z", 2.0))
        assert spectrum.ground_energy == -2.0


class TestDistinctLevels:
    def test_degenerate_levels_collapse(self):
        # ZZ has eigenvalues [-1, -1, 1, 1] -> two distinct levels
        spectrum = diagonalize(PauliSum.from_label("ZZ"))
        levels = distinct_eigenlevels(spectrum, 2)
        assert len(levels) == 2
        assert spectrum.energy(levels[0]) == pytest.approx(-1.0)
        assert spectrum.energy(levels[1]) == pytest.approx(1.0)

    def test_h2_has_four_distinct_levels(self):
        spectrum = diagonalize(jordan_wigner(4).encode(h2_hamiltonian()))
        levels = distinct_eigenlevels(spectrum, 4)
        assert len(levels) == 4
        energies = [spectrum.energy(level) for level in levels]
        assert all(b - a > 1e-9 for a, b in zip(energies, energies[1:]))

    def test_request_fewer_than_available(self):
        spectrum = diagonalize(PauliSum.identity(1, 1.0))
        assert distinct_eigenlevels(spectrum, 3) == [0]
