"""Tests for the dense statevector engine."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, cnot, h, rz, s, x
from repro.paulis import PauliString, pauli_string_matrix
from repro.simulator import (
    apply_gate,
    basis_state,
    circuit_unitary,
    gate_matrix,
    run_circuit,
    zero_state,
)


class TestStates:
    def test_zero_state(self):
        state = zero_state(2)
        assert state[0] == 1.0
        assert np.allclose(np.linalg.norm(state), 1.0)

    def test_basis_state(self):
        state = basis_state(2, 3)
        assert state[3] == 1.0


class TestGateApplication:
    def test_x_flips_qubit(self):
        state = apply_gate(zero_state(2), x(0), 2)
        assert state[0b01] == 1.0
        state = apply_gate(zero_state(2), x(1), 2)
        assert state[0b10] == 1.0

    def test_h_superposition(self):
        state = apply_gate(zero_state(1), h(0), 1)
        assert np.allclose(state, [1 / np.sqrt(2), 1 / np.sqrt(2)])

    def test_cnot_on_basis_states(self):
        # control qubit 0, target qubit 1
        state = apply_gate(basis_state(2, 0b01), cnot(0, 1), 2)
        assert state[0b11] == 1.0
        state = apply_gate(basis_state(2, 0b10), cnot(0, 1), 2)
        assert state[0b10] == 1.0

    def test_bell_state(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1)])
        state = run_circuit(circuit)
        assert np.allclose(np.abs(state) ** 2, [0.5, 0, 0, 0.5])

    def test_gate_matrices_match_pauli_matrices(self):
        for name in ("X", "Y", "Z"):
            gate = type("G", (), {})  # placeholder to emphasise direct lookup
            from repro.circuits.gates import Gate

            assert np.allclose(
                gate_matrix(Gate(name, (0,))),
                pauli_string_matrix(PauliString.from_label(name)),
            )

    def test_rz_matrix(self):
        from repro.circuits.gates import Gate

        angle = 0.8
        matrix = gate_matrix(Gate("RZ", (0,), angle))
        z = pauli_string_matrix(PauliString.from_label("Z"))
        from scipy.linalg import expm

        assert np.allclose(matrix, expm(-1j * angle / 2 * z))


class TestUnitarity:
    def test_random_circuit_preserves_norm(self):
        rng = np.random.default_rng(5)
        circuit = QuantumCircuit(3)
        for _ in range(30):
            kind = rng.integers(0, 4)
            q = int(rng.integers(0, 3))
            if kind == 0:
                circuit.append(h(q))
            elif kind == 1:
                circuit.append(s(q))
            elif kind == 2:
                circuit.append(rz(q, float(rng.normal())))
            else:
                t = int(rng.integers(0, 3))
                if t != q:
                    circuit.append(cnot(q, t))
        state = run_circuit(circuit)
        assert np.isclose(np.linalg.norm(state), 1.0)

    def test_circuit_unitary_is_unitary(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1), s(1)])
        unitary = circuit_unitary(circuit)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(4), atol=1e-12)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_circuit(QuantumCircuit(2), zero_state(3))
