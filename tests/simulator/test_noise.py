"""Tests for the Monte-Carlo noise model."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, cnot, h
from repro.paulis import PauliSum
from repro.simulator import (
    NoiseModel,
    diagonalize,
    ionq_aria1_noise,
    run_noisy_trajectory,
    sample_measurements,
    simulate_noisy_energy,
    zero_state,
)


class TestNoiseModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            NoiseModel(single_qubit_error=1.5)
        with pytest.raises(ValueError):
            NoiseModel(two_qubit_error=-0.1)

    def test_noiseless_flag(self):
        assert NoiseModel().is_noiseless
        assert not NoiseModel(two_qubit_error=0.01).is_noiseless

    def test_aria1_rates(self):
        noise = ionq_aria1_noise()
        assert noise.single_qubit_error == pytest.approx(1e-4)
        assert noise.two_qubit_error == pytest.approx(0.0109, abs=1e-6)
        assert noise.readout_error == pytest.approx(0.0118, abs=1e-6)


class TestTrajectories:
    def test_noiseless_trajectory_is_deterministic(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1)])
        rng = np.random.default_rng(0)
        state = run_noisy_trajectory(circuit, zero_state(2), NoiseModel(), rng)
        assert np.allclose(np.abs(state) ** 2, [0.5, 0, 0, 0.5])

    def test_trajectory_stays_normalized(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1)] * 10)
        rng = np.random.default_rng(1)
        noise = NoiseModel(single_qubit_error=0.2, two_qubit_error=0.2)
        state = run_noisy_trajectory(circuit, zero_state(2), noise, rng)
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestEnergyStatistics:
    def test_noiseless_energy_has_zero_variance(self):
        circuit = QuantumCircuit(1, [h(0)])
        observable = PauliSum.from_label("X")
        stats = simulate_noisy_energy(
            circuit, observable, zero_state(1), NoiseModel(), shots=20, seed=3
        )
        assert stats.mean == pytest.approx(1.0)
        assert stats.std == pytest.approx(0.0, abs=1e-12)

    def test_noise_drifts_energy_towards_mixed(self):
        """Strong depolarizing noise pushes <Z> from 1 toward 0."""
        circuit = QuantumCircuit(1, [h(0), h(0)] * 8)  # identity, 16 gates
        observable = PauliSum.from_label("Z")
        noiseless = simulate_noisy_energy(
            circuit, observable, zero_state(1), NoiseModel(), shots=10, seed=5
        )
        noisy = simulate_noisy_energy(
            circuit,
            observable,
            zero_state(1),
            NoiseModel(single_qubit_error=0.3),
            shots=300,
            seed=5,
        )
        assert noiseless.mean == pytest.approx(1.0)
        assert noisy.mean < 0.8

    def test_higher_noise_higher_variance(self):
        circuit = QuantumCircuit(2, [h(0), cnot(0, 1)] * 4)
        observable = PauliSum.from_label("ZZ")
        low = simulate_noisy_energy(
            circuit, observable, zero_state(2),
            NoiseModel(two_qubit_error=0.001), shots=200, seed=7,
        )
        high = simulate_noisy_energy(
            circuit, observable, zero_state(2),
            NoiseModel(two_qubit_error=0.2), shots=200, seed=7,
        )
        assert high.std > low.std

    def test_shots_validated(self):
        with pytest.raises(ValueError):
            simulate_noisy_energy(
                QuantumCircuit(1), PauliSum.from_label("Z"), zero_state(1),
                NoiseModel(), shots=0,
            )

    def test_seed_reproducible(self):
        circuit = QuantumCircuit(1, [h(0)] * 6)
        observable = PauliSum.from_label("Z")
        noise = NoiseModel(single_qubit_error=0.1)
        a = simulate_noisy_energy(circuit, observable, zero_state(1), noise, shots=50, seed=9)
        b = simulate_noisy_energy(circuit, observable, zero_state(1), noise, shots=50, seed=9)
        assert np.allclose(a.samples, b.samples)


class TestMeasurements:
    def test_deterministic_state_sampling(self):
        rng = np.random.default_rng(0)
        outcomes = sample_measurements(zero_state(2), 100, 0.0, rng)
        assert np.all(outcomes == 0)

    def test_readout_error_flips_bits(self):
        rng = np.random.default_rng(0)
        outcomes = sample_measurements(zero_state(2), 2000, 0.25, rng)
        flipped = np.count_nonzero(outcomes)
        assert flipped > 0

    def test_bell_state_sampling(self):
        from repro.simulator import run_circuit

        circuit = QuantumCircuit(2, [h(0), cnot(0, 1)])
        state = run_circuit(circuit)
        rng = np.random.default_rng(2)
        outcomes = sample_measurements(state, 1000, 0.0, rng)
        assert set(np.unique(outcomes)) <= {0, 3}
