"""Tests for the Algorithm-1 descent loop."""

import pytest

from repro.core import FermihedralConfig, SolverBudget, descend
from repro.core.verify import verify_encoding
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import hubbard_chain


class TestHamiltonianIndependent:
    def test_n1_optimum_is_2(self, fast_config):
        result = descend(1, config=fast_config)
        assert result.weight == 2
        assert result.proved_optimal

    def test_n2_optimum_is_6(self, fast_config):
        result = descend(2, config=fast_config)
        assert result.weight == 6
        assert result.proved_optimal
        assert verify_encoding(result.encoding).fully_valid

    def test_n3_optimum_is_11(self, fast_config):
        result = descend(3, config=fast_config)
        assert result.weight == 11
        assert result.proved_optimal

    def test_never_worse_than_baseline(self, fast_config):
        for num_modes in (1, 2, 3):
            result = descend(num_modes, config=fast_config)
            assert result.weight <= bravyi_kitaev(num_modes).total_majorana_weight

    def test_steps_recorded(self, fast_config):
        result = descend(2, config=fast_config)
        assert result.sat_calls >= 1
        assert result.steps[-1].status in ("UNSAT", "UNKNOWN", "SAT", "REPAIR-LIMIT")
        assert result.construct_time_s >= 0.0
        assert result.solve_time_s >= 0.0

    def test_custom_baseline(self, fast_config):
        result = descend(2, config=fast_config, baseline=jordan_wigner(2))
        assert result.weight == 6


class TestWithoutAlgebraicIndependence:
    def test_same_optimum_as_full(self, fast_noalg_config):
        """At these sizes the w/o-Alg optimum agrees with Full SAT (the
        repair loop discards the rare dependent models)."""
        result = descend(2, config=fast_noalg_config)
        assert result.weight == 6
        assert verify_encoding(result.encoding).valid

    def test_n3_valid_and_optimal(self, fast_noalg_config):
        result = descend(3, config=fast_noalg_config)
        assert result.weight == 11
        assert verify_encoding(result.encoding).valid

    def test_repairs_counted(self, fast_noalg_config):
        result = descend(2, config=fast_noalg_config)
        assert result.repairs >= 0  # typically 0; never negative


class TestBudgets:
    def test_conflict_budget_stops_descent(self):
        config = FermihedralConfig(budget=SolverBudget(max_conflicts=1))
        result = descend(3, config=config)
        # budget too small to find anything: returns the baseline
        assert result.weight <= bravyi_kitaev(3).total_majorana_weight
        assert not result.proved_optimal

    def test_start_weight_tightens_first_bound(self, fast_config):
        config = FermihedralConfig(
            start_weight=6, budget=SolverBudget(max_conflicts=200_000)
        )
        result = descend(2, config=config)
        assert result.steps[0].bound == 6
        assert result.weight == 6

    def test_start_weight_below_optimum_is_not_a_proof(self):
        """UNSAT at a start_weight below the true optimum (6 for 2 modes)
        leaves the range up to the baseline unexplored — the returned
        baseline (BK, weight 7) must not be reported as proved optimal."""
        for strategy in ("linear", "bisection"):
            config = FermihedralConfig(
                start_weight=4, strategy=strategy,
                budget=SolverBudget(time_budget_s=30),
            )
            result = descend(2, config=config)
            assert result.weight == bravyi_kitaev(2).total_majorana_weight
            assert not result.proved_optimal, strategy


class TestHamiltonianDependent:
    def test_hubbard_2site_beats_bk(self, fast_config):
        hamiltonian = hubbard_chain(2, periodic=False)
        baseline_weight = bravyi_kitaev(4).hamiltonian_pauli_weight(hamiltonian)
        config = FermihedralConfig(budget=SolverBudget(time_budget_s=30))
        result = descend(
            4, config=config, hamiltonian=hamiltonian, baseline=jordan_wigner(4)
        )
        assert result.weight <= baseline_weight
        assert verify_encoding(result.encoding).valid

    def test_achieved_weight_matches_measurement(self, fast_config):
        hamiltonian = hubbard_chain(2, periodic=False)
        config = FermihedralConfig(budget=SolverBudget(time_budget_s=30))
        result = descend(4, config=config, hamiltonian=hamiltonian)
        assert result.encoding.hamiltonian_pauli_weight(hamiltonian) == result.weight


class TestPreprocessing:
    """CNF preprocessing is an execution-only knob: same optima, same
    proofs, decoded models always valid."""

    @pytest.mark.parametrize("num_modes", [2, 3])
    def test_preprocess_preserves_optimum_and_proof(self, num_modes):
        results = {}
        for preprocess in (True, False):
            config = FermihedralConfig(
                preprocess=preprocess, budget=SolverBudget(time_budget_s=30)
            )
            results[preprocess] = descend(num_modes, config)
        assert results[True].weight == results[False].weight
        assert results[True].proved_optimal == results[False].proved_optimal
        for result in results.values():
            assert verify_encoding(result.encoding).valid

    def test_preprocess_with_repair_loop(self):
        """w/o-Alg mode adds blocking clauses over frozen encoding
        variables to the live (preprocessed) instance."""
        config = FermihedralConfig(
            algebraic_independence=False,
            budget=SolverBudget(time_budget_s=30),
        )
        result = descend(2, config)
        assert result.proved_optimal
        assert verify_encoding(result.encoding).valid

    def test_preprocess_with_qubit_weights(self):
        config = FermihedralConfig(
            qubit_weights=(1, 2), budget=SolverBudget(time_budget_s=30)
        )
        plain = descend(2, config.with_parallelism(preprocess=False))
        simplified = descend(2, config)
        assert simplified.weight == plain.weight
        assert simplified.proved_optimal == plain.proved_optimal
