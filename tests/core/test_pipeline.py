"""Tests for the compiler pipeline facade."""

import pytest

from repro.core import (
    FermihedralCompiler,
    FermihedralConfig,
    SolverBudget,
    solve_full_sat,
    solve_hamiltonian_independent,
    solve_sat_annealing,
)
from repro.core.baselines import best_baseline, candidate_baselines
from repro.encodings import bravyi_kitaev
from repro.fermion import hubbard_chain


@pytest.fixture(scope="module")
def hubbard2():
    return hubbard_chain(2, periodic=False)


class TestPipeline:
    def test_hamiltonian_independent(self, fast_config):
        result = solve_hamiltonian_independent(2, fast_config)
        assert result.weight == 6
        assert result.method == "full-sat/independent"
        assert result.verify().valid

    def test_full_sat_beats_or_matches_bk(self, hubbard2):
        config = FermihedralConfig(budget=SolverBudget(time_budget_s=25))
        result = solve_full_sat(hubbard2, config)
        assert result.weight <= bravyi_kitaev(4).hamiltonian_pauli_weight(hubbard2)
        assert result.method == "full-sat/dependent"
        assert result.verify().valid

    def test_sat_annealing(self, hubbard2, fast_config):
        result = solve_sat_annealing(hubbard2, fast_config, seed=5)
        assert result.method == "sat+annealing"
        assert result.annealing is not None
        assert result.encoding.hamiltonian_pauli_weight(hubbard2) == result.weight

    def test_compiler_facade_checks_modes(self, hubbard2, fast_config):
        compiler = FermihedralCompiler(3, fast_config)
        with pytest.raises(ValueError):
            compiler.full_sat(hubbard2)
        with pytest.raises(ValueError):
            compiler.sat_with_annealing(hubbard2)

    def test_compiler_rejects_bad_modes(self):
        with pytest.raises(ValueError):
            FermihedralCompiler(0)

    def test_wo_alg_method_label(self, fast_noalg_config):
        result = solve_hamiltonian_independent(2, fast_noalg_config)
        assert result.method == "sat-wo-alg/independent"
        assert result.weight == 6


class TestBaselineSelection:
    def test_candidates_exclude_ternary_tree_when_vacuum_required(self):
        names = [e.name for e in candidate_baselines(4, require_vacuum=True)]
        assert "ternary-tree" not in names
        names = [e.name for e in candidate_baselines(4, require_vacuum=False)]
        assert "ternary-tree" in names

    def test_best_baseline_independent_is_lightest(self):
        config = FermihedralConfig(vacuum_preservation=False)
        chosen = best_baseline(8, config)
        candidates = candidate_baselines(8, require_vacuum=False)
        assert chosen.total_majorana_weight == min(
            c.total_majorana_weight for c in candidates
        )

    def test_best_baseline_dependent_uses_annealed_weight(self, hubbard2):
        config = FermihedralConfig()
        chosen = best_baseline(4, config, hubbard2)
        assert chosen.hamiltonian_pauli_weight(hubbard2) <= bravyi_kitaev(
            4
        ).hamiltonian_pauli_weight(hubbard2)

    def test_best_baseline_respects_vacuum(self, hubbard2):
        config = FermihedralConfig(vacuum_preservation=True)
        chosen = best_baseline(4, config, hubbard2)
        assert chosen.preserves_vacuum()
