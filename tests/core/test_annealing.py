"""Tests for the Algorithm-2 simulated-annealing pairing optimizer."""

import pytest

from repro.core import AnnealingSchedule, anneal_pairing, hamiltonian_weight_under_order
from repro.core.verify import verify_encoding
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import hubbard_chain, syk_hamiltonian


@pytest.fixture(scope="module")
def hubbard():
    return hubbard_chain(3)


class TestWeightUnderOrder:
    def test_identity_order_matches_direct_measurement(self, hubbard):
        encoding = jordan_wigner(6)
        computed = hamiltonian_weight_under_order(
            encoding, hubbard, list(range(6))
        )
        assert computed == encoding.hamiltonian_pauli_weight(hubbard)

    def test_reordered_weight_matches_reordered_encoding(self, hubbard):
        encoding = jordan_wigner(6)
        order = [2, 0, 1, 4, 5, 3]
        computed = hamiltonian_weight_under_order(encoding, hubbard, order)
        reordered = encoding.with_mode_order(order)
        assert computed == reordered.hamiltonian_pauli_weight(hubbard)


class TestAnnealing:
    def test_result_weight_is_consistent(self, hubbard):
        encoding = bravyi_kitaev(6)
        result = anneal_pairing(encoding, hubbard, seed=3)
        assert result.encoding.hamiltonian_pauli_weight(hubbard) == result.weight

    def test_never_worse_than_start(self, hubbard):
        encoding = bravyi_kitaev(6)
        result = anneal_pairing(encoding, hubbard, seed=3)
        assert result.weight <= result.initial_weight

    def test_preserves_validity_and_vacuum(self, hubbard):
        result = anneal_pairing(bravyi_kitaev(6), hubbard, seed=3)
        report = verify_encoding(result.encoding)
        assert report.valid
        assert report.vacuum_preservation

    def test_reproducible_with_seed(self, hubbard):
        a = anneal_pairing(jordan_wigner(6), hubbard, seed=11)
        b = anneal_pairing(jordan_wigner(6), hubbard, seed=11)
        assert a.weight == b.weight
        assert a.mode_order == b.mode_order

    def test_improves_jw_on_hubbard(self, hubbard):
        """Pair placement matters for lattice models: annealing JW's pairing
        must find strictly lighter assignments for the periodic chain."""
        result = anneal_pairing(jordan_wigner(6), hubbard, seed=5)
        assert result.weight < result.initial_weight

    def test_dense_syk_is_pairing_invariant(self):
        """Dense four-body SYK touches every Majorana quadruple, so mode
        re-pairing permutes the monomial set onto itself: annealing cannot
        change the weight."""
        syk = syk_hamiltonian(3)
        encoding = bravyi_kitaev(3)
        result = anneal_pairing(encoding, syk, seed=2)
        assert result.weight == result.initial_weight

    def test_history_and_counters(self, hubbard):
        schedule = AnnealingSchedule(
            initial_temperature=1.0,
            final_temperature=0.2,
            temperature_step=0.2,
            iterations_per_step=10,
        )
        result = anneal_pairing(jordan_wigner(6), hubbard, schedule=schedule, seed=1)
        assert len(result.history) == len(schedule.temperatures()) + 1
        assert result.attempted_moves >= result.accepted_moves >= 0

    def test_mode_count_mismatch_rejected(self, hubbard):
        with pytest.raises(ValueError):
            anneal_pairing(jordan_wigner(4), hubbard)

    def test_single_mode_trivial(self):
        from repro.fermion import FermionOperator, FermionicHamiltonian

        hamiltonian = FermionicHamiltonian.from_fermion_operator(
            "one", FermionOperator.number(0)
        )
        result = anneal_pairing(jordan_wigner(1), hamiltonian, seed=0)
        assert result.weight == result.initial_weight


class TestSchedule:
    def test_temperature_ladder(self):
        schedule = AnnealingSchedule(
            initial_temperature=1.0, final_temperature=0.5, temperature_step=0.25
        )
        assert schedule.temperatures() == pytest.approx([1.0, 0.75, 0.5])
