"""Tests for the SAT constraint encoder (Section 3)."""

import pytest

from repro.core import OPERATOR_BITS, FermihedralEncoder
from repro.core.verify import verify_encoding
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.paulis import pairwise_anticommuting, are_algebraically_independent
from repro.sat import solve_formula


def _solve_encoder(encoder):
    result = solve_formula(encoder.formula)
    assert result.is_sat
    return encoder.decode(result.model)


class TestVariableGeometry:
    def test_variable_count(self):
        encoder = FermihedralEncoder(3)
        # 2 bits per (string, qubit): 2 * (2N * N)
        assert encoder.formula.num_variables == 2 * 6 * 3

    def test_string_variables_bit_sequence_order(self):
        encoder = FermihedralEncoder(2)
        variables = encoder.string_variables(0)
        assert len(variables) == 4
        assert variables[0] == encoder.bit1[0][0]
        assert variables[1] == encoder.bit2[0][0]

    def test_rejects_nonpositive_modes(self):
        with pytest.raises(ValueError):
            FermihedralEncoder(0)


class TestRoundTrip:
    def test_encoding_assignment_decodes_back(self):
        """encode(BK) -> model -> decode == BK (bit conventions consistent)."""
        for num_modes in (1, 2, 3, 4):
            baseline = bravyi_kitaev(num_modes)
            encoder = FermihedralEncoder(num_modes)
            hints = encoder.encoding_assignment(baseline)
            decoded = encoder.decode(hints)
            assert [s.label() for s in decoded.strings] == [
                s.label() for s in baseline.strings
            ]

    def test_operator_bits_match_paper(self):
        assert OPERATOR_BITS == {"I": (0, 0), "X": (0, 1), "Y": (1, 0), "Z": (1, 1)}

    def test_mode_mismatch_rejected(self):
        encoder = FermihedralEncoder(2)
        with pytest.raises(ValueError):
            encoder.encoding_assignment(jordan_wigner(3))


class TestConstraints:
    def test_anticommutativity_constraint_produces_anticommuting_family(self):
        encoder = FermihedralEncoder(2)
        encoder.add_anticommutativity()
        decoded = _solve_encoder(encoder)
        assert pairwise_anticommuting(decoded.strings)

    def test_baseline_satisfies_anticommutativity(self):
        """Unit clauses pinning the JW assignment must stay SAT."""
        encoder = FermihedralEncoder(3)
        encoder.add_anticommutativity()
        for variable, value in encoder.encoding_assignment(jordan_wigner(3)).items():
            encoder.formula.add_unit(variable if value else -variable)
        assert solve_formula(encoder.formula).is_sat

    def test_algebraic_independence_constraint(self):
        encoder = FermihedralEncoder(2)
        encoder.add_anticommutativity()
        encoder.add_algebraic_independence()
        decoded = _solve_encoder(encoder)
        assert are_algebraically_independent(decoded.strings)

    def test_dependent_family_violates_algebraic_clauses(self):
        """Pinning a dependent family (X,Y,Z on one qubit include XYZ ∝ I ...
        use two modes with a crafted dependence) must be UNSAT."""
        encoder = FermihedralEncoder(1)
        encoder.add_algebraic_independence()
        # strings X and X: subset {0,1} multiplies to I
        for string_index in (0, 1):
            for qubit in (0,):
                bit1, bit2 = OPERATOR_BITS["X"]
                v1 = encoder.bit1[string_index][qubit]
                v2 = encoder.bit2[string_index][qubit]
                encoder.formula.add_unit(v1 if bit1 else -v1)
                encoder.formula.add_unit(v2 if bit2 else -v2)
        assert solve_formula(encoder.formula).is_unsat

    def test_vacuum_constraint_forces_xy_witness(self):
        encoder = FermihedralEncoder(2)
        encoder.add_anticommutativity()
        encoder.add_vacuum_preservation()
        decoded = _solve_encoder(encoder)
        for mode in (0, 1):
            even = decoded.strings[2 * mode]
            odd = decoded.strings[2 * mode + 1]
            assert any(
                even.operator(k) == "X" and odd.operator(k) == "Y"
                for k in range(2)
            )

    def test_all_constraints_give_valid_encoding(self):
        encoder = FermihedralEncoder(2)
        encoder.add_anticommutativity()
        encoder.add_algebraic_independence()
        encoder.add_vacuum_preservation()
        decoded = _solve_encoder(encoder)
        report = verify_encoding(decoded)
        assert report.valid


class TestWeights:
    def test_majorana_indicator_count(self):
        encoder = FermihedralEncoder(3)
        assert len(encoder.majorana_weight_indicators()) == 6 * 3

    def test_weight_bound_enforced(self):
        encoder = FermihedralEncoder(2)
        encoder.add_anticommutativity()
        encoder.add_algebraic_independence()
        indicators = encoder.majorana_weight_indicators()
        encoder.add_weight_at_most(indicators, 6)
        decoded = _solve_encoder(encoder)
        assert decoded.total_majorana_weight <= 6

    def test_weight_below_optimum_unsat(self):
        """N=2 optimum is 6 (JW); asking for 5 must be UNSAT."""
        encoder = FermihedralEncoder(2)
        encoder.add_anticommutativity()
        encoder.add_algebraic_independence()
        indicators = encoder.majorana_weight_indicators()
        encoder.add_weight_at_most(indicators, 5)
        assert solve_formula(encoder.formula).is_unsat

    def test_hamiltonian_indicators(self):
        from repro.fermion import hubbard_chain

        hamiltonian = hubbard_chain(2, periodic=False)
        encoder = FermihedralEncoder(4)
        indicators = encoder.hamiltonian_weight_indicators(hamiltonian)
        assert len(indicators) == len(hamiltonian.monomials) * 4

    def test_hamiltonian_mode_mismatch_rejected(self):
        from repro.fermion import hubbard_chain

        encoder = FermihedralEncoder(3)
        with pytest.raises(ValueError):
            encoder.hamiltonian_weight_indicators(hubbard_chain(2))


class TestBlockingClause:
    def test_blocking_clause_excludes_model(self):
        encoder = FermihedralEncoder(1)
        encoder.add_anticommutativity()
        first = solve_formula(encoder.formula)
        assert first.is_sat
        encoder.formula.add_clause(encoder.blocking_clause(first.model))
        second = solve_formula(encoder.formula)
        assert second.is_sat
        projection = encoder.all_string_variables()
        assert any(first.model[v] != second.model[v] for v in projection)
