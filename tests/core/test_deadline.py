"""Deadline propagation: graceful degradation, never an error."""

import pytest

from repro.core import FermihedralConfig, SolverBudget, descend
from repro.core.verify import verify_encoding
from repro.encodings import bravyi_kitaev
from repro.telemetry import Telemetry

FAST_BUDGET = SolverBudget(max_conflicts=200_000, time_budget_s=60)


class TestDeadlineConfig:
    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline_s"):
            FermihedralConfig(deadline_s=0)
        with pytest.raises(ValueError, match="deadline_s"):
            FermihedralConfig(deadline_s=-1.5)

    def test_with_deadline_round_trip(self):
        config = FermihedralConfig().with_deadline(12.5)
        assert config.deadline_s == 12.5
        assert config.with_deadline(None).deadline_s is None


class TestDeadlineDescent:
    def test_expired_deadline_returns_baseline_degraded(self):
        # A deadline that expires before the first rung is the worst case:
        # the answer is the baseline itself, degraded but never an error.
        config = FermihedralConfig(budget=FAST_BUDGET).with_deadline(1e-6)
        result = descend(3, config)
        assert result.degraded
        assert not result.proved_optimal
        assert result.target_bound is not None
        assert result.steps == []
        assert result.weight == bravyi_kitaev(3).total_majorana_weight
        assert verify_encoding(result.encoding).valid

    def test_generous_deadline_changes_nothing(self):
        config = FermihedralConfig(budget=FAST_BUDGET).with_deadline(300.0)
        result = descend(2, config)
        assert not result.degraded
        assert result.target_bound is None
        assert result.proved_optimal
        assert result.weight == 6  # the known n=2 optimum

    def test_degraded_runs_bump_the_telemetry_counter(self):
        telemetry = Telemetry()
        config = FermihedralConfig(budget=FAST_BUDGET).with_deadline(1e-6)
        descend(2, config, telemetry=telemetry)
        assert "repro_descent_degraded_total" in telemetry.render_metrics()

    def test_bisection_honors_the_deadline_too(self):
        import dataclasses

        config = dataclasses.replace(
            FermihedralConfig(budget=FAST_BUDGET).with_deadline(1e-6),
            strategy="bisection",
        )
        result = descend(3, config)
        assert result.degraded
        assert verify_encoding(result.encoding).valid

    def test_deadline_does_not_change_the_answer_fingerprint_carries(self):
        # Execution-only semantics: with and without a (generous) deadline
        # the descent reaches the same proved optimum.
        base = FermihedralConfig(budget=FAST_BUDGET)
        plain = descend(2, base)
        timed = descend(2, base.with_deadline(600.0))
        assert timed.weight == plain.weight == 6
        assert timed.proved_optimal and plain.proved_optimal
