"""Tests for the independent solution verifier."""

from repro.core import verify_encoding
from repro.encodings import MajoranaEncoding, bravyi_kitaev, jordan_wigner, ternary_tree
from repro.paulis import PauliString


def _unchecked(*labels):
    return MajoranaEncoding(
        [PauliString.from_label(label) for label in labels], validate=False
    )


class TestVerify:
    def test_valid_baselines_pass(self):
        for builder in (jordan_wigner, bravyi_kitaev):
            report = verify_encoding(builder(3))
            assert report.fully_valid
            assert report.violations == []

    def test_ternary_tree_flags_vacuum_only(self):
        report = verify_encoding(ternary_tree(4))
        assert report.valid
        assert not report.vacuum_preservation
        assert any("vacuum" in violation or "annihilation" in violation
                   for violation in report.violations)

    def test_commuting_pair_detected(self):
        report = verify_encoding(_unchecked("XX", "YY", "XZ", "YZ"))
        assert not report.anticommutativity
        assert not report.valid
        assert any("commute" in violation for violation in report.violations)

    def test_identity_string_detected(self):
        report = verify_encoding(_unchecked("II", "XY"))
        assert not report.anticommutativity
        assert any("identity" in violation for violation in report.violations)

    def test_algebraic_dependence_detected(self):
        # X, Y on one qubit plus Z would multiply to identity up to phase;
        # build a 2-string dependent family instead: equal strings.
        report = verify_encoding(_unchecked("XZ", "XZ"))
        assert not report.algebraic_independence
        assert any("identity" in violation for violation in report.violations)

    def test_report_flags_are_independent(self):
        # anticommuting and independent but no vacuum: X,Z pair (no Y witness)
        report = verify_encoding(_unchecked("X", "Z"))
        assert report.anticommutativity
        assert report.algebraic_independence
        assert not report.vacuum_preservation
        assert report.valid
        assert not report.fully_valid
