"""End-to-end tests for optimality-proof capture through the pipeline.

The tentpole property: a ``proof=True`` run whose descent proves
optimality yields a :class:`repro.sat.drat.ProofTrace` that the
independent checker accepts — for every descent engine (cold and
incremental, with and without preprocessing, linear and bisection,
portfolio racing) — and the compiler/cache layers carry the artifact
without perturbing fingerprints.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import FermihedralCompiler, FermihedralConfig, SolverBudget, descend
from repro.encodings.serialization import result_from_dict, result_to_dict
from repro.fermion import tv_chain
from repro.sat.drat import check_trace
from repro.store import CompilationCache


def _proof_config(**overrides) -> FermihedralConfig:
    settings = dict(
        proof=True,
        budget=SolverBudget(max_conflicts=200_000, time_budget_s=60),
    )
    settings.update(overrides)
    return FermihedralConfig(**settings)


class TestDescentEngines:
    @pytest.mark.parametrize("incremental", [True, False])
    @pytest.mark.parametrize("preprocess", [True, False])
    def test_every_engine_emits_a_checkable_trace(self, incremental, preprocess):
        config = _proof_config(incremental=incremental, preprocess=preprocess)
        result = descend(2, config=config)
        assert result.proved_optimal
        assert result.proof_trace is not None
        verdict = check_trace(result.proof_trace)
        assert verdict.ok, verdict.reason
        engine = "incremental" if incremental else "cold"
        assert result.proof_trace.meta["engine"] == engine
        # The certified bound is the last refuted rung: optimum - 1.
        assert result.proof_trace.meta["bound"] == result.weight - 1

    def test_bisection_strategy_traces(self):
        result = descend(2, config=_proof_config(strategy="bisection"))
        assert result.proved_optimal
        assert result.proof_trace is not None
        assert check_trace(result.proof_trace).ok

    def test_portfolio_winner_trace_verifies(self):
        result = descend(2, config=_proof_config(portfolio=2))
        assert result.proved_optimal
        assert result.proof_trace is not None
        verdict = check_trace(result.proof_trace)
        assert verdict.ok, verdict.reason

    def test_proof_off_captures_nothing(self):
        result = descend(2, config=_proof_config(proof=False))
        assert result.proved_optimal
        assert result.proof_trace is None

    def test_hamiltonian_dependent_trace(self):
        result = descend(
            2, config=_proof_config(), hamiltonian=tv_chain(2)
        )
        assert result.proved_optimal
        assert result.proof_trace is not None
        assert check_trace(result.proof_trace).ok


class TestCompilerAndCache:
    def test_compile_stores_a_checkable_artifact(self, tmp_path):
        cache = CompilationCache(tmp_path / "cache")
        compiler = FermihedralCompiler(2, _proof_config(), cache=cache)
        result = compiler.hamiltonian_independent()
        assert result.proved_optimal
        assert result.proof is not None
        sha = result.proof["sha256"]
        assert result.proof["artifact"] == str(cache.proof_path(sha))
        trace = cache.get_proof(sha)
        assert trace is not None
        assert trace.sha256() == sha
        assert check_trace(trace).ok
        assert result.proof["drat_lines"] == trace.num_proof_lines

    def test_cache_hit_round_trips_proof_metadata(self, tmp_path):
        cache = CompilationCache(tmp_path / "cache")
        first = FermihedralCompiler(2, _proof_config(), cache=cache)
        stored = first.hamiltonian_independent()
        again = FermihedralCompiler(2, _proof_config(), cache=cache)
        result = again.hamiltonian_independent()
        assert again.last_cache_status == "hit"
        assert result.proof == stored.proof

    def test_compile_without_cache_still_attaches_metadata(self):
        compiler = FermihedralCompiler(2, _proof_config())
        result = compiler.hamiltonian_independent()
        assert result.proof is not None
        assert "artifact" not in result.proof
        assert check_trace(result.descent.proof_trace).ok

    def test_corrupted_artifact_reads_as_miss(self, tmp_path):
        cache = CompilationCache(tmp_path / "cache")
        compiler = FermihedralCompiler(2, _proof_config(), cache=cache)
        result = compiler.hamiltonian_independent()
        sha = result.proof["sha256"]
        path = cache.proof_path(sha)
        data = json.loads(path.read_text())
        data["num_variables"] += 1
        path.write_text(json.dumps(data, sort_keys=True) + "\n")
        assert cache.get_proof(sha) is None

    def test_gc_leaves_proof_artifacts_alone(self, tmp_path):
        cache = CompilationCache(tmp_path / "cache")
        compiler = FermihedralCompiler(2, _proof_config(), cache=cache)
        result = compiler.hamiltonian_independent()
        sha = result.proof["sha256"]
        report = cache.gc()
        assert not report.removed
        assert cache.get_proof(sha) is not None

    def test_put_proof_is_idempotent(self, tmp_path):
        cache = CompilationCache(tmp_path / "cache")
        compiler = FermihedralCompiler(2, _proof_config(), cache=cache)
        trace = compiler.hamiltonian_independent().descent.proof_trace
        sha_a, path_a = cache.put_proof(trace)
        sha_b, path_b = cache.put_proof(trace)
        assert (sha_a, path_a) == (sha_b, path_b)
        assert cache.proof_shas() == [sha_a]

    def test_fingerprint_ignores_the_proof_knob(self, tmp_path):
        cache = CompilationCache(tmp_path / "cache")
        on = _proof_config()
        off = dataclasses.replace(on, proof=False)
        key_on = cache.key_for(num_modes=2, config=on, hamiltonian=None,
                               method="independent", schedule=None,
                               seed=2024, device=None)
        key_off = cache.key_for(num_modes=2, config=off, hamiltonian=None,
                                method="independent", schedule=None,
                                seed=2024, device=None)
        assert key_on == key_off

    def test_result_serialization_round_trips_proof(self):
        compiler = FermihedralCompiler(2, _proof_config())
        result = compiler.hamiltonian_independent()
        clone = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert clone.proof == result.proof

    def test_results_without_proof_serialize_as_before(self):
        compiler = FermihedralCompiler(2, _proof_config(proof=False))
        result = compiler.hamiltonian_independent()
        data = result_to_dict(result)
        assert data["proof"] is None
        assert result_from_dict(data).proof is None
