"""Exhaustive validation of the SAT constraint encoder.

For one mode, the string-variable space is tiny (two strings x one qubit x
two bits = 4 variables, 16 assignments), so the encoder can be checked
against ground truth *exactly*: pin every possible assignment with unit
clauses and compare satisfiability with a direct evaluation of the
constraint on the decoded strings.  For two modes (65536 assignments) a
random sample plus all valid encodings is checked.
"""

import itertools
import random

import pytest

from repro.core import FermihedralEncoder
from repro.core.encoder import OPERATOR_BITS
from repro.encodings import MajoranaEncoding
from repro.paulis import (
    PauliString,
    are_algebraically_independent,
    pairwise_anticommuting,
)
from repro.sat import solve_formula

_OPERATORS = "IXYZ"


def _strings_from_assignment(num_modes: int, labels: tuple[str, ...]):
    return [PauliString.from_label(label) for label in labels]


def _pin_assignment(encoder: FermihedralEncoder, strings) -> None:
    encoding = MajoranaEncoding(strings, validate=False)
    for variable, value in encoder.encoding_assignment(encoding).items():
        encoder.formula.add_unit(variable if value else -variable)


def _ground_truth_vacuum_witness(strings, num_modes: int) -> bool:
    """The paper's Section 3.5 condition: each pair has an X/Y column."""
    for mode in range(num_modes):
        even, odd = strings[2 * mode], strings[2 * mode + 1]
        if not any(
            even.operator(k) == "X" and odd.operator(k) == "Y"
            for k in range(num_modes)
        ):
            return False
    return True


def _all_one_mode_assignments():
    for left in _OPERATORS:
        for right in _OPERATORS:
            yield (left, right)


class TestOneModeExhaustive:
    def test_anticommutativity_exact(self):
        for labels in _all_one_mode_assignments():
            encoder = FermihedralEncoder(1)
            encoder.add_anticommutativity()
            strings = _strings_from_assignment(1, labels)
            _pin_assignment(encoder, strings)
            expected = pairwise_anticommuting(strings) and all(
                not s.is_identity for s in strings
            )
            # identity strings commute with everything, so the direct
            # anticommuting check already excludes them for pairs
            expected = strings[0].anticommutes_with(strings[1])
            assert solve_formula(encoder.formula).is_sat == expected, labels

    def test_algebraic_independence_exact(self):
        for labels in _all_one_mode_assignments():
            encoder = FermihedralEncoder(1)
            encoder.add_algebraic_independence()
            strings = _strings_from_assignment(1, labels)
            _pin_assignment(encoder, strings)
            expected = are_algebraically_independent(strings)
            assert solve_formula(encoder.formula).is_sat == expected, labels

    def test_vacuum_witness_exact(self):
        for labels in _all_one_mode_assignments():
            encoder = FermihedralEncoder(1)
            encoder.add_vacuum_preservation()
            strings = _strings_from_assignment(1, labels)
            _pin_assignment(encoder, strings)
            expected = _ground_truth_vacuum_witness(strings, 1)
            assert solve_formula(encoder.formula).is_sat == expected, labels

    def test_all_constraints_leave_exactly_xy(self):
        """With every paper constraint, the only valid 1-mode encoding is
        (X, Y)."""
        valid = []
        for labels in _all_one_mode_assignments():
            encoder = FermihedralEncoder(1)
            encoder.add_anticommutativity()
            encoder.add_algebraic_independence()
            encoder.add_vacuum_preservation()
            _pin_assignment(encoder, _strings_from_assignment(1, labels))
            if solve_formula(encoder.formula).is_sat:
                valid.append(labels)
        assert valid == [("X", "Y")]


class TestTwoModeSampled:
    @pytest.fixture(scope="class")
    def assignments(self):
        rng = random.Random(17)
        sampled = {
            tuple(rng.choice(_OPERATORS) + rng.choice(_OPERATORS) for _ in range(4))
            for _ in range(120)
        }
        # make sure known-valid encodings are in the pool
        sampled.add(("IX", "IY", "XZ", "YZ"))  # JW
        sampled.add(("XI", "YI", "ZX", "ZY"))
        sampled.add(("IX", "IX", "XZ", "YZ"))  # duplicate: invalid
        return sorted(sampled)

    def test_anticommutativity_sampled(self, assignments):
        for labels in assignments:
            encoder = FermihedralEncoder(2)
            encoder.add_anticommutativity()
            strings = _strings_from_assignment(2, labels)
            _pin_assignment(encoder, strings)
            expected = pairwise_anticommuting(strings) and all(
                not left == right
                for i, left in enumerate(strings)
                for right in strings[i + 1:]
            )
            expected = all(
                strings[i].anticommutes_with(strings[j])
                for i in range(4)
                for j in range(i + 1, 4)
            )
            assert solve_formula(encoder.formula).is_sat == expected, labels

    def test_algebraic_independence_sampled(self, assignments):
        for labels in assignments:
            encoder = FermihedralEncoder(2)
            encoder.add_algebraic_independence()
            strings = _strings_from_assignment(2, labels)
            _pin_assignment(encoder, strings)
            expected = are_algebraically_independent(strings)
            assert solve_formula(encoder.formula).is_sat == expected, labels

    def test_vacuum_witness_sampled(self, assignments):
        for labels in assignments:
            encoder = FermihedralEncoder(2)
            encoder.add_vacuum_preservation()
            strings = _strings_from_assignment(2, labels)
            _pin_assignment(encoder, strings)
            expected = _ground_truth_vacuum_witness(strings, 2)
            assert solve_formula(encoder.formula).is_sat == expected, labels

    def test_weight_bound_sampled(self, assignments):
        for labels in assignments[:40]:
            strings = _strings_from_assignment(2, labels)
            total = sum(s.weight for s in strings)
            for bound in (total - 1, total, total + 1):
                if bound < 0:
                    continue
                encoder = FermihedralEncoder(2)
                indicators = encoder.majorana_weight_indicators()
                encoder.add_weight_at_most(indicators, bound)
                _pin_assignment(encoder, strings)
                expected = total <= bound
                assert solve_formula(encoder.formula).is_sat == expected, (
                    labels, bound,
                )
