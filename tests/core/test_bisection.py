"""Tests for the bisection descent strategy (ablation feature)."""

import pytest

from repro.core import FermihedralConfig, SolverBudget, descend
from repro.core.descent import _structural_lower_bound
from repro.core.verify import verify_encoding
from repro.fermion import hubbard_chain


def _config(**kwargs):
    defaults = dict(
        strategy="bisection",
        budget=SolverBudget(max_conflicts=300_000, time_budget_s=60),
    )
    defaults.update(kwargs)
    return FermihedralConfig(**defaults)


class TestBisection:
    @pytest.mark.parametrize("num_modes,expected", [(1, 2), (2, 6), (3, 11)])
    def test_same_optimum_as_linear(self, num_modes, expected):
        result = descend(num_modes, config=_config())
        assert result.weight == expected
        assert result.proved_optimal
        assert result.strategy == "bisection"

    def test_valid_encodings(self):
        result = descend(3, config=_config())
        assert verify_encoding(result.encoding).valid

    def test_budget_exhaustion_not_marked_optimal(self):
        result = descend(4, config=_config(budget=SolverBudget(max_conflicts=1)))
        assert not result.proved_optimal

    def test_hamiltonian_dependent_bisection(self):
        hamiltonian = hubbard_chain(2, periodic=False)
        config = _config(budget=SolverBudget(time_budget_s=25))
        result = descend(4, config=config, hamiltonian=hamiltonian)
        assert result.encoding.hamiltonian_pauli_weight(hamiltonian) == result.weight
        assert verify_encoding(result.encoding).valid

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            FermihedralConfig(strategy="random-walk")


class TestStructuralLowerBound:
    def test_independent_bound_is_2n(self):
        assert _structural_lower_bound(4, None) == 8

    def test_dependent_bound_is_monomial_count(self):
        hamiltonian = hubbard_chain(2, periodic=False)
        assert _structural_lower_bound(4, hamiltonian) == len(hamiltonian.monomials)

    def test_bound_never_exceeds_optimum(self):
        # N=2 optimum is 6 >= structural bound 4
        assert _structural_lower_bound(2, None) <= 6
