"""Tests for hardware-aware compilation through the pipeline facade:
connectivity-weighted descent, routed-cost candidate selection, per-device
caching, and result serialization."""

import pytest

from repro.core import (
    FermihedralCompiler,
    FermihedralConfig,
    SolverBudget,
    descend,
    measured_weight,
)
from repro.core.baselines import candidate_baselines
from repro.core.pipeline import hardware_config
from repro.encodings import bravyi_kitaev
from repro.encodings.serialization import result_from_dict, result_to_dict
from repro.fermion import h2_hamiltonian
from repro.hardware import (
    HardwareCostModel,
    all_to_all_topology,
    connectivity_weights,
    get_device,
    grid_topology,
    linear_topology,
)
from repro.store import CompilationCache

_FAST = FermihedralConfig(budget=SolverBudget(time_budget_s=30.0))


class TestMeasuredWeight:
    def test_uniform_matches_legacy_metrics(self):
        encoding = bravyi_kitaev(4)
        assert measured_weight(encoding) == encoding.total_majorana_weight
        h2 = h2_hamiltonian()
        assert measured_weight(encoding, h2) == encoding.hamiltonian_pauli_weight(h2)

    def test_uniform_weights_scale_linearly(self):
        encoding = bravyi_kitaev(3)
        assert (
            measured_weight(encoding, qubit_weights=(3, 3, 3))
            == 3 * encoding.total_majorana_weight
        )

    def test_skewed_weights_count_support_qubits(self):
        encoding = bravyi_kitaev(2)  # strings on qubits {0, 1}
        plain = measured_weight(encoding)
        weighted = measured_weight(encoding, qubit_weights=(1, 2))
        # every qubit-1 position now counts twice
        qubit_one_hits = sum(1 for s in encoding.strings if 1 in s.support)
        assert weighted == plain + qubit_one_hits

    def test_hamiltonian_weighted_sums_monomial_images(self):
        encoding = bravyi_kitaev(4)
        h2 = h2_hamiltonian()
        total = 0
        for monomial in h2.monomials:
            image, _ = encoding.monomial_image(monomial)
            total += sum((2, 1, 1, 2)[q] for q in image.support)
        assert measured_weight(encoding, h2, (2, 1, 1, 2)) == total


class TestWeightedDescent:
    def test_uniform_weights_double_the_optimum(self):
        plain = descend(2, config=_FAST)
        doubled = descend(2, config=_FAST.with_qubit_weights((2, 2)))
        assert plain.proved_optimal and doubled.proved_optimal
        assert doubled.weight == 2 * plain.weight

    def test_skewed_weights_prove_weighted_optimum(self):
        result = descend(2, config=_FAST.with_qubit_weights((1, 3)))
        assert result.proved_optimal
        assert result.weight == measured_weight(
            result.encoding, qubit_weights=(1, 3)
        )

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            descend(3, config=_FAST.with_qubit_weights((1, 2)))

    def test_config_validates_weights(self):
        with pytest.raises(ValueError):
            FermihedralConfig(qubit_weights=(1, 0))
        with pytest.raises(ValueError):
            FermihedralConfig(qubit_weights=())

    def test_config_normalizes_to_int_tuple(self):
        config = FermihedralConfig(qubit_weights=[1, 2])
        assert config.qubit_weights == (1, 2)


class TestHardwareConfig:
    def test_no_device_passes_through(self):
        assert hardware_config(_FAST, None, 4) is _FAST

    def test_device_installs_connectivity_weights(self):
        line = linear_topology(5)
        config = hardware_config(_FAST, line, 4)
        assert config.qubit_weights == connectivity_weights(line, 4)

    def test_pinned_weights_win_over_device(self):
        pinned = _FAST.with_qubit_weights((1, 1, 1, 7))
        assert hardware_config(pinned, linear_topology(5), 4) is pinned


class TestDeviceBoundCompiler:
    def test_result_carries_device_and_hardware(self):
        compiler = FermihedralCompiler(2, _FAST, device="grid-2x2")
        result = compiler.hamiltonian_independent()
        assert result.device == "grid-2x2"
        assert result.hardware is not None
        assert result.hardware.two_qubit_count >= 0
        # weight is normalized to the plain objective
        assert result.weight == result.encoding.total_majorana_weight

    def test_never_routes_worse_than_any_baseline(self):
        h2 = h2_hamiltonian()
        device = get_device("ibmq-manila")
        compiler = FermihedralCompiler(4, _FAST, device=device)
        result = compiler.full_sat(h2)
        model = HardwareCostModel(device)
        for baseline in candidate_baselines(4, _FAST.vacuum_preservation):
            assert (result.hardware.two_qubit_count
                    <= model.cost_of_encoding(baseline, h2).two_qubit_count)

    def test_per_call_device_override(self):
        compiler = FermihedralCompiler(2, _FAST)
        plain = compiler.compile()
        assert plain.device is None and plain.hardware is None
        routed = compiler.compile(device="linear-2")
        assert routed.device == "linear-2"

    def test_device_smaller_than_encoding_rejected(self):
        with pytest.raises(ValueError):
            FermihedralCompiler(4, _FAST, device="linear-3")
        compiler = FermihedralCompiler(4, _FAST)
        with pytest.raises(ValueError):
            compiler.compile(device="linear-3")

    def test_device_accepts_topology_object(self):
        compiler = FermihedralCompiler(2, _FAST, device=all_to_all_topology(2))
        result = compiler.hamiltonian_independent()
        assert result.hardware.swap_count == 0


class TestDeviceCache:
    def test_no_cross_device_hits(self, tmp_path):
        cache = CompilationCache(tmp_path)
        first = FermihedralCompiler(3, _FAST, cache=cache, device="linear-3")
        first.compile()
        assert first.last_cache_status == "miss"

        other_shape = FermihedralCompiler(3, _FAST, cache=cache,
                                          device="all-to-all-3")
        other_shape.compile()
        assert other_shape.last_cache_status == "miss"

        device_free = FermihedralCompiler(3, _FAST, cache=cache)
        device_free.compile()
        assert device_free.last_cache_status == "miss"

    def test_same_shape_hits(self, tmp_path):
        cache = CompilationCache(tmp_path)
        FermihedralCompiler(3, _FAST, cache=cache, device="ring-3").compile()
        again = FermihedralCompiler(3, _FAST, cache=cache, device="ring-3")
        result = again.compile()
        assert again.last_cache_status == "hit"
        assert result.device == "ring-3"
        assert result.hardware is not None

    def test_baseline_winner_with_proved_descent_still_hits(self, tmp_path):
        """A device job whose routed-cost selection replaced the descent
        winner has proved_optimal=False, but is still final (the selection
        is deterministic) — reruns must hit, not re-descend."""
        import dataclasses

        from repro.encodings import jordan_wigner

        cache = CompilationCache(tmp_path)
        device = get_device("grid-2x2")
        compiler = FermihedralCompiler(2, _FAST, cache=cache, device=device)
        fresh = compiler.compile()
        assert fresh.descent.proved_optimal

        # Simulate the baseline-wins outcome on the stored entry: swap in a
        # baseline encoding and clear the headline proof flag.
        key = cache.key_for(
            num_modes=2, config=hardware_config(_FAST, device, 2),
            method="independent", device=device,
        )
        doctored = dataclasses.replace(
            fresh, encoding=jordan_wigner(2), proved_optimal=False
        )
        cache.put(key, doctored)

        rerun = FermihedralCompiler(2, _FAST, cache=cache, device=device)
        result = rerun.compile()
        assert rerun.last_cache_status == "hit"
        assert result.proved_optimal is False

    def test_unproved_descent_without_device_still_warm_starts(self, tmp_path):
        starved = FermihedralConfig(budget=SolverBudget(max_conflicts=1))
        cache = CompilationCache(tmp_path)
        FermihedralCompiler(3, starved, cache=cache, device="linear-3").compile()
        again = FermihedralCompiler(3, starved, cache=cache, device="linear-3")
        again.compile()
        assert again.last_cache_status == "warm-start"

    def test_hardware_fields_survive_the_cache_round_trip(self, tmp_path):
        cache = CompilationCache(tmp_path)
        compiler = FermihedralCompiler(2, _FAST, cache=cache, device="grid-2x2")
        fresh = compiler.compile()
        cached = FermihedralCompiler(2, _FAST, cache=cache,
                                     device="grid-2x2").compile()
        assert cached.hardware == fresh.hardware
        assert cached.device == fresh.device


class TestResultSerialization:
    def test_device_fields_round_trip(self):
        compiler = FermihedralCompiler(2, _FAST, device="grid-2x2")
        result = compiler.hamiltonian_independent()
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.device == result.device
        assert rebuilt.hardware == result.hardware

    def test_legacy_payload_without_device_fields_loads(self):
        result = FermihedralCompiler(2, _FAST).hamiltonian_independent()
        data = result_to_dict(result)
        del data["device"]
        del data["hardware"]
        rebuilt = result_from_dict(data)
        assert rebuilt.device is None
        assert rebuilt.hardware is None
