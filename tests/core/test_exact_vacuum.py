"""Tests for the exact-vacuum extension (beyond the paper's Section 3.5).

The paper's X/Y-pair witness is sufficient only when the pair factors
appropriately; the exact mode (equal flip masks + mod-4 Y-count relation)
is necessary and sufficient, so every decoded model must pass the
numerical ``a_j|0..0> = 0`` check.
"""

import pytest

from repro.core import FermihedralConfig, SolverBudget, descend, FermihedralEncoder
from repro.core.verify import verify_encoding
from repro.encodings import bravyi_kitaev, jordan_wigner, parity_encoding
from repro.sat import solve_formula


def _exact_config(**kwargs):
    defaults = dict(
        exact_vacuum=True,
        budget=SolverBudget(max_conflicts=200_000, time_budget_s=45),
    )
    defaults.update(kwargs)
    return FermihedralConfig(**defaults)


class TestExactVacuumConstraint:
    @pytest.mark.parametrize("num_modes", [1, 2, 3])
    def test_decoded_solutions_truly_preserve_vacuum(self, num_modes):
        result = descend(num_modes, config=_exact_config())
        report = verify_encoding(result.encoding)
        assert report.valid
        assert report.vacuum_preservation

    @pytest.mark.parametrize("num_modes", [1, 2, 3])
    def test_same_optimum_as_paper_mode_small_n(self, num_modes):
        """At small N the paper-mode optimum already preserves vacuum, so
        the exact constraint costs no weight."""
        paper = descend(num_modes, config=FermihedralConfig(
            budget=SolverBudget(max_conflicts=200_000)))
        exact = descend(num_modes, config=_exact_config())
        assert paper.proved_optimal and exact.proved_optimal
        assert exact.weight == paper.weight

    @pytest.mark.parametrize("builder", [jordan_wigner, bravyi_kitaev, parity_encoding])
    def test_vacuum_baselines_satisfy_exact_clauses(self, builder):
        """Pinning JW/BK/parity assignments must stay SAT: they genuinely
        preserve the vacuum, so the exact clauses cannot exclude them."""
        num_modes = 3
        encoder = FermihedralEncoder(num_modes)
        encoder.add_exact_vacuum_preservation()
        for variable, value in encoder.encoding_assignment(builder(num_modes)).items():
            encoder.formula.add_unit(variable if value else -variable)
        assert solve_formula(encoder.formula).is_sat

    def test_pair_without_vacuum_violates_exact_clauses(self):
        """An X/Z pair (valid encoding, no vacuum) must be excluded."""
        from repro.encodings import MajoranaEncoding
        from repro.paulis import PauliString

        encoding = MajoranaEncoding(
            [PauliString.from_label("X"), PauliString.from_label("Z")],
            validate=False,
        )
        encoder = FermihedralEncoder(1)
        encoder.add_exact_vacuum_preservation()
        for variable, value in encoder.encoding_assignment(encoding).items():
            encoder.formula.add_unit(variable if value else -variable)
        assert solve_formula(encoder.formula).is_unsat

    def test_swapped_pair_order_violates_exact_clauses(self):
        """(Y, X) pairing maps |0> to a†|0> instead: must be excluded."""
        from repro.encodings import MajoranaEncoding
        from repro.paulis import PauliString

        encoding = MajoranaEncoding(
            [PauliString.from_label("Y"), PauliString.from_label("X")],
            validate=False,
        )
        encoder = FermihedralEncoder(1)
        encoder.add_exact_vacuum_preservation()
        for variable, value in encoder.encoding_assignment(encoding).items():
            encoder.formula.add_unit(variable if value else -variable)
        assert solve_formula(encoder.formula).is_unsat

    def test_hamiltonian_dependent_exact_vacuum(self):
        """H-dependent descent under exact vacuum yields true vacuum
        preservation (the paper-mode witness can fail here)."""
        from repro.fermion import hubbard_chain

        hamiltonian = hubbard_chain(2, periodic=False)
        config = _exact_config(budget=SolverBudget(time_budget_s=25))
        result = descend(4, config=config, hamiltonian=hamiltonian)
        report = verify_encoding(result.encoding)
        assert report.vacuum_preservation
