"""Descent checkpoints: the document, the sinks, and crash-resume invariance."""

import dataclasses

import pytest

from repro import chaos
from repro.core import FermihedralConfig, SolverBudget, descend
from repro.core.checkpoint import (
    CacheCheckpointSink,
    CheckpointSink,
    DescentCheckpoint,
    MemoryCheckpointSink,
)
from repro.core.verify import verify_encoding
from repro.encodings import bravyi_kitaev
from repro.encodings.serialization import encoding_to_dict
from repro.store import CompilationCache
from repro.telemetry import Telemetry


@pytest.fixture(autouse=True)
def _no_ambient_chaos():
    chaos.reset()
    yield
    chaos.reset()


def make_checkpoint(num_modes: int = 2, **overrides) -> DescentCheckpoint:
    encoding = bravyi_kitaev(num_modes)
    fields = dict(
        strategy="linear",
        next_bound=encoding.total_majorana_weight - 1,
        encoding=encoding_to_dict(encoding),
        weight=encoding.total_majorana_weight,
        steps=[],
        lower=None,
        upper=None,
        solve_time_s=0.25,
        repairs=1,
        created_at=1_700_000_000.0,
    )
    fields.update(overrides)
    return DescentCheckpoint(**fields)


# -- the checkpoint document --------------------------------------------------


class TestDescentCheckpoint:
    def test_round_trip(self):
        checkpoint = make_checkpoint(lower=3, upper=7)
        clone = DescentCheckpoint.from_dict(checkpoint.to_dict())
        assert clone == checkpoint

    def test_version_mismatch_rejected(self):
        data = make_checkpoint().to_dict()
        data["checkpoint_format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            DescentCheckpoint.from_dict(data)

    def test_decode_encoding_round_trips(self):
        restored = make_checkpoint(3).decode_encoding(3)
        assert restored is not None
        assert restored.strings == bravyi_kitaev(3).strings

    def test_decode_encoding_rejects_wrong_modes(self):
        # A checkpoint for another job's shape must cold-start, not crash.
        assert make_checkpoint(3).decode_encoding(2) is None

    def test_decode_encoding_swallows_garbage(self):
        checkpoint = make_checkpoint(encoding={"strings": "not-a-list"})
        assert checkpoint.decode_encoding(2) is None


# -- sinks --------------------------------------------------------------------


class TestSinks:
    def test_base_sink_is_inert(self):
        sink = CheckpointSink()
        assert sink.load() is None
        assert sink.save(make_checkpoint()) is False
        sink.clear()  # no-op, no error

    def test_memory_sink_history_and_clear(self):
        sink = MemoryCheckpointSink()
        first = make_checkpoint(next_bound=7)
        second = make_checkpoint(next_bound=5)
        assert sink.save(first) is True
        assert sink.save(second) is True
        assert sink.load() == second
        assert [cp.next_bound for cp in sink.history] == [7, 5]
        sink.clear()
        assert sink.load() is None
        assert sink.cleared == 1
        # History survives a clear: that is the whole point of the sink.
        assert len(sink.history) == 2

    def test_cache_sink_round_trip_and_clear(self, tmp_path):
        cache = CompilationCache(tmp_path)
        sink = CacheCheckpointSink(cache, "deadbeef")
        assert sink.load() is None
        checkpoint = make_checkpoint(lower=2, upper=6)
        assert sink.save(checkpoint) is True
        assert cache.checkpoint_path("deadbeef").exists()
        assert sink.load() == checkpoint
        sink.clear()
        assert sink.load() is None
        assert not cache.checkpoint_path("deadbeef").exists()

    def test_cache_sink_tolerates_corruption(self, tmp_path):
        cache = CompilationCache(tmp_path)
        sink = CacheCheckpointSink(cache, "deadbeef")
        sink.save(make_checkpoint())
        cache.checkpoint_path("deadbeef").write_text("{not json")
        assert sink.load() is None

    def test_cache_sink_save_survives_write_faults(self, tmp_path):
        telemetry = Telemetry()
        cache = CompilationCache(tmp_path, telemetry=telemetry)
        sink = CacheCheckpointSink(cache, "deadbeef", telemetry=telemetry)
        chaos.configure("checkpoint.write=always")
        assert sink.save(make_checkpoint()) is False
        rendered = telemetry.render_metrics()
        assert "repro_checkpoint_failures_total" in rendered

    def test_checkpoints_are_not_cache_entries(self, tmp_path):
        # A checkpoint is transient execution state, not a result: it must
        # never show up in entry listings or survive as a cache hit.
        cache = CompilationCache(tmp_path)
        CacheCheckpointSink(cache, "deadbeef").save(make_checkpoint())
        assert cache.entries() == []


# -- descent integration ------------------------------------------------------


FAST_BUDGET = SolverBudget(max_conflicts=200_000, time_budget_s=60)


class TestDescentCheckpointing:
    def test_proved_descent_saves_then_clears(self):
        sink = MemoryCheckpointSink()
        result = descend(
            2, FermihedralConfig(budget=FAST_BUDGET), checkpoint=sink
        )
        assert result.proved_optimal
        assert result.weight == 6
        assert not result.resumed
        # Every SAT rung left a checkpoint; the proof then cleared it.
        assert len(sink.history) >= 1
        assert sink.cleared == 1
        assert sink.load() is None

    def test_unproved_descent_keeps_its_checkpoint(self):
        seed = MemoryCheckpointSink()
        descend(2, FermihedralConfig(budget=FAST_BUDGET), checkpoint=seed)
        # Resume from the first rung's checkpoint, but with a budget too
        # small to conclude anything: the run ends unproved and must NOT
        # clear the surviving checkpoint.
        sink = MemoryCheckpointSink(seed.history[0])
        result = descend(
            2,
            FermihedralConfig(budget=SolverBudget(max_conflicts=1)),
            checkpoint=sink,
        )
        assert result.resumed
        assert not result.proved_optimal
        assert sink.cleared == 0
        assert sink.load() is not None

    def test_strategy_mismatch_cold_starts(self):
        sink = MemoryCheckpointSink(make_checkpoint(strategy="bisection"))
        result = descend(
            2, FermihedralConfig(budget=FAST_BUDGET), checkpoint=sink
        )
        assert not result.resumed
        assert result.proved_optimal and result.weight == 6

    def test_corrupt_encoding_cold_starts(self):
        sink = MemoryCheckpointSink(
            make_checkpoint(encoding={"strings": "garbage"})
        )
        result = descend(
            2, FermihedralConfig(budget=FAST_BUDGET), checkpoint=sink
        )
        assert not result.resumed
        assert result.proved_optimal and result.weight == 6

    def test_descent_outlives_checkpoint_write_faults(self, tmp_path):
        # Checkpoint persistence is best-effort: a dying disk degrades
        # resumability, never correctness.
        telemetry = Telemetry()
        cache = CompilationCache(tmp_path, telemetry=telemetry)
        sink = CacheCheckpointSink(cache, "job-key", telemetry=telemetry)
        chaos.configure("checkpoint.write=always")
        result = descend(
            2,
            FermihedralConfig(budget=FAST_BUDGET),
            telemetry=telemetry,
            checkpoint=sink,
        )
        assert result.proved_optimal and result.weight == 6
        assert "repro_checkpoint_failures_total" in telemetry.render_metrics()


# -- crash-resume invariance (the property the chaos drill relies on) ---------


class TestCrashResumeInvariance:
    """Killing a descent after any completed rung and resuming from its
    checkpoint must converge to the same verdict as the uninterrupted
    run — the exact property the supervised-retry path depends on."""

    @pytest.mark.parametrize("incremental", [False, True],
                             ids=["cold", "incremental"])
    def test_linear_resume_matches_uninterrupted(self, incremental):
        config = FermihedralConfig(
            budget=FAST_BUDGET
        ).with_parallelism(incremental=incremental)
        recorder = MemoryCheckpointSink()
        full = descend(2, config, checkpoint=recorder)
        assert full.proved_optimal
        assert len(recorder.history) >= 1

        for crash_point, checkpoint in enumerate(recorder.history):
            sink = MemoryCheckpointSink(checkpoint)
            resumed = descend(2, config, checkpoint=sink)
            assert resumed.resumed, f"checkpoint {crash_point} did not resume"
            assert resumed.weight == full.weight
            assert resumed.proved_optimal == full.proved_optimal
            assert verify_encoding(resumed.encoding).valid
            # Steps accumulate across the crash: prior rungs replay from
            # the checkpoint, so the merged ladder is the full ladder.
            assert [s.bound for s in resumed.steps] == \
                [s.bound for s in full.steps]
            if not incremental:
                # The cold engine re-derives every rung from scratch, so a
                # resumed run IS the uninterrupted suffix: encodings match
                # bit for bit, not just by weight.
                assert resumed.encoding.strings == full.encoding.strings
            # A resumed run that proves the optimum clears its checkpoint.
            assert sink.cleared == 1 and sink.load() is None

    def test_bisection_resume_restores_the_window(self):
        config = dataclasses.replace(
            FermihedralConfig(budget=FAST_BUDGET), strategy="bisection"
        )
        recorder = MemoryCheckpointSink()
        full = descend(2, config, checkpoint=recorder)
        assert full.proved_optimal
        assert len(recorder.history) >= 1
        # Bisection checkpoints carry the surviving search window.
        assert all(cp.lower is not None and cp.upper is not None
                   for cp in recorder.history)

        for checkpoint in recorder.history:
            sink = MemoryCheckpointSink(checkpoint)
            resumed = descend(2, config, checkpoint=sink)
            assert resumed.resumed
            assert resumed.weight == full.weight
            assert resumed.proved_optimal
            assert verify_encoding(resumed.encoding).valid

    def test_resume_after_final_sat_rung_still_proves(self):
        # The tightest crash window: the worker died between the last SAT
        # rung and the closing UNSAT proof.  The resumed run only needs
        # the one UNSAT call, and its proof must check out.
        config = FermihedralConfig(budget=FAST_BUDGET, proof=True)
        recorder = MemoryCheckpointSink()
        full = descend(2, config, checkpoint=recorder)
        assert full.proved_optimal

        sink = MemoryCheckpointSink(recorder.history[-1])
        resumed = descend(2, config, checkpoint=sink)
        assert resumed.resumed
        assert resumed.proved_optimal
        assert resumed.weight == full.weight
        assert resumed.encoding.strings == full.encoding.strings
        assert resumed.proof_trace is not None
        from repro.sat.drat import check_trace

        assert check_trace(resumed.proof_trace).ok

    def test_resumes_bump_the_telemetry_counter(self):
        telemetry = Telemetry()
        recorder = MemoryCheckpointSink()
        config = FermihedralConfig(budget=FAST_BUDGET)
        descend(2, config, checkpoint=recorder)
        sink = MemoryCheckpointSink(recorder.history[0])
        descend(2, config, telemetry=telemetry, checkpoint=sink)
        assert "repro_descent_resumes_total" in telemetry.render_metrics()
