"""Incremental solving: assumptions, clause reuse, and the bound ladder."""

import itertools
import random

import pytest

from repro.sat import (
    CdclSolver,
    CnfFormula,
    add_at_most_ladder,
    add_weighted_ladder,
    dpll_solve,
    enumerate_models,
    evaluate_formula,
)


def _random_formula(seed: int, num_vars: int, num_clauses: int) -> CnfFormula:
    rng = random.Random(seed)
    formula = CnfFormula()
    formula.new_variables(num_vars)
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        formula.add_clause(
            rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(width)
        )
    return formula


def _pigeonhole(pigeons: int, holes: int) -> CnfFormula:
    formula = CnfFormula()
    slot = {}
    for p in range(pigeons):
        for h in range(holes):
            slot[p, h] = formula.new_variable()
    for p in range(pigeons):
        formula.add_clause(slot[p, h] for h in range(holes))
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            formula.add_clause((-slot[p1, h], -slot[p2, h]))
    return formula


class TestAssumptions:
    def test_sat_model_respects_assumptions(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, b))
        solver = CdclSolver(formula)
        result = solver.solve(assumptions=[-a])
        assert result.is_sat
        assert result.model[a] is False and result.model[b] is True

    def test_unsat_under_assumptions_is_flagged(self):
        formula = CnfFormula()
        a, b, c = formula.new_variables(3)
        formula.add_clause((a, b))
        formula.add_clause((-a, c))
        solver = CdclSolver(formula)
        result = solver.solve(assumptions=[-b, -c])
        assert result.is_unsat and result.under_assumptions

    def test_solver_state_survives_failed_assumptions(self):
        formula = CnfFormula()
        a, b, c = formula.new_variables(3)
        formula.add_clause((a, b))
        formula.add_clause((-a, c))
        solver = CdclSolver(formula)
        assert solver.solve(assumptions=[-b, -c]).is_unsat
        again = solver.solve()
        assert again.is_sat
        assert evaluate_formula(formula, again.model)

    def test_globally_unsat_is_not_blamed_on_assumptions(self):
        formula = CnfFormula()
        a = formula.new_variable()
        formula.add_unit(a)
        formula.add_unit(-a)
        result = CdclSolver(formula).solve(assumptions=[a])
        assert result.is_unsat and not result.under_assumptions

    def test_conflicting_assumption_pair(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, b))
        result = CdclSolver(formula).solve(assumptions=[a, -a])
        assert result.is_unsat and result.under_assumptions

    def test_assumption_outside_pool_rejected(self):
        formula = CnfFormula()
        formula.new_variable()
        solver = CdclSolver(formula)
        with pytest.raises(ValueError):
            solver.solve(assumptions=[5])
        with pytest.raises(ValueError):
            solver.solve(assumptions=[0])

    def test_assumptions_agree_with_added_units(self):
        """Assuming L must answer exactly like solving with clause (L)."""
        for seed in range(60):
            formula = _random_formula(seed, num_vars=6, num_clauses=14)
            solver = CdclSolver(formula)
            for variable in range(1, 7):
                for literal in (variable, -variable):
                    assumed = solver.solve(assumptions=[literal])
                    augmented = formula.copy()
                    augmented.add_clause((literal,))
                    assert assumed.status == dpll_solve(augmented).status
                    if assumed.is_sat:
                        assert evaluate_formula(formula, assumed.model)
                        assert assumed.model[abs(literal)] is (literal > 0)


class TestClauseReuse:
    def test_learned_clauses_survive_between_calls(self):
        formula = _pigeonhole(5, 5)  # SAT; all-true phases force conflicts
        solver = CdclSolver(
            formula,
            seed_phases={v: True for v in range(1, formula.num_variables + 1)},
        )
        first = solver.solve()
        assert first.is_sat and first.conflicts > 0
        assert len(solver.learned) > 0
        carried = len(solver.learned)
        second = solver.solve()
        assert second.is_sat
        # the second call starts from the first call's clause database
        assert second.learned_clauses >= carried
        assert second.conflicts == 0  # saved phases walk straight to a model

    def test_unsat_proof_is_remembered(self):
        formula = _pigeonhole(5, 4)  # UNSAT: learning required to prove it
        solver = CdclSolver(formula)
        first = solver.solve()
        second = solver.solve()
        assert first.is_unsat and second.is_unsat
        assert first.conflicts > 0
        assert second.conflicts == 0  # the root-level proof persists

    def test_incremental_add_clause_enumerates_models(self):
        formula = _random_formula(3, num_vars=5, num_clauses=6)
        expected = len(list(enumerate_models(formula, list(range(1, 6)), limit=64)))
        solver = CdclSolver(formula)
        found = 0
        while True:
            result = solver.solve()
            if not result.is_sat:
                break
            found += 1
            assert evaluate_formula(formula, result.model)
            blocking = [
                (-v if result.model[v] else v) for v in range(1, 6)
            ]
            solver.add_clause(blocking)
        assert found == expected

    def test_add_clause_rejects_unknown_variable(self):
        formula = CnfFormula()
        formula.new_variable()
        solver = CdclSolver(formula)
        with pytest.raises(ValueError):
            solver.add_clause([2])

    def test_set_phases_steers_first_model(self):
        formula = CnfFormula()
        variables = formula.new_variables(4)
        formula.add_clause(variables)  # everything else is free
        solver = CdclSolver(formula)
        solver.set_phases({v: True for v in variables})
        result = solver.solve()
        assert all(result.model[v] for v in variables)
        solver.add_clause([-variables[0]])
        solver.set_phases({v: False for v in variables[1:]})
        result = solver.solve()
        assert result.model[variables[0]] is False


class TestLadder:
    def test_ladder_bounds_match_bruteforce(self):
        rng = random.Random(11)
        for _ in range(40):
            count = rng.randint(1, 5)
            formula = CnfFormula()
            literals = formula.new_variables(count)
            max_bound = rng.randint(0, count + 1)
            selectors = add_at_most_ladder(formula, literals, max_bound)
            assert len(selectors) == max_bound + 1
            forced = [v for v in literals if rng.random() < 0.5]
            solver = CdclSolver(formula)
            for bound in range(max_bound + 1):
                result = solver.solve(assumptions=[selectors[bound]] + forced)
                assert result.is_sat == (len(forced) <= bound)
                if result.is_sat:
                    assert sum(result.model[v] for v in literals) <= bound

    def test_ladder_descends_like_fresh_constraints(self):
        """Tightening the assumed bound on one instance finds the same
        SAT/UNSAT frontier as rebuilding the formula per bound."""
        formula = CnfFormula()
        literals = formula.new_variables(6)
        formula.add_clause(literals[:3])  # at least one of the first three
        formula.add_clause(literals[3:])  # and one of the last three
        selectors = add_at_most_ladder(formula, literals, 6)
        solver = CdclSolver(formula)
        statuses = [
            solver.solve(assumptions=[selectors[b]]).status for b in range(6, -1, -1)
        ]
        assert statuses == ["SAT"] * 5 + ["UNSAT", "UNSAT"]

    def test_weighted_ladder(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        selectors = add_weighted_ladder(formula, [a, b], [2, 3], 5)
        solver = CdclSolver(formula)
        for bound in range(6):
            result = solver.solve(assumptions=[selectors[bound], a, b])
            assert result.is_sat == (bound >= 5)
        result = solver.solve(assumptions=[selectors[2], b])
        assert result.is_unsat and result.under_assumptions
        result = solver.solve(assumptions=[selectors[2], a])
        assert result.is_sat

    def test_vacuous_bounds_are_tautological(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        selectors = add_at_most_ladder(formula, [a, b], 4)
        solver = CdclSolver(formula)
        result = solver.solve(assumptions=[selectors[4], a, b])
        assert result.is_sat

    def test_negative_bound_rejected(self):
        formula = CnfFormula()
        a = formula.new_variable()
        with pytest.raises(ValueError):
            add_at_most_ladder(formula, [a], -1)
