"""Tests for the sequential-counter cardinality encoding."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import CnfFormula, add_at_most_k, add_at_most_k_weighted, dpll_solve


def _count_models(num_inputs: int, bound: int) -> int:
    """Count assignments of the inputs satisfying the at-most-k constraint."""
    satisfiable = 0
    for bits in itertools.product([False, True], repeat=num_inputs):
        formula = CnfFormula()
        inputs = formula.new_variables(num_inputs)
        add_at_most_k(formula, inputs, bound)
        for variable, bit in zip(inputs, bits):
            formula.add_unit(variable if bit else -variable)
        if dpll_solve(formula).is_sat:
            satisfiable += 1
            assert sum(bits) <= bound
    return satisfiable


def _binomial_prefix(n: int, k: int) -> int:
    from math import comb

    return sum(comb(n, i) for i in range(0, min(k, n) + 1))


class TestAtMostK:
    @pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 3), (5, 0), (4, 4)])
    def test_exactly_the_right_models(self, n, k):
        assert _count_models(n, k) == _binomial_prefix(n, k)

    def test_bound_above_length_is_noop(self):
        formula = CnfFormula()
        inputs = formula.new_variables(3)
        add_at_most_k(formula, inputs, 5)
        assert formula.num_clauses == 0

    def test_bound_zero_forces_all_false(self):
        formula = CnfFormula()
        inputs = formula.new_variables(3)
        add_at_most_k(formula, inputs, 0)
        result = dpll_solve(formula)
        assert result.is_sat
        assert not any(result.model[v] for v in inputs)

    def test_negative_bound_rejected(self):
        formula = CnfFormula()
        inputs = formula.new_variables(2)
        with pytest.raises(ValueError):
            add_at_most_k(formula, inputs, -1)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(0, 6), st.integers(0, 63))
    def test_agrees_with_popcount(self, n, k, assignment_bits):
        bits = [(assignment_bits >> i) & 1 == 1 for i in range(n)]
        formula = CnfFormula()
        inputs = formula.new_variables(n)
        add_at_most_k(formula, inputs, k)
        for variable, bit in zip(inputs, bits):
            formula.add_unit(variable if bit else -variable)
        assert dpll_solve(formula).is_sat == (sum(bits) <= k)


class TestWeighted:
    def test_weighted_sum_enforced(self):
        for bits in itertools.product([False, True], repeat=3):
            formula = CnfFormula()
            inputs = formula.new_variables(3)
            weights = [2, 1, 3]
            add_at_most_k_weighted(formula, inputs, weights, 3)
            for variable, bit in zip(inputs, bits):
                formula.add_unit(variable if bit else -variable)
            total = sum(w for w, bit in zip(weights, bits) if bit)
            assert dpll_solve(formula).is_sat == (total <= 3)

    def test_length_mismatch_rejected(self):
        formula = CnfFormula()
        inputs = formula.new_variables(2)
        with pytest.raises(ValueError):
            add_at_most_k_weighted(formula, inputs, [1], 1)

    def test_negative_weight_rejected(self):
        formula = CnfFormula()
        inputs = formula.new_variables(1)
        with pytest.raises(ValueError):
            add_at_most_k_weighted(formula, inputs, [-1], 1)
