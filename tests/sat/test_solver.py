"""Tests for the CDCL solver, including cross-validation against DPLL."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    SAT,
    UNKNOWN,
    UNSAT,
    CdclSolver,
    CnfFormula,
    dpll_solve,
    evaluate_formula,
    luby,
    solve_formula,
)


def _random_formula(seed: int, num_vars: int, num_clauses: int, width: int = 3) -> CnfFormula:
    rng = random.Random(seed)
    formula = CnfFormula()
    formula.new_variables(num_vars)
    for _ in range(num_clauses):
        clause_width = rng.randint(1, width)
        formula.add_clause(
            rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(clause_width)
        )
    return formula


def _pigeonhole(pigeons: int, holes: int) -> CnfFormula:
    formula = CnfFormula()
    slot = {}
    for p in range(pigeons):
        for h in range(holes):
            slot[p, h] = formula.new_variable()
    for p in range(pigeons):
        formula.add_clause(slot[p, h] for h in range(holes))
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            formula.add_clause((-slot[p1, h], -slot[p2, h]))
    return formula


class TestBasics:
    def test_trivial_sat(self):
        formula = CnfFormula()
        a = formula.new_variable()
        formula.add_unit(a)
        result = solve_formula(formula)
        assert result.is_sat
        assert result.model[a] is True

    def test_trivial_unsat(self):
        formula = CnfFormula()
        a = formula.new_variable()
        formula.add_unit(a)
        formula.add_unit(-a)
        assert solve_formula(formula).is_unsat

    def test_no_clauses_sat(self):
        formula = CnfFormula()
        formula.new_variables(3)
        result = solve_formula(formula)
        assert result.is_sat
        assert set(result.model) == {1, 2, 3}

    def test_tautology_ignored(self):
        formula = CnfFormula()
        a = formula.new_variable()
        formula.add_clause((a, -a))
        assert solve_formula(formula).is_sat

    def test_duplicate_literals_handled(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, a, b))
        formula.add_unit(-a)
        result = solve_formula(formula)
        assert result.is_sat and result.model[b]

    def test_unit_propagation_chain(self):
        formula = CnfFormula()
        variables = formula.new_variables(5)
        formula.add_unit(variables[0])
        for left, right in zip(variables, variables[1:]):
            formula.add_clause((-left, right))
        result = solve_formula(formula)
        assert result.is_sat
        assert all(result.model[v] for v in variables)


class TestConflictDriven:
    def test_pigeonhole_unsat(self):
        assert solve_formula(_pigeonhole(4, 3)).is_unsat
        assert solve_formula(_pigeonhole(6, 5)).is_unsat

    def test_pigeonhole_sat_when_feasible(self):
        result = solve_formula(_pigeonhole(3, 3))
        assert result.is_sat

    def test_conflict_budget_returns_unknown(self):
        result = solve_formula(_pigeonhole(8, 7), max_conflicts=5)
        assert result.status == UNKNOWN

    def test_statistics_populated(self):
        result = solve_formula(_pigeonhole(5, 4))
        assert result.conflicts > 0
        assert result.propagations > 0
        assert result.elapsed_s >= 0.0


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(40))
    def test_agrees_with_dpll_small(self, seed):
        formula = _random_formula(seed, num_vars=8, num_clauses=30)
        cdcl = solve_formula(formula)
        dpll = dpll_solve(formula)
        assert cdcl.status == dpll.status
        if cdcl.is_sat:
            assert evaluate_formula(formula, cdcl.model)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.integers(3, 10), st.integers(1, 40))
    def test_agrees_with_dpll_property(self, seed, num_vars, num_clauses):
        formula = _random_formula(seed, num_vars, num_clauses)
        cdcl = solve_formula(formula)
        dpll = dpll_solve(formula)
        assert cdcl.status == dpll.status
        if cdcl.is_sat:
            assert evaluate_formula(formula, cdcl.model)

    def test_phase_transition_models_valid(self):
        for seed in range(5):
            formula = _random_formula(seed, num_vars=40, num_clauses=170)
            result = solve_formula(formula)
            assert result.status in (SAT, UNSAT)
            if result.is_sat:
                assert evaluate_formula(formula, result.model)


class TestSeedPhases:
    def test_seed_phases_bias_model(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, b))  # both-true, a-true, b-true all valid
        result = solve_formula(formula, seed_phases={a: True, b: False})
        assert result.is_sat
        assert result.model[a] is True

    def test_out_of_range_seeds_ignored(self):
        formula = CnfFormula()
        formula.new_variable()
        formula.add_unit(1)
        result = solve_formula(formula, seed_phases={99: True})
        assert result.is_sat


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            luby(0)

    def test_values_are_powers_of_two(self):
        for index in range(1, 200):
            value = luby(index)
            assert value & (value - 1) == 0
