"""Tests for the CNF container and DIMACS I/O."""

import pytest

from repro.sat import CnfFormula, evaluate_clause, evaluate_formula


class TestVariables:
    def test_allocation_is_sequential(self):
        formula = CnfFormula()
        assert formula.new_variable() == 1
        assert formula.new_variable() == 2
        assert formula.num_variables == 2

    def test_named_lookup(self):
        formula = CnfFormula()
        variable = formula.new_variable("x")
        assert formula.variable("x") == variable

    def test_duplicate_name_rejected(self):
        formula = CnfFormula()
        formula.new_variable("x")
        with pytest.raises(ValueError):
            formula.new_variable("x")

    def test_bulk_allocation_with_prefix(self):
        formula = CnfFormula()
        variables = formula.new_variables(3, prefix="v")
        assert variables == [1, 2, 3]
        assert formula.variable("v[1]") == 2


class TestClauses:
    def test_add_and_count(self):
        formula = CnfFormula()
        formula.new_variables(2)
        formula.add_clause((1, -2))
        formula.add_unit(2)
        assert formula.num_clauses == 2

    def test_empty_clause_rejected(self):
        formula = CnfFormula()
        with pytest.raises(ValueError):
            formula.add_clause(())

    def test_zero_literal_rejected(self):
        formula = CnfFormula()
        formula.new_variable()
        with pytest.raises(ValueError):
            formula.add_clause((0,))

    def test_unallocated_variable_rejected(self):
        formula = CnfFormula()
        with pytest.raises(ValueError):
            formula.add_clause((1,))

    def test_average_clause_length(self):
        formula = CnfFormula()
        formula.new_variables(3)
        formula.add_clause((1, 2))
        formula.add_clause((1, 2, 3))
        assert formula.average_clause_length() == pytest.approx(2.5)

    def test_average_clause_length_empty(self):
        assert CnfFormula().average_clause_length() == 0.0


class TestDimacs:
    def test_round_trip(self):
        formula = CnfFormula()
        formula.new_variables(3)
        formula.add_clause((1, -2))
        formula.add_clause((2, 3, -1))
        text = formula.to_dimacs()
        parsed = CnfFormula.from_dimacs(text)
        assert parsed.num_variables == 3
        assert list(parsed.clauses()) == list(formula.clauses())

    def test_parses_comments_and_blanks(self):
        text = "c a comment\n\np cnf 2 1\n1 -2 0\n"
        parsed = CnfFormula.from_dimacs(text)
        assert parsed.num_clauses == 1

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(ValueError):
            CnfFormula.from_dimacs("p wrong 2 1\n1 0\n")

    def test_clause_before_header_rejected(self):
        with pytest.raises(ValueError):
            CnfFormula.from_dimacs("1 0\np cnf 1 1\n")

    def test_trailing_clause_rejected(self):
        with pytest.raises(ValueError):
            CnfFormula.from_dimacs("p cnf 2 1\n1 -2\n")


class TestCopyAndEvaluate:
    def test_copy_is_independent(self):
        formula = CnfFormula()
        formula.new_variables(2)
        formula.add_clause((1, 2))
        duplicate = formula.copy()
        duplicate.add_clause((-1,))
        assert formula.num_clauses == 1
        assert duplicate.num_clauses == 2

    def test_evaluate_clause(self):
        assert evaluate_clause((1, -2), {1: True, 2: True})
        assert not evaluate_clause((-1,), {1: True})

    def test_evaluate_formula(self):
        formula = CnfFormula()
        formula.new_variables(2)
        formula.add_clause((1, 2))
        formula.add_clause((-1, 2))
        assert evaluate_formula(formula, {1: False, 2: True})
        assert not evaluate_formula(formula, {1: True, 2: False})
