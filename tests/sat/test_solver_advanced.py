"""Adversarial and structural tests for the CDCL solver.

Targets the machinery the basic tests miss: XOR chains (the dominant
structure in Fermihedral instances), restart/reduction paths, model
validity on Tseitin-heavy formulas, and budget semantics.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    CnfFormula,
    add_at_most_k,
    dpll_solve,
    encode_xor_many,
    evaluate_formula,
    solve_formula,
)


def _xor_chain_formula(num_vars: int, parity: int, seed: int) -> CnfFormula:
    """Random XOR system: k constraints over subsets, parities fixed."""
    rng = random.Random(seed)
    formula = CnfFormula()
    variables = formula.new_variables(num_vars)
    for _ in range(num_vars):
        subset = rng.sample(variables, rng.randint(2, num_vars))
        gate = encode_xor_many(formula, subset)
        formula.add_unit(gate if rng.random() < 0.5 else -gate)
    return formula


class TestXorStructures:
    @pytest.mark.parametrize("seed", range(10))
    def test_xor_systems_agree_with_dpll(self, seed):
        formula = _xor_chain_formula(6, parity=1, seed=seed)
        cdcl = solve_formula(formula)
        reference = dpll_solve(formula)
        assert cdcl.status == reference.status
        if cdcl.is_sat:
            assert evaluate_formula(formula, cdcl.model)

    def test_inconsistent_xor_pair_unsat(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        gate1 = encode_xor_many(formula, [a, b])
        gate2 = encode_xor_many(formula, [a, b])
        formula.add_unit(gate1)
        formula.add_unit(-gate2)
        assert solve_formula(formula).is_unsat

    def test_long_xor_chain_sat(self):
        formula = CnfFormula()
        variables = formula.new_variables(40)
        gate = encode_xor_many(formula, variables)
        formula.add_unit(gate)
        result = solve_formula(formula)
        assert result.is_sat
        assert sum(result.model[v] for v in variables) % 2 == 1


class TestCardinalityInteraction:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 8), st.integers(0, 1000))
    def test_at_most_k_with_forcing_clauses(self, n, k, seed):
        rng = random.Random(seed)
        formula = CnfFormula()
        variables = formula.new_variables(n)
        add_at_most_k(formula, variables, min(k, n))
        forced = rng.sample(variables, rng.randint(0, n))
        for variable in forced:
            formula.add_unit(variable)
        result = solve_formula(formula)
        expected_sat = len(forced) <= min(k, n)
        assert result.is_sat == expected_sat
        if result.is_sat:
            assert sum(result.model[v] for v in variables) <= min(k, n)

    def test_exactly_boundary(self):
        formula = CnfFormula()
        variables = formula.new_variables(6)
        add_at_most_k(formula, variables, 3)
        formula.add_clause(variables)  # at least one
        result = solve_formula(formula)
        assert result.is_sat
        count = sum(result.model[v] for v in variables)
        assert 1 <= count <= 3


class TestSolverInternals:
    def test_restarts_occur_on_hard_instances(self):
        # A hard random instance at the phase transition forces restarts.
        rng = random.Random(7)
        formula = CnfFormula()
        formula.new_variables(60)
        for _ in range(256):
            vs = rng.sample(range(1, 61), 3)
            formula.add_clause(rng.choice((-1, 1)) * v for v in vs)
        result = solve_formula(formula)
        assert result.status in ("SAT", "UNSAT")

    def test_zero_conflict_budget(self):
        formula = CnfFormula()
        a, b, c = formula.new_variables(3)
        formula.add_clause((a, b))
        formula.add_clause((-a, c))
        result = solve_formula(formula, max_conflicts=0)
        # no conflicts needed: pure decisions suffice -> still SAT
        assert result.is_sat

    def test_time_budget_respected(self):
        import itertools

        formula = CnfFormula()
        slot = {}
        pigeons, holes = 10, 9
        for p in range(pigeons):
            for h in range(holes):
                slot[p, h] = formula.new_variable()
        for p in range(pigeons):
            formula.add_clause(slot[p, h] for h in range(holes))
        for h in range(holes):
            for p1, p2 in itertools.combinations(range(pigeons), 2):
                formula.add_clause((-slot[p1, h], -slot[p2, h]))
        result = solve_formula(formula, time_budget_s=0.2)
        assert result.status == "UNKNOWN"
        assert result.elapsed_s < 5.0

    def test_duplicate_clauses_harmless(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        for _ in range(50):
            formula.add_clause((a, b))
            formula.add_clause((-a, b))
        result = solve_formula(formula)
        assert result.is_sat
        assert result.model[b]

    def test_all_variables_in_model_even_unconstrained(self):
        formula = CnfFormula()
        formula.new_variables(5)
        formula.add_unit(3)
        result = solve_formula(formula)
        assert set(result.model) == {1, 2, 3, 4, 5}
        assert result.model[3] is True
