"""Property battery for DRAT proof emission and the independent checker.

Every UNSAT answer the CDCL solver gives — with or without assumptions,
with or without preprocessing in front — must come with a trace the
:mod:`repro.sat.drat` checker accepts against the *original* CNF, and
corrupted traces must be rejected.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    UNSAT,
    CnfFormula,
    CdclSolver,
    ProofLog,
    ProofTrace,
    build_trace,
    check_drat,
    check_trace,
    dpll_solve,
    evaluate_formula,
    parse_drat,
    preprocess,
    serialize_drat,
)


@st.composite
def cnf_instances(draw):
    """A small random CNF: (num_vars, clauses), biased toward UNSAT."""
    num_vars = draw(st.integers(2, 7))
    literals = st.integers(1, num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(literals, min_size=1, max_size=3, unique_by=abs)
    clauses = draw(st.lists(clause, min_size=1, max_size=4 * num_vars))
    return num_vars, [tuple(c) for c in clauses]


@st.composite
def cnf_with_assumptions(draw):
    num_vars, clauses = draw(cnf_instances())
    variables = draw(
        st.lists(st.integers(1, num_vars), max_size=3, unique=True)
    )
    signs = draw(st.lists(st.booleans(), min_size=len(variables),
                          max_size=len(variables)))
    assumptions = tuple(
        v if sign else -v for v, sign in zip(variables, signs)
    )
    return num_vars, clauses, assumptions


def _build(num_vars, clauses) -> CnfFormula:
    formula = CnfFormula()
    formula.new_variables(num_vars)
    formula.add_clauses(clauses)
    return formula


def _solve_logged(num_vars, clauses, assumptions=(), use_preprocess=False):
    """Solve the way the descent does, returning (status, trace | None)."""
    formula = _build(num_vars, clauses)
    log = ProofLog()
    meta = {"instance": "fuzz"}
    if use_preprocess:
        pre = preprocess(
            formula, frozen=[abs(lit) for lit in assumptions], proof=log
        )
        if pre.unsat:
            return UNSAT, build_trace(formula, log, assumptions, meta)
        solver = CdclSolver(pre.formula, proof=log)
    else:
        solver = CdclSolver(formula, proof=log)
    result = solver.solve(assumptions=list(assumptions))
    if result.is_unsat:
        return UNSAT, build_trace(formula, log, assumptions, meta)
    return result.status, None


def _drop_empty_clause(trace: ProofTrace) -> ProofTrace:
    """The trace with its refuting empty-clause addition removed."""
    steps = [s for s in parse_drat(trace.proof) if s != ("a", ())]
    return ProofTrace(
        num_variables=trace.num_variables,
        cnf=trace.cnf,
        assumptions=trace.assumptions,
        axioms=trace.axioms,
        proof=serialize_drat(steps),
        meta=trace.meta,
    )


class TestUnsatTracesCheck:
    @settings(max_examples=60, deadline=None)
    @given(cnf_instances())
    def test_plain_unsat_trace_verifies(self, instance):
        num_vars, clauses = instance
        status, trace = _solve_logged(num_vars, clauses)
        assert status == dpll_solve(_build(num_vars, clauses)).status
        if trace is not None:
            verdict = check_trace(trace)
            assert verdict.ok, verdict.reason
            # ...and removing the refutation must break it.
            assert not check_trace(_drop_empty_clause(trace))

    @settings(max_examples=60, deadline=None)
    @given(cnf_with_assumptions())
    def test_unsat_under_assumptions_verifies(self, instance):
        num_vars, clauses, assumptions = instance
        status, trace = _solve_logged(num_vars, clauses, assumptions)
        if trace is not None:
            verdict = check_trace(trace)
            assert verdict.ok, verdict.reason

    @settings(max_examples=60, deadline=None)
    @given(cnf_with_assumptions())
    def test_preprocessed_unsat_verifies_against_original(self, instance):
        num_vars, clauses, assumptions = instance
        status, trace = _solve_logged(
            num_vars, clauses, assumptions, use_preprocess=True
        )
        plain_status, _ = _solve_logged(num_vars, clauses, assumptions)
        assert status == plain_status
        if trace is not None:
            # The embedded CNF is the *original* formula, so a pass here
            # certifies the whole preprocess-then-solve chain.
            assert trace.cnf == _build(num_vars, clauses).to_dimacs()
            verdict = check_trace(trace)
            assert verdict.ok, verdict.reason

    @settings(max_examples=30, deadline=None)
    @given(cnf_instances())
    def test_sat_answers_evaluate(self, instance):
        num_vars, clauses = instance
        formula = _build(num_vars, clauses)
        log = ProofLog()
        solver = CdclSolver(formula, proof=log)
        result = solver.solve()
        if result.is_sat:
            assert evaluate_formula(formula, result.model)


# A crafted asymmetric instance where flipping the first learned literal
# is *guaranteed* to break the proof: the formula forces x=False (any
# x=True branch contradicts via z), so "x" is not RUP while "-x" is.
_CRAFTED_CNF = [
    (-1, 3), (-1, -3),          # x -> z and x -> -z: x must be False
    (1, 2, 4), (1, 2, -4),      # with x False, a (=2) must be True...
    (1, -2, 4), (1, -2, -4),    # ...and also False: UNSAT
]


def _crafted_premises():
    return [tuple(c) for c in _CRAFTED_CNF]


class TestMutationsRejected:
    def test_crafted_trace_passes(self):
        steps = [("a", (-1,)), ("a", (2,)), ("a", ())]
        assert check_drat(_crafted_premises(), steps)

    def test_flipped_literal_fails(self):
        steps = [("a", (1,)), ("a", (2,)), ("a", ())]
        verdict = check_drat(_crafted_premises(), steps)
        assert not verdict.ok
        assert "neither RUP nor RAT" in verdict.reason

    def test_dropped_line_fails(self):
        steps = [("a", (-1,)), ("a", ())]
        # Without the (2) step, UP from the remaining clauses cannot
        # close the refutation.
        assert not check_drat(_crafted_premises(), steps)

    def test_missing_empty_clause_fails(self):
        steps = [("a", (-1,)), ("a", (2,))]
        verdict = check_drat(_crafted_premises(), steps)
        assert not verdict.ok
        assert "empty clause" in verdict.reason

    def test_corrupted_artifact_json_is_rejected(self):
        status, trace = _solve_logged(1, [(1,), (-1,)])
        assert trace is not None
        data = trace.to_dict()
        data["proof"] = data["proof"].replace("0", "x", 1)
        corrupted = ProofTrace.from_dict(data)
        verdict = check_trace(corrupted)
        assert not verdict.ok
        assert "malformed DRAT" in verdict.reason

    def test_out_of_range_literal_rejected(self):
        status, trace = _solve_logged(1, [(1,), (-1,)])
        data = trace.to_dict()
        data["assumptions"] = [99]
        verdict = check_trace(ProofTrace.from_dict(data))
        assert not verdict.ok
        assert "out of range" in verdict.reason


class TestCheckerUnits:
    def test_deletion_weakens_but_refutation_survives(self):
        premises = [(1,), (-1,), (1, 2)]
        steps = [("d", (1, 2)), ("a", ())]
        assert check_drat(premises, steps)

    def test_deleting_a_needed_clause_breaks_the_proof(self):
        premises = [(1,), (-1,)]
        steps = [("d", (1,)), ("a", ())]
        assert not check_drat(premises, steps)

    def test_unmatched_deletion_is_ignored(self):
        premises = [(1,), (-1,)]
        steps = [("d", (5, 6)), ("a", ())]
        assert check_drat(premises, steps)

    def test_tautological_addition_is_fine(self):
        premises = [(1,), (-1,)]
        steps = [("a", (2, -2)), ("a", ())]
        assert check_drat(premises, steps)

    def test_rat_on_first_literal(self):
        from repro.sat.drat import _DratChecker

        # (1, 2) is not RUP against (-1, -2, 3), but it is RAT on its
        # first literal: the only resolvent is tautological (blocked
        # clause).  Against (-1, 3) the resolvent (2, 3) is neither
        # tautological nor RUP, so RAT must fail.
        blocked = _DratChecker([(-1, -2, 3)])
        assert not blocked._check_rup((1, 2))
        assert blocked._check_rat((1, 2))
        open_resolvent = _DratChecker([(-1, 3)])
        assert not open_resolvent._check_rat((1, 2))

    def test_empty_premise_refutation(self):
        assert check_drat([()], [("a", ())])


class TestFormatRoundTrips:
    def test_serialize_parse_round_trip(self):
        lines = [("a", (1, -2)), ("d", (3,)), ("a", ())]
        assert parse_drat(serialize_drat(lines)) == lines

    def test_parse_rejects_missing_terminator(self):
        with pytest.raises(ValueError):
            parse_drat("1 2\n")

    def test_parse_rejects_interior_zero(self):
        with pytest.raises(ValueError):
            parse_drat("1 0 2 0\n")

    def test_parse_skips_comments_and_blanks(self):
        assert parse_drat("c hi\n\n1 0\n") == [("a", (1,))]

    def test_trace_dict_round_trip_preserves_sha(self):
        status, trace = _solve_logged(2, [(1,), (-1, 2), (-2,)])
        assert trace is not None
        clone = ProofTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert clone == trace
        assert clone.sha256() == trace.sha256()

    def test_unknown_format_version_rejected(self):
        with pytest.raises(ValueError):
            ProofTrace.from_dict({"proof_format_version": 99})


class TestFrozenAssumptionRegression:
    """Preprocess-derived root units contradicted by an assumption.

    The preprocessor propagates (a) through (-a, v) and re-emits the
    frozen variable v as a unit; a later solve under the assumption -v
    is refuted at the root, possibly with zero learned clauses.  The
    trace must still check against the *original* formula because the
    preprocessor logged the derivation of (v).
    """

    def test_contradicted_frozen_unit_yields_checkable_trace(self):
        formula = CnfFormula()
        a, v = formula.new_variables(2)
        formula.add_clause((a,))
        formula.add_clause((-a, v))
        log = ProofLog()
        pre = preprocess(formula, frozen=[v], proof=log)
        assert not pre.unsat
        solver = CdclSolver(pre.formula, proof=log)
        result = solver.solve(assumptions=[-v])
        assert result.is_unsat
        assert result.under_assumptions
        trace = build_trace(formula, log, assumptions=(-v,))
        verdict = check_trace(trace)
        assert verdict.ok, verdict.reason

    def test_same_shape_without_preprocessing(self):
        formula = CnfFormula()
        a, v = formula.new_variables(2)
        formula.add_clause((a,))
        formula.add_clause((-a, v))
        log = ProofLog()
        solver = CdclSolver(formula, proof=log)
        result = solver.solve(assumptions=[-v])
        assert result.is_unsat
        trace = build_trace(formula, log, assumptions=(-v,))
        assert check_trace(trace).ok


class TestMidRunAxioms:
    def test_add_clause_hoisted_as_premise(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, b))
        log = ProofLog()
        solver = CdclSolver(formula, proof=log)
        assert solver.solve().is_sat
        solver.add_clause((-a,))
        solver.add_clause((-b,))
        result = solver.solve()
        assert result.is_unsat
        trace = build_trace(formula, log)
        assert trace.axioms == ((-a,), (-b,))
        assert check_trace(trace).ok
