"""Tests for model enumeration with blocking clauses."""

import pytest

from repro.sat import CnfFormula, enumerate_models


def _projection_tuple(model, projection):
    return tuple(model[v] for v in projection)


class TestEnumerate:
    def test_enumerates_all_models(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, b))
        models = list(enumerate_models(formula, [a, b], limit=10))
        assert len(models) == 3
        assert len({_projection_tuple(m, [a, b]) for m in models}) == 3

    def test_respects_limit(self):
        formula = CnfFormula()
        variables = formula.new_variables(4)
        formula.add_clause(variables)
        models = list(enumerate_models(formula, variables, limit=5))
        assert len(models) == 5

    def test_projection_deduplicates(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, b))
        # projecting on `a` only: at most 2 distinct projections
        models = list(enumerate_models(formula, [a], limit=10))
        assert len(models) <= 2
        assert len({_projection_tuple(m, [a]) for m in models}) == len(models)

    def test_unsat_yields_nothing(self):
        formula = CnfFormula()
        a = formula.new_variable()
        formula.add_unit(a)
        formula.add_unit(-a)
        assert list(enumerate_models(formula, [a], limit=3)) == []

    def test_empty_projection_rejected(self):
        formula = CnfFormula()
        formula.new_variable()
        with pytest.raises(ValueError):
            list(enumerate_models(formula, [], limit=1))

    def test_input_formula_not_mutated(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, b))
        before = formula.num_clauses
        list(enumerate_models(formula, [a, b], limit=10))
        assert formula.num_clauses == before
