"""Preprocessing correctness: equisatisfiability against the DPLL
reference, model reconstruction onto the original formula, and the
frozen-variable contract (assumptions and late clause additions keep
their meaning on the simplified instance)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    CdclSolver,
    CnfFormula,
    dpll_solve,
    evaluate_formula,
    preprocess,
)


def _random_formula(seed: int, num_vars: int, num_clauses: int) -> CnfFormula:
    rng = random.Random(seed)
    formula = CnfFormula()
    formula.new_variables(num_vars)
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        formula.add_clause(
            rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(width)
        )
    return formula


class TestEquisatisfiability:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 10_000), st.integers(3, 12), st.integers(1, 50))
    def test_status_matches_dpll(self, seed, num_vars, num_clauses):
        formula = _random_formula(seed, num_vars, num_clauses)
        simplified = preprocess(formula)
        assert CdclSolver(simplified.formula).solve().status == dpll_solve(formula).status

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 10_000), st.integers(3, 12), st.integers(1, 50))
    def test_reconstructed_models_satisfy_original(self, seed, num_vars, num_clauses):
        formula = _random_formula(seed, num_vars, num_clauses)
        simplified = preprocess(formula)
        result = CdclSolver(simplified.formula).solve()
        if result.is_sat:
            full = simplified.reconstruct(result.model)
            assert evaluate_formula(formula, full)

    def test_unsat_shortcircuits(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_unit(a)
        formula.add_clause((-a, b))
        formula.add_unit(-b)
        simplified = preprocess(formula)
        assert simplified.unsat
        assert CdclSolver(simplified.formula).solve().is_unsat
        # The refuted stand-in keeps the variable pool intact.
        assert simplified.formula.num_variables == 2

    def test_variable_pool_preserved(self):
        formula = _random_formula(5, num_vars=9, num_clauses=20)
        simplified = preprocess(formula)
        assert simplified.formula.num_variables == 9


class TestFrozenContract:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(4, 10),
        st.integers(2, 40),
        st.data(),
    )
    def test_assumptions_on_frozen_match_dpll(self, seed, num_vars, num_clauses, data):
        """Assuming frozen literals on the simplified instance must answer
        exactly like adding them as units to the untouched original."""
        formula = _random_formula(seed, num_vars, num_clauses)
        frozen = data.draw(
            st.sets(st.integers(1, num_vars), min_size=1, max_size=num_vars // 2)
        )
        assumptions = [
            variable if data.draw(st.booleans()) else -variable
            for variable in sorted(frozen)
        ]
        simplified = preprocess(formula, frozen=frozen)
        augmented = formula.copy()
        for literal in assumptions:
            augmented.add_clause((literal,))
        expected = dpll_solve(augmented).status
        result = CdclSolver(simplified.formula).solve(assumptions=assumptions)
        assert result.status == expected
        if result.is_sat:
            full = simplified.reconstruct(result.model)
            assert evaluate_formula(formula, full)
            # Frozen variables keep their solver-visible values.
            for literal in assumptions:
                assert full[abs(literal)] is (literal > 0)

    def test_frozen_variables_never_eliminated(self):
        formula = CnfFormula()
        a, b, c = formula.new_variables(3)
        # b is a pure literal and a single-use gate — prime elimination bait.
        formula.add_clause((a, b))
        formula.add_clause((b, c))
        simplified = preprocess(formula, frozen=[b])
        assert not any(
            kind == "elim" and variable == b
            for kind, variable, _ in simplified._records
        )

    def test_root_fixed_frozen_variable_keeps_unit(self):
        """A frozen variable fixed by unit propagation must stay visible as
        a unit clause so a contradicting assumption answers UNSAT."""
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_unit(a)
        formula.add_clause((-a, b))
        simplified = preprocess(formula, frozen=[a, b])
        result = CdclSolver(simplified.formula).solve(assumptions=[-b])
        assert result.is_unsat and result.under_assumptions
        result = CdclSolver(simplified.formula).solve(assumptions=[b])
        assert result.is_sat

    def test_late_blocking_clause_over_frozen_variables(self):
        """Model enumeration over frozen variables agrees with the
        original formula (the descent repair-loop pattern)."""
        formula = _random_formula(17, num_vars=6, num_clauses=10)
        frozen = [1, 2, 3]
        simplified = preprocess(formula, frozen=frozen)
        solver = CdclSolver(simplified.formula)
        seen = set()
        while True:
            result = solver.solve()
            if not result.is_sat:
                break
            full = simplified.reconstruct(result.model)
            assert evaluate_formula(formula, full)
            projection = tuple(full[v] for v in frozen)
            assert projection not in seen
            seen.add(projection)
            solver.add_clause([-v if full[v] else v for v in frozen])
        # Compare against brute force over the original formula.
        expected = set()
        import itertools
        for bits in itertools.product([False, True], repeat=6):
            assignment = {v: bits[v - 1] for v in range(1, 7)}
            if evaluate_formula(formula, assignment):
                expected.add(tuple(assignment[v] for v in frozen))
        assert seen == expected


class TestStats:
    def test_stats_reflect_work(self):
        formula = CnfFormula()
        variables = formula.new_variables(6)
        formula.add_unit(variables[0])                       # fixed
        formula.add_clause((variables[1], variables[2]))
        formula.add_clause((variables[1], variables[2], variables[3]))  # subsumed
        simplified = preprocess(formula)
        stats = simplified.stats
        assert stats.original_clauses == 3
        assert stats.fixed_variables >= 1
        assert stats.simplified_clauses <= stats.original_clauses
        assert "clauses" in stats.summary()

    def test_pure_literal_is_eliminated(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, b))  # both pure
        simplified = preprocess(formula)
        assert simplified.formula.num_clauses == 0
        model = simplified.reconstruct({})
        assert evaluate_formula(formula, model)

    def test_bounded_elimination_respects_growth_limit(self):
        # A variable with many occurrences on both sides must survive.
        formula = CnfFormula()
        pivot = formula.new_variable()
        others = formula.new_variables(30)
        for other in others[:15]:
            formula.add_clause((pivot, other))
        for other in others[15:]:
            formula.add_clause((-pivot, other))
        simplified = preprocess(formula)
        assert not any(
            kind == "elim" and variable == pivot
            for kind, variable, _ in simplified._records
        )


class TestIdempotence:
    @pytest.mark.parametrize("seed", range(6))
    def test_second_pass_is_stable(self, seed):
        formula = _random_formula(seed, num_vars=10, num_clauses=30)
        once = preprocess(formula)
        twice = preprocess(once.formula)
        assert twice.formula.num_clauses <= once.formula.num_clauses
        assert (
            CdclSolver(twice.formula).solve().status
            == CdclSolver(once.formula).solve().status
        )
