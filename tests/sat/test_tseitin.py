"""Tests for Tseitin gate gadgets: every gadget is checked against its
truth table by brute-force enumeration over input assignments."""

import itertools

import pytest

from repro.sat import (
    CnfFormula,
    assert_xor_true,
    dpll_solve,
    encode_and,
    encode_or,
    encode_or_many,
    encode_xor,
    encode_xor_many,
    evaluate_formula,
)


def _gate_truth_table(gadget, arity: int, expected):
    """Check `gate_var <-> expected(inputs)` for all input assignments.

    For each assignment, force the inputs with unit clauses and check the
    formula is satisfiable exactly with the correct gate value.
    """
    for bits in itertools.product([False, True], repeat=arity):
        formula = CnfFormula()
        inputs = formula.new_variables(arity)
        gate = gadget(formula, inputs)
        for variable, bit in zip(inputs, bits):
            formula.add_unit(variable if bit else -variable)
        result = dpll_solve(formula)
        assert result.is_sat
        assert result.model[gate] == expected(bits), bits
        # forcing the wrong gate value must be UNSAT
        contradiction = formula.copy()
        contradiction.add_unit(-gate if expected(bits) else gate)
        assert dpll_solve(contradiction).is_unsat, bits


class TestBinaryGates:
    def test_and(self):
        _gate_truth_table(
            lambda formula, inputs: encode_and(formula, inputs[0], inputs[1]),
            2,
            lambda bits: bits[0] and bits[1],
        )

    def test_or(self):
        _gate_truth_table(
            lambda formula, inputs: encode_or(formula, inputs[0], inputs[1]),
            2,
            lambda bits: bits[0] or bits[1],
        )

    def test_xor(self):
        _gate_truth_table(
            lambda formula, inputs: encode_xor(formula, inputs[0], inputs[1]),
            2,
            lambda bits: bits[0] != bits[1],
        )

    def test_gates_accept_negative_literals(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        gate = encode_and(formula, -a, b)
        formula.add_unit(-a)
        formula.add_unit(b)
        result = dpll_solve(formula)
        assert result.is_sat and result.model[gate]


class TestChains:
    @pytest.mark.parametrize("arity", [1, 2, 3, 4, 5])
    def test_xor_many(self, arity):
        _gate_truth_table(
            lambda formula, inputs: encode_xor_many(formula, inputs),
            arity,
            lambda bits: sum(bits) % 2 == 1,
        )

    @pytest.mark.parametrize("arity", [1, 2, 3, 4])
    def test_or_many(self, arity):
        _gate_truth_table(
            lambda formula, inputs: encode_or_many(formula, inputs),
            arity,
            lambda bits: any(bits),
        )

    def test_empty_chains_rejected(self):
        formula = CnfFormula()
        with pytest.raises(ValueError):
            encode_xor_many(formula, [])
        with pytest.raises(ValueError):
            encode_or_many(formula, [])


class TestAssertions:
    def test_assert_xor_true(self):
        formula = CnfFormula()
        a, b, c = formula.new_variables(3)
        assert_xor_true(formula, [a, b, c])
        for bits in itertools.product([False, True], repeat=3):
            candidate = formula.copy()
            for variable, bit in zip((a, b, c), bits):
                candidate.add_unit(variable if bit else -variable)
            expected = sum(bits) % 2 == 1
            assert dpll_solve(candidate).is_sat == expected
