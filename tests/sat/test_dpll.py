"""Tests for the DPLL reference solver."""

from repro.sat import CnfFormula, dpll_solve, evaluate_formula


class TestDpll:
    def test_sat_with_model(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        formula.add_clause((a, b))
        formula.add_clause((-a, b))
        result = dpll_solve(formula)
        assert result.is_sat
        assert evaluate_formula(formula, result.model)

    def test_unsat(self):
        formula = CnfFormula()
        a = formula.new_variable()
        formula.add_unit(a)
        formula.add_unit(-a)
        assert dpll_solve(formula).is_unsat

    def test_model_covers_all_variables(self):
        formula = CnfFormula()
        formula.new_variables(4)
        formula.add_clause((1,))
        result = dpll_solve(formula)
        assert set(result.model) == {1, 2, 3, 4}

    def test_empty_formula(self):
        formula = CnfFormula()
        formula.new_variables(2)
        assert dpll_solve(formula).is_sat

    def test_requires_backtracking(self):
        formula = CnfFormula()
        a, b, c = formula.new_variables(3)
        formula.add_clause((a, b))
        formula.add_clause((a, -b))
        formula.add_clause((-a, c))
        formula.add_clause((-a, -c, b))
        result = dpll_solve(formula)
        assert result.is_sat
        assert evaluate_formula(formula, result.model)
