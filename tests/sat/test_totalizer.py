"""Totalizer cardinality: bound semantics, ladder selector contract, size
predictions, and agreement with the sequential counter."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    CdclSolver,
    CnfFormula,
    add_at_most_ladder,
    add_totalizer_at_most_k,
    add_totalizer_ladder,
    dpll_solve,
    predict_sequential_ladder,
    predict_totalizer_ladder,
)


class TestAtMostK:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 7), st.integers(0, 7), st.integers(0, 127))
    def test_agrees_with_popcount(self, n, k, assignment_bits):
        bits = [(assignment_bits >> i) & 1 == 1 for i in range(n)]
        formula = CnfFormula()
        inputs = formula.new_variables(n)
        add_totalizer_at_most_k(formula, inputs, k)
        for variable, bit in zip(inputs, bits):
            formula.add_unit(variable if bit else -variable)
        assert dpll_solve(formula).is_sat == (sum(bits) <= k)

    def test_model_counts_match_sequential(self):
        """Both encodings admit exactly the same projections onto the
        input variables."""
        from math import comb

        for n, k in ((3, 1), (4, 2), (5, 3)):
            satisfiable = 0
            for bits in itertools.product([False, True], repeat=n):
                formula = CnfFormula()
                inputs = formula.new_variables(n)
                add_totalizer_at_most_k(formula, inputs, k)
                for variable, bit in zip(inputs, bits):
                    formula.add_unit(variable if bit else -variable)
                if dpll_solve(formula).is_sat:
                    satisfiable += 1
            assert satisfiable == sum(comb(n, i) for i in range(k + 1))

    def test_bound_above_length_is_noop(self):
        formula = CnfFormula()
        inputs = formula.new_variables(3)
        add_totalizer_at_most_k(formula, inputs, 5)
        assert formula.num_clauses == 0

    def test_bound_zero_forces_all_false(self):
        formula = CnfFormula()
        inputs = formula.new_variables(3)
        add_totalizer_at_most_k(formula, inputs, 0)
        result = dpll_solve(formula)
        assert result.is_sat
        assert not any(result.model[v] for v in inputs)

    def test_negative_bound_rejected(self):
        formula = CnfFormula()
        inputs = formula.new_variables(2)
        with pytest.raises(ValueError):
            add_totalizer_at_most_k(formula, inputs, -1)


class TestLadder:
    def test_ladder_bounds_match_bruteforce(self):
        rng = random.Random(7)
        for _ in range(40):
            count = rng.randint(1, 6)
            formula = CnfFormula()
            literals = formula.new_variables(count)
            max_bound = rng.randint(0, count + 2)
            selectors = add_totalizer_ladder(formula, literals, max_bound)
            assert len(selectors) == max_bound + 1
            forced = [v for v in literals if rng.random() < 0.5]
            solver = CdclSolver(formula)
            for bound in range(max_bound + 1):
                result = solver.solve(assumptions=[selectors[bound]] + forced)
                assert result.is_sat == (len(forced) <= bound)
                if result.is_sat:
                    assert sum(result.model[v] for v in literals) <= bound

    def test_same_selector_contract_as_sequential(self):
        """Any descent loop built on one ladder runs unchanged on the
        other: selectors enforce the same bounds."""
        for builder in (add_at_most_ladder, add_totalizer_ladder):
            formula = CnfFormula()
            literals = formula.new_variables(6)
            formula.add_clause(literals[:3])
            formula.add_clause(literals[3:])
            selectors = builder(formula, literals, 6)
            solver = CdclSolver(formula)
            statuses = [
                solver.solve(assumptions=[selectors[b]]).status
                for b in range(6, -1, -1)
            ]
            assert statuses == ["SAT"] * 5 + ["UNSAT", "UNSAT"]

    def test_vacuous_bounds_are_tautological(self):
        formula = CnfFormula()
        a, b = formula.new_variables(2)
        selectors = add_totalizer_ladder(formula, [a, b], 4)
        solver = CdclSolver(formula)
        result = solver.solve(assumptions=[selectors[4], a, b])
        assert result.is_sat

    def test_empty_literals(self):
        formula = CnfFormula()
        selectors = add_totalizer_ladder(formula, [], 2)
        assert len(selectors) == 3
        solver = CdclSolver(formula)
        assert solver.solve(assumptions=[selectors[0]]).is_sat

    def test_negative_bound_rejected(self):
        formula = CnfFormula()
        a = formula.new_variable()
        with pytest.raises(ValueError):
            add_totalizer_ladder(formula, [a], -1)


class TestPrediction:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 40), st.integers(0, 30))
    def test_totalizer_prediction_is_exact(self, count, max_bound):
        formula = CnfFormula()
        literals = formula.new_variables(count)
        variables_before = formula.num_variables
        clauses_before = formula.num_clauses
        add_totalizer_ladder(formula, literals, max_bound)
        predicted_vars, predicted_clauses = predict_totalizer_ladder(count, max_bound)
        assert formula.num_variables - variables_before == predicted_vars
        assert formula.num_clauses - clauses_before == predicted_clauses

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 40), st.integers(0, 30))
    def test_sequential_prediction_is_exact(self, count, max_bound):
        formula = CnfFormula()
        literals = formula.new_variables(count)
        variables_before = formula.num_variables
        clauses_before = formula.num_clauses
        add_at_most_ladder(formula, literals, max_bound)
        predicted_vars, predicted_clauses = predict_sequential_ladder(count, max_bound)
        assert formula.num_variables - variables_before == predicted_vars
        assert formula.num_clauses - clauses_before == predicted_clauses

    def test_totalizer_wins_for_small_bounds_over_many_literals(self):
        _, sequential = predict_sequential_ladder(72, 38)
        _, totalizer = predict_totalizer_ladder(72, 38)
        assert totalizer < sequential


class TestEncoderChooser:
    def test_weight_ladder_encodings_agree(self):
        from repro.core.encoder import FermihedralEncoder

        statuses = {}
        for encoding in ("sequential", "totalizer", "auto"):
            encoder = FermihedralEncoder(2)
            encoder.add_anticommutativity()
            indicators = encoder.majorana_weight_indicators()
            selectors = encoder.weight_ladder(indicators, 8, encoding=encoding)
            solver = CdclSolver(encoder.formula)
            statuses[encoding] = [
                solver.solve(assumptions=[selectors[b]]).status
                for b in range(8, -1, -1)
            ]
        assert statuses["sequential"] == statuses["totalizer"] == statuses["auto"]

    def test_unknown_encoding_rejected(self):
        from repro.core.encoder import FermihedralEncoder

        encoder = FermihedralEncoder(2)
        indicators = encoder.majorana_weight_indicators()
        with pytest.raises(ValueError):
            encoder.weight_ladder(indicators, 4, encoding="unary")
