"""Differential solver fuzzing: CDCL vs. DPLL vs. the proof checker.

Three independent oracles must agree on every random instance:

* the production :class:`CdclSolver` (watched literals, learning, VSIDS),
* the reference :mod:`repro.sat.dpll` solver (plain recursion),
* on UNSAT, the :mod:`repro.sat.drat` checker's verdict on the emitted
  trace — a disagreement means either a solver bug or a proof-emission
  bug, and either way the optimality story is broken.

Instances are drawn from a seeded PRNG so every run (and every CI
failure) is reproducible from the printed seed.  The small sweep runs in
the tier-1 suite; the wide sweep is marked ``slow`` for the nightly lane
and additionally gated on ``REPRO_SLOW_TESTS`` so plain full-suite runs
stay fast.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.sat import (
    CdclSolver,
    CnfFormula,
    ProofLog,
    build_trace,
    check_trace,
    dpll_solve,
    evaluate_formula,
    preprocess,
)

_SEED = 0x5EED_2024


def _random_instance(rng: random.Random):
    num_vars = rng.randint(2, 9)
    num_clauses = rng.randint(1, 4 * num_vars)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in variables))
    assumptions = ()
    if rng.random() < 0.4:
        count = rng.randint(1, min(3, num_vars))
        variables = rng.sample(range(1, num_vars + 1), count)
        assumptions = tuple(v if rng.random() < 0.5 else -v for v in variables)
    return num_vars, clauses, assumptions


def _check_one(rng: random.Random, trial: int) -> None:
    num_vars, clauses, assumptions = _random_instance(rng)
    use_preprocess = rng.random() < 0.5
    context = (f"trial {trial}: vars={num_vars} clauses={clauses} "
               f"assumptions={assumptions} preprocess={use_preprocess}")

    formula = CnfFormula()
    formula.new_variables(num_vars)
    formula.add_clauses(clauses)

    # Reference verdict: DPLL on the formula plus assumption units.
    reference = CnfFormula()
    reference.new_variables(num_vars)
    reference.add_clauses(clauses)
    for lit in assumptions:
        reference.add_clause((lit,))
    expected = dpll_solve(reference)

    log = ProofLog()
    if use_preprocess:
        pre = preprocess(
            formula, frozen=[abs(lit) for lit in assumptions], proof=log
        )
        if pre.unsat:
            assert expected.is_unsat, context
            trace = build_trace(formula, log, assumptions)
            verdict = check_trace(trace)
            assert verdict.ok, f"{context}: {verdict.reason}"
            return
        solver = CdclSolver(pre.formula, proof=log)
        reconstruct = pre.reconstruct
    else:
        solver = CdclSolver(formula, proof=log)
        reconstruct = None

    result = solver.solve(assumptions=list(assumptions))
    assert result.status == expected.status, context
    if result.is_sat:
        model = result.model if reconstruct is None else reconstruct(result.model)
        assert evaluate_formula(formula, model), context
        assert all(model[abs(lit)] == (lit > 0) for lit in assumptions), context
    else:
        trace = build_trace(formula, log, assumptions)
        verdict = check_trace(trace)
        assert verdict.ok, f"{context}: {verdict.reason}"


def test_differential_fuzz_small():
    rng = random.Random(_SEED)
    for trial in range(150):
        _check_one(rng, trial)


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW_TESTS"),
    reason="wide fuzz sweep only runs in the nightly lane (REPRO_SLOW_TESTS=1)",
)
def test_differential_fuzz_wide():
    rng = random.Random(_SEED + 1)
    for trial in range(2000):
        _check_one(rng, trial)
