"""Tests for Z2 symmetry discovery and qubit tapering."""

import numpy as np
import pytest

from repro import bravyi_kitaev, h2_hamiltonian, hubbard_chain, jordan_wigner
from repro.paulis import PauliString, PauliSum, pauli_sum_matrix
from repro.paulis.symplectic import gf2_nullspace
from repro.tapering import (
    build_tapering_plan,
    find_z2_symmetries,
    rotate_operator,
    taper_all_sectors,
    taper_with_plan,
)


def _spectrum(operator: PauliSum) -> np.ndarray:
    return np.linalg.eigvalsh(pauli_sum_matrix(operator))


class TestNullspace:
    def test_orthogonality_and_dimension(self):
        rows = [0b1100, 0b0110]
        basis = gf2_nullspace(rows, 4)
        assert len(basis) == 2
        for vector in basis:
            for row in rows:
                assert (row & vector).bit_count() % 2 == 0

    def test_empty_matrix_full_nullspace(self):
        assert len(gf2_nullspace([], 3)) == 3

    def test_full_rank_trivial_nullspace(self):
        assert gf2_nullspace([0b01, 0b10], 2) == []


class TestSymmetryDiscovery:
    def test_h2_jw_has_three_parity_symmetries(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        generators = find_z2_symmetries(operator)
        assert len(generators) == 3
        # all diagonal (Z-type) parities for this Hamiltonian
        assert all(g.x_mask == 0 for g in generators)

    def test_generators_commute_with_every_term(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        for generator in find_z2_symmetries(operator):
            for term, _ in operator.items():
                assert generator.commutes_with(term)

    def test_generators_mutually_commute(self):
        operator = bravyi_kitaev(6).encode(hubbard_chain(3))
        generators = find_z2_symmetries(operator)
        for i, left in enumerate(generators):
            for right in generators[i + 1:]:
                assert left.commutes_with(right)

    def test_symmetryless_operator(self):
        # X, Y, Z on one qubit: nothing non-trivial commutes with all three
        operator = (
            PauliSum.from_label("X", 1.0)
            + PauliSum.from_label("Y", 0.5)
            + PauliSum.from_label("Z", 0.25)
        )
        assert find_z2_symmetries(operator) == []


class TestPlan:
    def test_pivots_distinct(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        generators = find_z2_symmetries(operator)
        plan = build_tapering_plan(generators, 4)
        assert len(set(plan.pivot_qubits)) == plan.num_removed

    def test_pivot_exclusive_after_reduction(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        generators = find_z2_symmetries(operator)
        plan = build_tapering_plan(generators, 4)
        for i, (qubit, name) in enumerate(
            zip(plan.pivot_qubits, plan.pivot_operators)
        ):
            sigma = PauliString.single(4, qubit, name)
            for j, tau in enumerate(plan.generators):
                if i == j:
                    assert tau.anticommutes_with(sigma)
                else:
                    assert tau.commutes_with(sigma)


class TestRotation:
    def test_rotation_preserves_spectrum(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        generators = find_z2_symmetries(operator)
        plan = build_tapering_plan(generators, 4)
        rotated = rotate_operator(operator, plan)
        assert np.allclose(_spectrum(rotated), _spectrum(operator), atol=1e-9)

    def test_pivot_qubits_carry_only_sigma(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        generators = find_z2_symmetries(operator)
        plan = build_tapering_plan(generators, 4)
        rotated = rotate_operator(operator, plan)
        for term, _ in rotated.items():
            for qubit, name in zip(plan.pivot_qubits, plan.pivot_operators):
                assert term.operator(qubit) in ("I", name)


class TestTapering:
    def test_h2_sector_spectra_tile_original(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        sectors = taper_all_sectors(operator)
        combined = np.sort(
            np.concatenate([_spectrum(op) for op in sectors.values()])
        )
        assert np.allclose(combined, _spectrum(operator), atol=1e-8)

    def test_h2_ground_energy_in_some_sector(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        ground = _spectrum(operator)[0]
        sectors = taper_all_sectors(operator)
        best = min(_spectrum(op)[0] for op in sectors.values())
        assert best == pytest.approx(ground, abs=1e-8)

    def test_h2_tapers_to_one_qubit(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        sectors = taper_all_sectors(operator)
        assert all(op.num_qubits == 1 for op in sectors.values())

    def test_tapering_works_for_bk_encoding_too(self):
        operator = bravyi_kitaev(4).encode(h2_hamiltonian())
        sectors = taper_all_sectors(operator)
        combined = np.sort(
            np.concatenate([_spectrum(op) for op in sectors.values()])
        )
        assert np.allclose(combined, _spectrum(operator), atol=1e-8)

    def test_hubbard_tapering(self):
        operator = jordan_wigner(6).encode(hubbard_chain(3))
        generators = find_z2_symmetries(operator)
        assert generators  # particle-parity symmetries exist
        sectors = taper_all_sectors(operator, generators)
        combined = np.sort(
            np.concatenate([_spectrum(op) for op in sectors.values()])
        )
        assert np.allclose(combined, _spectrum(operator), atol=1e-8)

    def test_no_symmetries_returns_original(self):
        operator = (
            PauliSum.from_label("X", 1.0)
            + PauliSum.from_label("Y", 0.5)
            + PauliSum.from_label("Z", 0.25)
        )
        sectors = taper_all_sectors(operator)
        assert list(sectors) == [()]
        assert sectors[()] is operator

    def test_bad_sector_rejected(self):
        operator = jordan_wigner(4).encode(h2_hamiltonian())
        generators = find_z2_symmetries(operator)
        plan = build_tapering_plan(generators, 4)
        with pytest.raises(ValueError):
            taper_with_plan(operator, plan, (1,))
        with pytest.raises(ValueError):
            taper_with_plan(operator, plan, (1, 0, 1))
