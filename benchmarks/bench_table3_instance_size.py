"""Table 3 — SAT instance size with and without algebraic independence.

Regenerates #variables, #clauses and mean clause width of the generated
instances (Hamiltonian-independent objective, as in the paper).  The
with-Alg column grows as ``4^N`` and is capped by default at 5 modes; the
without-Alg column is polynomial and runs to 18 as in the paper.
"""

from __future__ import annotations

from _harness import int_env, max_modes, report

from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, build_base_formula

WITH_ALG_MAX = int_env("FERMIHEDRAL_BENCH_T3_WITHALG_MAX", 5)
WITHOUT_ALG_MAX = max_modes(18)


def _instance_stats(num_modes: int, algebraic: bool):
    config = FermihedralConfig(
        algebraic_independence=algebraic, vacuum_preservation=True
    )
    encoder, _ = build_base_formula(num_modes, config)
    formula = encoder.formula
    return formula.num_variables, formula.num_clauses, formula.average_clause_length()


def test_table3_instance_sizes(benchmark):
    rows = []
    for num_modes in range(2, WITHOUT_ALG_MAX + 1):
        if num_modes <= WITH_ALG_MAX:
            with_vars, with_clauses, with_avg = _instance_stats(num_modes, True)
            with_cells = [with_vars, with_clauses, f"{with_avg:.2f}"]
        else:
            with_cells = ["N/A", "N/A", "N/A"]
        wo_vars, wo_clauses, wo_avg = _instance_stats(num_modes, False)
        rows.append(
            [num_modes, *with_cells, wo_vars, wo_clauses, f"{wo_avg:.2f}"]
        )

    table = format_table(
        [
            "modes", "#vars w/", "#clauses w/", "avg len w/",
            "#vars w/o", "#clauses w/o", "avg len w/o",
        ],
        rows,
    )
    report("table3_instance_size", table)

    # Shape assertions mirroring the paper's observations:
    # 1. w/ grows exponentially: clause count at N is >3x the count at N-1.
    with_counts = [
        _instance_stats(n, True)[1] for n in range(2, WITH_ALG_MAX + 1)
    ]
    for previous, current in zip(with_counts, with_counts[1:]):
        assert current > 3 * previous
    # 2. w/o grows polynomially: N=8 instance stays under the N=4 w/ count
    #    scaled by far less than 4^4.
    wo_counts = [_instance_stats(n, False)[1] for n in (4, 8)]
    assert wo_counts[1] < 16 * wo_counts[0]

    benchmark(_instance_stats, 6, False)
