"""Figure 9 — noisy simulation of the 3x1 and 2x2 Fermi-Hubbard models (E0).

Same protocol as Figure 8 on the lattice models.  The 6- and 8-qubit SAT
encodings use the w/o-Alg configuration under a budget, as the paper does
at this scale.
"""

from __future__ import annotations

from _harness import budget_seconds, max_modes, report, shots
from _noisy import noisy_energy_grid

from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, solve_full_sat
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import hubbard_lattice

ERROR_RATES = [1e-4, 1e-3, 1e-2]
SHOTS = shots(40)
MODES_CAP = max_modes(6)
#: Enough steps that the noiseless eigenstate energy is conserved (<3% error).
TROTTER_STEPS = 4


def _sat_encoding(hamiltonian):
    config = FermihedralConfig(
        algebraic_independence=False,
        budget=SolverBudget(time_budget_s=budget_seconds(45.0)),
    )
    return solve_full_sat(hamiltonian, config).encoding


def test_fig09_hubbard_noisy_simulation(benchmark):
    cases = [
        ("3x1", hubbard_lattice(3, 1)),
        ("2x2", hubbard_lattice(2, 2)),
    ]
    cases = [(name, h) for name, h in cases if h.num_modes <= MODES_CAP]
    assert cases, "raise FERMIHEDRAL_BENCH_MAX_MODES to at least 6"

    rows = []
    for case_name, hamiltonian in cases:
        encodings = {
            "jordan-wigner": jordan_wigner(hamiltonian.num_modes),
            "bravyi-kitaev": bravyi_kitaev(hamiltonian.num_modes),
            "fermihedral": _sat_encoding(hamiltonian),
        }
        drifts = {}
        for label, encoding in encodings.items():
            grid = noisy_energy_grid(hamiltonian, encoding, 1, ERROR_RATES, SHOTS,
                                     trotter_steps=TROTTER_STEPS)
            for point in grid:
                rows.append(
                    [
                        case_name,
                        label,
                        f"{point.two_qubit_error:.0e}",
                        f"{point.reference_energy:+.4f}",
                        f"{point.mean_energy:+.4f}",
                        f"{point.std_energy:.4f}",
                    ]
                )
            drifts[label] = max(p.drift for p in grid)
        # Full SAT at least matches BK's worst drift (fewer error sites).
        assert drifts["fermihedral"] <= drifts["bravyi-kitaev"] + 0.25

    table = format_table(
        ["lattice", "encoding", "2q error", "E0", "E_measured", "sigma"], rows
    )
    report("fig09_hubbard_noisy", table)

    hamiltonian = cases[0][1]
    benchmark.pedantic(
        noisy_energy_grid,
        args=(hamiltonian, bravyi_kitaev(hamiltonian.num_modes), 1, [1e-3], 10),
        kwargs={"trotter_steps": TROTTER_STEPS},
        rounds=1,
        iterations=1,
    )
