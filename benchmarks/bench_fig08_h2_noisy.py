"""Figure 8 — noisy simulation of H2 from eigenstates E0..E3.

JW vs BK vs Full SAT across a 2-qubit-gate error sweep.  The paper's
qualitative result asserted here: at the highest noise level, the Full
SAT encoding's energy drift from the true eigenvalue does not exceed the
baselines' (fewer gates -> fewer error sites).
"""

from __future__ import annotations

from _harness import budget_seconds, int_env, report, shots
from _noisy import noisy_energy_grid

from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, solve_full_sat
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import h2_hamiltonian

ERROR_RATES = [1e-4, 1e-3, 1e-2]
LEVELS = int_env("FERMIHEDRAL_BENCH_FIG8_LEVELS", 4)
SHOTS = shots(80)


def _encodings(hamiltonian):
    config = FermihedralConfig(budget=SolverBudget(time_budget_s=budget_seconds(45.0)))
    return [
        jordan_wigner(4),
        bravyi_kitaev(4),
        solve_full_sat(hamiltonian, config).encoding,
    ]


def test_fig08_h2_noisy_simulation(benchmark):
    hamiltonian = h2_hamiltonian()
    grids = {}
    for encoding in _encodings(hamiltonian):
        grids[encoding.name] = noisy_energy_grid(
            hamiltonian, encoding, LEVELS, ERROR_RATES, SHOTS
        )

    rows = []
    for name, grid in grids.items():
        for point in grid:
            rows.append(
                [
                    name,
                    point.level_label,
                    f"{point.two_qubit_error:.0e}",
                    f"{point.reference_energy:+.4f}",
                    f"{point.mean_energy:+.4f}",
                    f"{point.std_energy:.4f}",
                    f"{point.drift:.4f}",
                ]
            )
    table = format_table(
        ["encoding", "state", "2q error", "E_exact", "E_measured", "sigma", "drift"],
        rows,
    )
    report("fig08_h2_noisy", table)

    # Drift grows with the error rate for every encoding/state series.
    for grid in grids.values():
        by_state: dict[str, list] = {}
        for point in grid:
            by_state.setdefault(point.level_label, []).append(point)
        for series in by_state.values():
            assert series[0].drift <= series[-1].drift + 0.05

    # Paper's headline: Full SAT drifts no more than the baselines at the
    # noisiest setting (ground state).
    def _worst_drift(name):
        return max(
            p.drift for p in grids[name]
            if p.level_label == "E0" and p.two_qubit_error == ERROR_RATES[-1]
        )

    assert _worst_drift("fermihedral") <= _worst_drift("bravyi-kitaev") + 0.05

    encoding = bravyi_kitaev(4)
    benchmark.pedantic(
        noisy_energy_grid,
        args=(hamiltonian, encoding, 1, [1e-3], 20),
        rounds=1,
        iterations=1,
    )
