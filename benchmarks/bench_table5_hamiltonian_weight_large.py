"""Table 5 — Hamiltonian-dependent Pauli weight at larger scale (SAT+Anl. only).

The paper runs 8-18 modes where only the SAT + annealing pipeline remains
feasible.  Default sweep: electronic-6 (synthetic integrals), Hubbard
chains of 3-4 sites, SYK 5-6 — sized for the pure-Python solver; the
w/o-Alg configuration is used for the independent-weight descent exactly
as the paper prescribes at scale.
"""

from __future__ import annotations

from _harness import budget_seconds, max_modes, report

from repro.analysis import improvement_percent
from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, solve_sat_annealing
from repro.encodings import bravyi_kitaev
from repro.fermion import hubbard_chain, random_molecular_hamiltonian, syk_hamiltonian

MODES_CAP = max_modes(8)


def _cases():
    candidates = [
        ("Electronic", random_molecular_hamiltonian(6, seed=17)),
        ("Fermi-Hubbard", hubbard_chain(3)),
        ("Fermi-Hubbard", hubbard_chain(4)),
        ("Four-Body SYK", syk_hamiltonian(5)),
        ("Four-Body SYK", syk_hamiltonian(6)),
    ]
    return [(f, h) for f, h in candidates if h.num_modes <= MODES_CAP]


def _solve(hamiltonian):
    config = FermihedralConfig(
        algebraic_independence=False,
        budget=SolverBudget(time_budget_s=budget_seconds(45.0)),
    )
    return solve_sat_annealing(hamiltonian, config)


def test_table5_sat_annealing_large(benchmark):
    rows = []
    for family, hamiltonian in _cases():
        bk_weight = bravyi_kitaev(hamiltonian.num_modes).hamiltonian_pauli_weight(
            hamiltonian
        )
        result = _solve(hamiltonian)
        assert result.verify().valid
        rows.append(
            [
                family,
                hamiltonian.num_modes,
                bk_weight,
                result.weight,
                f"{improvement_percent(bk_weight, result.weight):.2f}%",
            ]
        )

    table = format_table(["case", "modes", "BK", "SAT+Anl", "reduction"], rows)
    report("table5_hamiltonian_weight_large", table)

    # Paper shape, per family:
    # * Hubbard/electronic — SAT+Anl at or below BK (pairing matters and the
    #   independent optimum transfers).
    # * Dense SYK — pairing is invariant (every quadruple appears), so at
    #   these small sizes SAT+Anl may trail BK; see EXPERIMENTS.md.  Only a
    #   bounded deficit is asserted.
    for row in rows:
        family, modes, bk_weight, anl_weight = row[0], row[1], row[2], row[3]
        if family == "Four-Body SYK":
            assert anl_weight <= bk_weight * 1.15
        elif modes >= 5:
            assert anl_weight <= bk_weight * 1.02

    smallest = _cases()[1][1]
    benchmark.pedantic(_solve, args=(smallest,), rounds=1, iterations=1)
