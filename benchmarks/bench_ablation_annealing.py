"""Ablation — annealing schedule sensitivity (Algorithm 2 parameters).

Sweeps the cooling schedule on the 3-site periodic Hubbard chain to show
(a) the default schedule sits on the quality plateau and (b) very short
schedules degrade gracefully rather than catastrophically — the
robustness property Section 4.2 relies on.
"""

from __future__ import annotations

from _harness import report

from repro.analysis.tables import format_table
from repro.core import AnnealingSchedule, anneal_pairing
from repro.encodings import jordan_wigner
from repro.fermion import hubbard_chain

SCHEDULES = {
    "tiny (2 levels x 5)": AnnealingSchedule(1.0, 0.5, 0.5, 5),
    "short (5 levels x 20)": AnnealingSchedule(2.0, 0.2, 0.4, 20),
    "default": AnnealingSchedule(),
    "long (40 levels x 120)": AnnealingSchedule(4.0, 0.1, 0.1, 120),
}


def test_ablation_annealing_schedule(benchmark):
    hamiltonian = hubbard_chain(3)
    encoding = jordan_wigner(6)
    rows = []
    weights = {}
    for label, schedule in SCHEDULES.items():
        result = anneal_pairing(encoding, hamiltonian, schedule=schedule, seed=21)
        weights[label] = result.weight
        rows.append(
            [
                label,
                result.initial_weight,
                result.weight,
                result.accepted_moves,
                result.attempted_moves,
            ]
        )

    table = format_table(
        ["schedule", "initial", "final", "accepted", "attempted"], rows
    )
    report("ablation_annealing", table)

    # Longer schedules never do worse than the tiny one.
    assert weights["long (40 levels x 120)"] <= weights["tiny (2 levels x 5)"]
    assert weights["default"] <= weights["tiny (2 levels x 5)"]

    benchmark(
        anneal_pairing, encoding, hamiltonian, SCHEDULES["short (5 levels x 20)"], 21
    )
