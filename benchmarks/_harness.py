"""Shared infrastructure for the benchmark harnesses.

Every benchmark module regenerates one table or figure of the paper: it
prints the same rows/series the paper reports and mirrors them into
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite stable output.

Scale knobs: a pure-Python CDCL solver is orders of magnitude slower than
Kissat, so default sweeps are laptop-sized.  Environment variables lift
them toward the paper's ranges:

* ``FERMIHEDRAL_BENCH_MAX_MODES`` — cap on mode sweeps (default per bench).
* ``FERMIHEDRAL_BENCH_BUDGET_S`` — per-SAT-call time budget in seconds.
* ``FERMIHEDRAL_BENCH_SHOTS`` — noisy-simulation shots.

Caps are reported in the output, never silent.

Machine-readable results: run the suite with ``--json DIR`` (a pytest
flag added by ``benchmarks/conftest.py``) and every bench that passes
structured ``data`` to :func:`report` also writes ``DIR/BENCH_<name>.json``
— name, parameters, wall times and gate counts — so the performance
trajectory can be tracked without scraping text tables.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Directory for BENCH_*.json files; ``benchmarks/conftest.py`` sets this
#: from the ``--json`` pytest option (``None`` disables JSON output).
JSON_DIR: str | None = None


def int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return default if value is None else int(value)


def float_env(name: str, default: float) -> float:
    value = os.environ.get(name)
    return default if value is None else float(value)


def budget_seconds(default: float = 30.0) -> float:
    return float_env("FERMIHEDRAL_BENCH_BUDGET_S", default)


def max_modes(default: int) -> int:
    return int_env("FERMIHEDRAL_BENCH_MAX_MODES", default)


def shots(default: int) -> int:
    return int_env("FERMIHEDRAL_BENCH_SHOTS", default)


def report(name: str, text: str, data: dict | None = None) -> str:
    """Print a result block and persist it under benchmarks/results/.

    ``data`` is the bench's machine-readable summary (parameters, wall
    times, gate counts — JSON-serializable values only).  When the suite
    runs with ``--json DIR`` it lands in ``DIR/BENCH_<name>.json``; without
    the flag it is ignored, so benches can always pass it.
    """
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None and JSON_DIR:
        target = Path(JSON_DIR)
        target.mkdir(parents=True, exist_ok=True)
        payload = {"name": name, "written_at": time.time(), **data}
        (target / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    return banner
