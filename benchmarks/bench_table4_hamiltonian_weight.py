"""Table 4 — Hamiltonian-dependent total Pauli weight, small scale.

BK vs SAT+Anl. vs Full SAT on the three benchmark families.  The paper's
headline shapes asserted here: Full SAT never loses to BK, and SAT+Anl.
may lose at the smallest sizes (the paper observes the same at 4 modes)
but its deficit is bounded.
"""

from __future__ import annotations

from _harness import budget_seconds, max_modes, report

from repro.analysis import improvement_percent
from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, solve_full_sat, solve_sat_annealing
from repro.encodings import bravyi_kitaev
from repro.fermion import h2_hamiltonian, hubbard_chain, syk_hamiltonian

MODES_CAP = max_modes(4)


def _cases():
    cases = [("Electronic", h2_hamiltonian())]
    for sites in (2,):
        hamiltonian = hubbard_chain(sites, periodic=False)
        if hamiltonian.num_modes <= MODES_CAP:
            cases.append(("Fermi-Hubbard", hamiltonian))
    for modes in (3, 4):
        if modes <= MODES_CAP:
            cases.append(("Four-Body SYK", syk_hamiltonian(modes)))
    return [(family, h) for family, h in cases if h.num_modes <= MODES_CAP]


def _config():
    return FermihedralConfig(budget=SolverBudget(time_budget_s=budget_seconds(45.0)))


def test_table4_hamiltonian_dependent_weight(benchmark):
    rows = []
    for family, hamiltonian in _cases():
        bk_weight = bravyi_kitaev(hamiltonian.num_modes).hamiltonian_pauli_weight(
            hamiltonian
        )
        annealed = solve_sat_annealing(hamiltonian, _config())
        full = solve_full_sat(hamiltonian, _config())
        assert full.verify().valid
        rows.append(
            [
                family,
                hamiltonian.num_modes,
                bk_weight,
                annealed.weight,
                f"{improvement_percent(bk_weight, annealed.weight):.2f}%",
                full.weight,
                f"{improvement_percent(bk_weight, full.weight):.2f}%",
            ]
        )
        # Full SAT must never lose to BK (descent starts at or below it).
        assert full.weight <= bk_weight

    table = format_table(
        ["case", "modes", "BK", "SAT+Anl", "reduction", "Full SAT", "reduction"],
        rows,
    )
    report("table4_hamiltonian_weight", table)

    small = h2_hamiltonian()
    benchmark.pedantic(
        solve_sat_annealing, args=(small, _config()), rounds=1, iterations=1
    )
