"""Figure 11 — construct and solve time with vs without algebraic independence.

Regenerates both panels: CNF construction time and descent solve time
(UNSAT-proof time excluded, as in the paper — the descent budget bounds
it).  Asserted shape: dropping the algebraic clauses speeds up
construction, with the gap widening as N grows.
"""

from __future__ import annotations

import time

from _harness import budget_seconds, max_modes, report

from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, build_base_formula, descend

MODES = max_modes(4)


def _construct_time(num_modes: int, algebraic: bool) -> float:
    config = FermihedralConfig(algebraic_independence=algebraic)
    start = time.monotonic()
    build_base_formula(num_modes, config)
    return time.monotonic() - start


def _solve_time(num_modes: int, algebraic: bool) -> float:
    config = FermihedralConfig(
        algebraic_independence=algebraic,
        budget=SolverBudget(time_budget_s=budget_seconds(30.0)),
    )
    result = descend(num_modes, config=config)
    # Exclude the final UNSAT/timeout call, mirroring the paper's metric.
    productive = [s.elapsed_s for s in result.steps if s.status == "SAT"]
    return sum(productive) if productive else result.solve_time_s


def test_fig11_time_to_solution(benchmark):
    rows = []
    gaps = []
    for num_modes in range(2, MODES + 1):
        construct_with = _construct_time(num_modes, True)
        construct_without = _construct_time(num_modes, False)
        solve_with = _solve_time(num_modes, True)
        solve_without = _solve_time(num_modes, False)
        construct_speedup = construct_with / max(construct_without, 1e-9)
        gaps.append(construct_speedup)
        rows.append(
            [
                num_modes,
                f"{construct_with:.3f}",
                f"{construct_without:.3f}",
                f"{construct_speedup:.1f}x",
                f"{solve_with:.3f}",
                f"{solve_without:.3f}",
            ]
        )

    table = format_table(
        [
            "modes", "construct w/ (s)", "construct w/o (s)", "speedup",
            "solve w/ (s)", "solve w/o (s)",
        ],
        rows,
    )
    report("fig11_time_to_solution", table)

    # Construction speedup exists and grows with N (exponential clause family).
    assert gaps[-1] > 1.0
    if len(gaps) >= 2:
        assert gaps[-1] > gaps[0]

    benchmark(_construct_time, MODES, False)
