"""Ablation — linear descent (the paper's Algorithm 1) vs bisection.

Both strategies reach the same optimum; the interesting quantities are the
number of SAT calls and how the calls distribute between SAT (easy-ish)
and UNSAT (hard) queries.  Bisection wins when the baseline bound starts
far above the optimum; linear wins when the first model already lands
close (which warm-started instances often do).
"""

from __future__ import annotations

from _harness import budget_seconds, report

from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, descend


def _run(num_modes: int, strategy: str):
    config = FermihedralConfig(
        strategy=strategy,
        budget=SolverBudget(time_budget_s=budget_seconds(45.0)),
    )
    return descend(num_modes, config=config)


def test_ablation_descent_strategy(benchmark):
    rows = []
    for num_modes in (2, 3, 4):
        linear = _run(num_modes, "linear")
        bisect = _run(num_modes, "bisection")
        rows.append(
            [
                num_modes,
                linear.weight,
                linear.sat_calls,
                f"{linear.solve_time_s:.2f}s",
                bisect.weight,
                bisect.sat_calls,
                f"{bisect.solve_time_s:.2f}s",
            ]
        )
        if linear.proved_optimal and bisect.proved_optimal:
            assert linear.weight == bisect.weight

    table = format_table(
        [
            "modes", "linear weight", "linear calls", "linear time",
            "bisect weight", "bisect calls", "bisect time",
        ],
        rows,
    )
    report("ablation_strategy", table)

    benchmark.pedantic(_run, args=(3, "bisection"), rounds=1, iterations=1)
