"""Figure 10 — H2 ground-state evolution on "IonQ Aria-1".

Hardware substitution (see DESIGN.md): the device is modelled by the
published Aria-1 fidelities (1q 99.99 %, 2q 98.91 %, readout 98.82 %).
The paper's result is an ordering — Full SAT closest to the true E0 with
the smallest variance, then BK, then JW; the mean-energy ordering between
Full SAT and the baselines is asserted here.
"""

from __future__ import annotations

from _harness import budget_seconds, report, shots
from _noisy import noisy_energy_grid

from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, solve_full_sat
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import h2_hamiltonian
from repro.simulator import ionq_aria1_noise

SHOTS = shots(150)


def test_fig10_ionq_aria1_h2(benchmark):
    hamiltonian = h2_hamiltonian()
    config = FermihedralConfig(budget=SolverBudget(time_budget_s=budget_seconds(45.0)))
    encodings = [
        jordan_wigner(4),
        bravyi_kitaev(4),
        solve_full_sat(hamiltonian, config).encoding,
    ]
    noise = ionq_aria1_noise()

    rows = []
    results = {}
    for encoding in encodings:
        point = noisy_energy_grid(
            hamiltonian, encoding, 1, [noise.two_qubit_error], SHOTS,
            noise_model=noise,
        )[0]
        results[encoding.name] = point
        rows.append(
            [
                encoding.name,
                f"{point.reference_energy:+.4f}",
                f"{point.mean_energy:+.4f}",
                f"{point.std_energy:.4f}",
                f"{point.drift:.4f}",
            ]
        )

    table = format_table(
        ["encoding", "E0 exact", "E measured", "sigma", "drift"], rows
    )
    report("fig10_ionq_h2", table)

    # Paper: Full SAT achieves the closest average energy.
    assert results["fermihedral"].drift <= results["jordan-wigner"].drift + 0.02
    assert results["fermihedral"].drift <= results["bravyi-kitaev"].drift + 0.02

    benchmark.pedantic(
        noisy_energy_grid,
        args=(hamiltonian, bravyi_kitaev(4), 1, [noise.two_qubit_error], 25),
        kwargs={"noise_model": noise},
        rounds=1,
        iterations=1,
    )
