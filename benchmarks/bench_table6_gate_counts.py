"""Table 6 — gate counts of compiled circuits: BK vs Full SAT (JW for context).

H2 (4 qubits), 3x1 Fermi-Hubbard (6 qubits) and 2x2 Fermi-Hubbard
(8 qubits), Trotterized at t=1 and passed through the same peephole
pipeline for every encoding.  The asserted shape: the SAT encoding's
total gate count and CNOT count never exceed BK's.
"""

from __future__ import annotations

from _harness import budget_seconds, max_modes, report

from repro.analysis import improvement_percent
from repro.analysis.tables import format_table
from repro.circuits import greedy_cancellation_order, optimize_circuit, trotter_circuit
from repro.core import FermihedralConfig, SolverBudget, solve_full_sat
from repro.encodings import bravyi_kitaev, jordan_wigner
from repro.fermion import h2_hamiltonian, hubbard_lattice

MODES_CAP = max_modes(6)


def _cases():
    candidates = [
        ("H2", h2_hamiltonian()),
        ("3x1 Hubbard", hubbard_lattice(3, 1)),
        ("2x2 Hubbard", hubbard_lattice(2, 2)),
    ]
    return [(name, h) for name, h in candidates if h.num_modes <= MODES_CAP]


def _sat_encoding(hamiltonian):
    config = FermihedralConfig(
        algebraic_independence=hamiltonian.num_modes <= 4,
        budget=SolverBudget(time_budget_s=budget_seconds(60.0)),
    )
    return solve_full_sat(hamiltonian, config).encoding


def _compile(encoding, hamiltonian):
    """Identical pipeline for every encoding: Paulihedral-lite term
    scheduling, Figure-3 synthesis, peephole cancellation."""
    operator = encoding.encode(hamiltonian).without_identity().hermitian_part()
    order = greedy_cancellation_order(operator)
    return optimize_circuit(trotter_circuit(operator, time=1.0, term_order=order))


def test_table6_gate_counts(benchmark):
    rows = []
    json_cases = []
    for name, hamiltonian in _cases():
        num_modes = hamiltonian.num_modes
        encodings = {
            "JW": jordan_wigner(num_modes),
            "BK": bravyi_kitaev(num_modes),
            "FullSAT": _sat_encoding(hamiltonian),
        }
        stats = {label: _compile(e, hamiltonian).gate_statistics()
                 for label, e in encodings.items()}
        json_cases.append({"model": name, "modes": num_modes, "gates": stats})
        for metric in ("single", "cnot", "total", "depth"):
            rows.append(
                [
                    name,
                    metric,
                    stats["JW"][metric],
                    stats["BK"][metric],
                    stats["FullSAT"][metric],
                    f"{improvement_percent(max(stats['BK'][metric], 1), stats['FullSAT'][metric]):.1f}%",
                ]
            )
        assert stats["FullSAT"]["total"] <= stats["BK"]["total"]
        assert stats["FullSAT"]["cnot"] <= stats["BK"]["cnot"]

    table = format_table(
        ["case", "metric", "JW", "BK", "Full SAT", "vs BK"], rows
    )
    report(
        "table6_gate_counts",
        table,
        data={
            "params": {"modes_cap": MODES_CAP, "budget_s": budget_seconds(60.0)},
            "cases": json_cases,
        },
    )

    h2 = h2_hamiltonian()
    benchmark(_compile, bravyi_kitaev(4), h2)
