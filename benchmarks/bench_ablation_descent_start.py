"""Ablation — descent start point (beyond the paper's Section 3.6 choice).

The paper seeds Algorithm 1 from the Bravyi-Kitaev weight.  DESIGN.md
calls out the alternative implemented here: seed from the best admissible
baseline (JW/BK/parity/ternary-tree, annealed for Hamiltonian-dependent
objectives).  This ablation measures what that choice buys: the SAT-call
count and the first-level bound both shrink, while the reached optimum is
unchanged (it is an optimum).
"""

from __future__ import annotations

from _harness import budget_seconds, report

from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, descend
from repro.core.baselines import best_baseline
from repro.encodings import bravyi_kitaev


def _run(num_modes: int, use_best_baseline: bool):
    config = FermihedralConfig(
        budget=SolverBudget(time_budget_s=budget_seconds(30.0))
    )
    baseline = (
        best_baseline(num_modes, config) if use_best_baseline else bravyi_kitaev(num_modes)
    )
    return descend(num_modes, config=config, baseline=baseline)


def test_ablation_descent_start(benchmark):
    rows = []
    for num_modes in (2, 3, 4):
        from_bk = _run(num_modes, use_best_baseline=False)
        from_best = _run(num_modes, use_best_baseline=True)
        rows.append(
            [
                num_modes,
                from_bk.weight,
                from_bk.sat_calls,
                from_best.weight,
                from_best.sat_calls,
            ]
        )
        # Same optimum whenever both prove optimality.
        if from_bk.proved_optimal and from_best.proved_optimal:
            assert from_bk.weight == from_best.weight
        # The better start never needs more SAT calls.
        assert from_best.sat_calls <= from_bk.sat_calls

    table = format_table(
        ["modes", "BK-start weight", "BK-start calls", "best-start weight", "best-start calls"],
        rows,
    )
    report("ablation_descent_start", table)

    benchmark.pedantic(_run, args=(3, True), rounds=1, iterations=1)
