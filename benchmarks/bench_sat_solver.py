"""Substrate microbenchmarks — the CDCL solver standing in for Kissat.

Not a paper table; tracks the solver's own health so regressions in the
substrate are visible independently of the compiler-level benchmarks.
"""

from __future__ import annotations

import itertools
import random

from repro.sat import CnfFormula, solve_formula


def _pigeonhole(pigeons: int, holes: int) -> CnfFormula:
    formula = CnfFormula()
    slot = {}
    for p in range(pigeons):
        for h in range(holes):
            slot[p, h] = formula.new_variable()
    for p in range(pigeons):
        formula.add_clause(slot[p, h] for h in range(holes))
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            formula.add_clause((-slot[p1, h], -slot[p2, h]))
    return formula


def _random_3sat(seed: int, num_vars: int, ratio: float) -> CnfFormula:
    rng = random.Random(seed)
    formula = CnfFormula()
    formula.new_variables(num_vars)
    for _ in range(int(ratio * num_vars)):
        variables = rng.sample(range(1, num_vars + 1), 3)
        formula.add_clause(rng.choice((-1, 1)) * v for v in variables)
    return formula


def test_bench_pigeonhole_unsat(benchmark):
    formula = _pigeonhole(7, 6)
    result = benchmark(lambda: solve_formula(_pigeonhole(7, 6)))
    assert result.is_unsat


def test_bench_random_3sat_phase_transition(benchmark):
    def run():
        statuses = []
        for seed in range(5):
            statuses.append(solve_formula(_random_3sat(seed, 60, 4.26)).status)
        return statuses

    statuses = benchmark(run)
    assert all(status in ("SAT", "UNSAT") for status in statuses)


def test_bench_underconstrained_sat(benchmark):
    formula = _random_3sat(3, 120, 2.0)
    result = benchmark(solve_formula, formula)
    assert result.is_sat
