"""Substrate benchmarks — the flattened CDCL solver and its descent ladder.

Not a paper table; tracks the SAT layer's own health so substrate
regressions are visible independently of the compiler-level benchmarks.
Three workloads:

* **descent-full** — the 4-mode Hamiltonian-independent descent with an
  unlimited budget, run with and without CNF preprocessing.  Both arms
  must reach the same optimal weight with a final UNSAT rung — the
  optimality proof — which checks the execution-strategy contract end to
  end (preprocessing may change which optimum comes back, never the
  weight or the proof).
* **descent-ladder** — the 6-mode Majorana instance (the paper's
  "SAT w/o Alg." configuration) under a deterministic per-rung conflict
  budget, again with and without preprocessing.  Definitive SAT/UNSAT
  answers at a bound may never contradict between arms.  Because a
  faster engine spends the same budget *descending further* (more SAT
  rungs, more total conflicts), the tracked throughput number is
  conflicts per second, not bare wall-clock.
* **ladder-rung** — one fixed, hard rung of that ladder (a bound well
  below anything reachable, solved under an exact conflict budget), so
  the preprocessed and raw arms perform the identical logical quantum of
  work.  This is the CI regression gate: the preprocessed arm slower
  than the raw arm beyond a small noise tolerance fails the run.
* **proof-overhead** — the same fixed rung with and without DRAT proof
  logging (``proof=True``).  Identical conflict budget, identical raw
  instance; the wall ratio isolates the cost of emission and a second CI
  gate keeps it under 15%.
* **telemetry-overhead** — the same fixed rung with and without a live
  :class:`repro.telemetry.Telemetry` handle on the solver (best of three
  runs per arm).  Counters sample only at restart boundaries, so a third
  CI gate holds the overhead under 5%.
* **solver-health** — pigeonhole UNSAT and random 3-SAT at the phase
  transition, the classic pure-solver microbenchmarks.

Run as a script (CI does)::

    PYTHONPATH=src python benchmarks/bench_sat_solver.py --json
    # exit code 1 if the preprocessed ladder is slower than the raw one

or under pytest (``python -m pytest benchmarks/bench_sat_solver.py``)
for a scaled-down smoke version.  ``FERMIHEDRAL_BENCH_LADDER_MODES`` and
``FERMIHEDRAL_BENCH_LADDER_CONFLICTS`` resize the ladder workload.
"""

from __future__ import annotations

import argparse
import itertools
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import _harness
from _harness import int_env, report

from repro.core.config import FermihedralConfig, SolverBudget
from repro.core.descent import descend
from repro.sat import CnfFormula, solve_formula

#: Noise tolerance of the preprocessed-vs-raw gate: machine jitter must
#: not fail CI, a real regression must.
GATE_TOLERANCE = 1.10

#: Budget for DRAT proof logging on the fixed rung: emission is two list
#: appends per learned/deleted clause, so anything beyond 15% means the
#: hot path regressed (e.g. logging leaked into propagation).
PROOF_GATE_TOLERANCE = 1.15

#: Budget for live telemetry on the fixed rung.  Counters are sampled at
#: restart boundaries only, never inside propagate/analyze, so the cost
#: should be unmeasurable; 5% is pure jitter headroom.  Beyond it means
#: instrumentation leaked into the hot loop.
TELEMETRY_GATE_TOLERANCE = 1.05

#: PR 3 reference numbers on the development machine (same workloads,
#: same process pattern, best of 2), kept so the results file shows the
#: substrate's trajectory.  Historical context, not a CI gate — absolute
#: numbers are machine-specific.  Measured at the PR boundary: the
#: 4-mode full descent took 4.40 s, and the 6-mode ladder managed 590
#: conflicts/s while stalling at weight 37 (the budget died on the
#: bound-36 rung the flattened solver now clears in one conflict).
PR3_BASELINE = {"full_wall_s": 4.40, "ladder_conflicts_per_s": 590}


def _pigeonhole(pigeons: int, holes: int) -> CnfFormula:
    formula = CnfFormula()
    slot = {}
    for p in range(pigeons):
        for h in range(holes):
            slot[p, h] = formula.new_variable()
    for p in range(pigeons):
        formula.add_clause(slot[p, h] for h in range(holes))
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            formula.add_clause((-slot[p1, h], -slot[p2, h]))
    return formula


def _random_3sat(seed: int, num_vars: int, ratio: float) -> CnfFormula:
    rng = random.Random(seed)
    formula = CnfFormula()
    formula.new_variables(num_vars)
    for _ in range(int(ratio * num_vars)):
        variables = rng.sample(range(1, num_vars + 1), 3)
        formula.add_clause(rng.choice((-1, 1)) * v for v in variables)
    return formula


def _run_descent(modes: int, preprocess: bool, *,
                 algebraic_independence: bool = True,
                 max_conflicts: int | None = None):
    config = FermihedralConfig(
        algebraic_independence=algebraic_independence,
        preprocess=preprocess,
        budget=SolverBudget(max_conflicts=max_conflicts),
    )
    started = time.monotonic()
    result = descend(modes, config)
    wall = time.monotonic() - started
    return wall, result


def _statuses_consistent(with_pre, without_pre) -> bool:
    """Definitive answers at a bound must agree between the two arms."""
    by_bound: dict[int, str] = {}
    for result in (with_pre, without_pre):
        for step in result.steps:
            if step.status not in ("SAT", "UNSAT"):
                continue
            previous = by_bound.setdefault(step.bound, step.status)
            if previous != step.status:
                return False
    return True


def bench_descent_full(modes: int = 4) -> dict:
    """Unlimited-budget descent: proof and weight must survive preprocessing."""
    pre_wall, pre = _run_descent(modes, preprocess=True)
    raw_wall, raw = _run_descent(modes, preprocess=False)
    assert pre.weight == raw.weight, (
        f"preprocessing changed the optimum: {pre.weight} != {raw.weight}")
    assert pre.proved_optimal and raw.proved_optimal, "optimality proof lost"
    assert pre.steps[-1].status == raw.steps[-1].status == "UNSAT", (
        "the final rung must be the UNSAT optimality certificate")
    assert _statuses_consistent(pre, raw)
    return {
        "modes": modes,
        "weight": pre.weight,
        "proved_optimal": True,
        "preprocessed_wall_s": round(pre_wall, 3),
        "raw_wall_s": round(raw_wall, 3),
        "preprocessed_conflicts": pre.total_conflicts,
        "raw_conflicts": raw.total_conflicts,
    }


def bench_descent_ladder(modes: int, max_conflicts: int) -> dict:
    """Budgeted ladder descent: throughput and descent quality per arm."""
    pre_wall, pre = _run_descent(
        modes, preprocess=True,
        algebraic_independence=False, max_conflicts=max_conflicts,
    )
    raw_wall, raw = _run_descent(
        modes, preprocess=False,
        algebraic_independence=False, max_conflicts=max_conflicts,
    )
    assert _statuses_consistent(pre, raw), (
        "preprocessed and raw ladders contradicted each other on a bound")
    return {
        "modes": modes,
        "max_conflicts_per_rung": max_conflicts,
        "preprocessed_wall_s": round(pre_wall, 3),
        "raw_wall_s": round(raw_wall, 3),
        "preprocessed_weight": pre.weight,
        "raw_weight": raw.weight,
        "preprocessed_conflicts": pre.total_conflicts,
        "raw_conflicts": raw.total_conflicts,
        "preprocessed_conflicts_per_s": round(pre.total_conflicts / max(pre_wall, 1e-9)),
        "raw_conflicts_per_s": round(raw.total_conflicts / max(raw_wall, 1e-9)),
    }


def bench_ladder_rung(modes: int, max_conflicts: int) -> dict:
    """One fixed hard rung, identical conflict budget in both arms.

    The bound sits at the structural lower limit (2 per Majorana string)
    — far below anything a budgeted search can reach — so both arms burn
    the exact conflict budget and the wall ratio is a clean throughput
    comparison.  The preprocessed arm pays its simplification cost inside
    the measurement.
    """
    from repro.core.descent import build_base_formula, measured_weight
    from repro.encodings.bravyi_kitaev import bravyi_kitaev
    from repro.sat.preprocess import preprocess
    from repro.sat.solver import CdclSolver

    config = FermihedralConfig(algebraic_independence=False)
    baseline = bravyi_kitaev(modes)
    bound = 2 * 2 * modes  # average weight 2 per string: unreachably tight
    out: dict = {"modes": modes, "bound": bound, "max_conflicts": max_conflicts}
    statuses = {}
    for arm in ("preprocessed", "raw"):
        started = time.monotonic()
        encoder, indicators = build_base_formula(modes, config)
        selectors = encoder.weight_ladder(
            indicators, measured_weight(baseline) - 1)
        formula = encoder.formula
        reconstructor = None
        if arm == "preprocessed":
            frozen = set(encoder.all_string_variables())
            frozen.update(abs(s) for s in selectors)
            simplified = preprocess(formula, frozen=frozen)
            formula = simplified.formula
            reconstructor = simplified.reconstruct
        solver = CdclSolver(
            formula, seed_phases=encoder.encoding_assignment(baseline))
        result = solver.solve(
            max_conflicts=max_conflicts, assumptions=(selectors[bound],))
        wall = time.monotonic() - started
        statuses[arm] = result.status
        if result.is_sat and reconstructor is not None:
            result.model = reconstructor(result.model)
        out[f"{arm}_wall_s"] = round(wall, 3)
        out[f"{arm}_status"] = result.status
        out[f"{arm}_conflicts"] = result.conflicts
        out[f"{arm}_propagations"] = result.propagations
    definitive = {s for s in statuses.values() if s in ("SAT", "UNSAT")}
    assert len(definitive) <= 1, f"arms contradict at bound {bound}: {statuses}"
    out["gate_ok"] = out["preprocessed_wall_s"] <= out["raw_wall_s"] * GATE_TOLERANCE
    return out


def bench_proof_overhead(modes: int, max_conflicts: int) -> dict:
    """The fixed hard rung with and without DRAT proof logging.

    Both arms burn the identical conflict budget on the identical raw
    instance, so the wall ratio isolates what ``--proof`` costs the
    search itself.  The proof arm also reports how much trace it banked.
    """
    from repro.core.descent import build_base_formula, measured_weight
    from repro.encodings.bravyi_kitaev import bravyi_kitaev
    from repro.sat.drat import ProofLog
    from repro.sat.solver import CdclSolver

    config = FermihedralConfig(algebraic_independence=False)
    baseline = bravyi_kitaev(modes)
    bound = 2 * 2 * modes
    out: dict = {"modes": modes, "bound": bound, "max_conflicts": max_conflicts}
    statuses = {}
    for arm in ("plain", "proof"):
        log = ProofLog() if arm == "proof" else None
        started = time.monotonic()
        encoder, indicators = build_base_formula(modes, config)
        selectors = encoder.weight_ladder(
            indicators, measured_weight(baseline) - 1)
        solver = CdclSolver(
            encoder.formula,
            seed_phases=encoder.encoding_assignment(baseline),
            proof=log,
        )
        result = solver.solve(
            max_conflicts=max_conflicts, assumptions=(selectors[bound],))
        wall = time.monotonic() - started
        statuses[arm] = result.status
        out[f"{arm}_wall_s"] = round(wall, 3)
        out[f"{arm}_status"] = result.status
        out[f"{arm}_conflicts"] = result.conflicts
        if log is not None:
            out["proof_lines_banked"] = len(log)
    definitive = {s for s in statuses.values() if s in ("SAT", "UNSAT")}
    assert len(definitive) <= 1, f"proof arm contradicts: {statuses}"
    out["overhead_ratio"] = round(
        out["proof_wall_s"] / max(out["plain_wall_s"], 1e-9), 3)
    out["gate_ok"] = (
        out["proof_wall_s"] <= out["plain_wall_s"] * PROOF_GATE_TOLERANCE)
    return out


def bench_telemetry_overhead(modes: int, max_conflicts: int) -> dict:
    """The fixed hard rung with and without a live telemetry handle.

    Same shape as :func:`bench_proof_overhead`: identical conflict
    budget, identical raw instance, best wall of three runs per arm so
    the tight 5% gate measures instrumentation cost rather than machine
    jitter.  The telemetry arm also reports how many spans and counter
    samples it banked, proving the handle was actually live.
    """
    from repro.core.descent import build_base_formula, measured_weight
    from repro.encodings.bravyi_kitaev import bravyi_kitaev
    from repro.sat.solver import CdclSolver
    from repro.telemetry import Telemetry

    config = FermihedralConfig(algebraic_independence=False)
    baseline = bravyi_kitaev(modes)
    bound = 2 * 2 * modes
    out: dict = {"modes": modes, "bound": bound, "max_conflicts": max_conflicts}
    statuses = {}
    for arm in ("plain", "telemetry"):
        telemetry = Telemetry() if arm == "telemetry" else None
        best_wall = None
        for _ in range(3):
            started = time.monotonic()
            encoder, indicators = build_base_formula(modes, config)
            selectors = encoder.weight_ladder(
                indicators, measured_weight(baseline) - 1)
            solver = CdclSolver(
                encoder.formula,
                seed_phases=encoder.encoding_assignment(baseline),
                telemetry=telemetry,
            )
            result = solver.solve(
                max_conflicts=max_conflicts, assumptions=(selectors[bound],))
            wall = time.monotonic() - started
            if best_wall is None or wall < best_wall:
                best_wall = wall
        statuses[arm] = result.status
        out[f"{arm}_wall_s"] = round(best_wall, 3)
        out[f"{arm}_status"] = result.status
        out[f"{arm}_conflicts"] = result.conflicts
        if telemetry is not None:
            rendered = telemetry.render_metrics()
            out["telemetry_metric_lines"] = sum(
                1 for line in rendered.splitlines()
                if line and not line.startswith("#"))
    definitive = {s for s in statuses.values() if s in ("SAT", "UNSAT")}
    assert len(definitive) <= 1, f"telemetry arm contradicts: {statuses}"
    out["overhead_ratio"] = round(
        out["telemetry_wall_s"] / max(out["plain_wall_s"], 1e-9), 3)
    out["gate_ok"] = (
        out["telemetry_wall_s"]
        <= out["plain_wall_s"] * TELEMETRY_GATE_TOLERANCE)
    return out


def bench_solver_health() -> dict:
    started = time.monotonic()
    assert solve_formula(_pigeonhole(7, 6)).is_unsat
    pigeonhole_wall = time.monotonic() - started
    started = time.monotonic()
    statuses = [solve_formula(_random_3sat(seed, 60, 4.26)).status for seed in range(5)]
    transition_wall = time.monotonic() - started
    assert all(status in ("SAT", "UNSAT") for status in statuses)
    assert solve_formula(_random_3sat(3, 120, 2.0)).is_sat
    return {
        "pigeonhole_7_6_wall_s": round(pigeonhole_wall, 3),
        "random_3sat_phase_transition_wall_s": round(transition_wall, 3),
    }


def _format(data: dict) -> str:
    lines = []
    for key, value in data.items():
        lines.append(f"  {key:<38} {value}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--json", nargs="?", const=str(_harness.RESULTS_DIR),
                        default=None, metavar="DIR",
                        help="also write BENCH_sat_*.json files "
                             "(default DIR: benchmarks/results)")
    parser.add_argument("--modes", type=int,
                        default=int_env("FERMIHEDRAL_BENCH_LADDER_MODES", 6),
                        help="ladder workload size (default: 6)")
    parser.add_argument("--max-conflicts", type=int,
                        default=int_env("FERMIHEDRAL_BENCH_LADDER_CONFLICTS", 20000),
                        help="deterministic conflict budget per ladder rung")
    parser.add_argument("--skip-full", action="store_true",
                        help="skip the unlimited-budget full descent")
    args = parser.parse_args(argv)
    if args.json:
        _harness.JSON_DIR = args.json

    health = bench_solver_health()
    report("sat_solver_health", _format(health), data=health)

    sections = [("solver-health", health)]
    if not args.skip_full:
        full = bench_descent_full()
        if PR3_BASELINE["full_wall_s"]:
            # Per-arm: on an instance this small the trajectory (how many
            # rungs the descent happens to visit) dominates the wall, so a
            # single blended number would mislead.
            full["pr3_reference_wall_s"] = PR3_BASELINE["full_wall_s"]
            full["raw_speedup_vs_pr3"] = round(
                PR3_BASELINE["full_wall_s"] / full["raw_wall_s"], 2)
            full["preprocessed_speedup_vs_pr3"] = round(
                PR3_BASELINE["full_wall_s"] / full["preprocessed_wall_s"], 2)
        report("sat_descent_full", _format(full), data=full)
        sections.append(("descent-full", full))

    ladder = bench_descent_ladder(args.modes, args.max_conflicts)
    if args.modes == 6 and PR3_BASELINE["ladder_conflicts_per_s"]:
        ladder["pr3_reference_conflicts_per_s"] = PR3_BASELINE["ladder_conflicts_per_s"]
        ladder["throughput_vs_pr3"] = round(
            ladder["preprocessed_conflicts_per_s"]
            / PR3_BASELINE["ladder_conflicts_per_s"], 2)
    report("sat_descent_ladder", _format(ladder), data=ladder)
    sections.append(("descent-ladder", ladder))

    rung = bench_ladder_rung(args.modes, args.max_conflicts)
    report("sat_ladder_rung", _format(rung), data=rung)
    sections.append(("ladder-rung", rung))

    overhead = bench_proof_overhead(args.modes, args.max_conflicts)
    report("sat_proof_overhead", _format(overhead), data=overhead)
    sections.append(("proof-overhead", overhead))

    tele = bench_telemetry_overhead(args.modes, args.max_conflicts)
    report("sat_telemetry_overhead", _format(tele), data=tele)
    sections.append(("telemetry-overhead", tele))

    failed = False
    if not rung["gate_ok"]:
        print(
            f"FAIL: preprocessed rung ({rung['preprocessed_wall_s']}s) is "
            f"slower than the raw rung ({rung['raw_wall_s']}s) beyond the "
            f"{GATE_TOLERANCE}x noise tolerance",
            file=sys.stderr,
        )
        failed = True
    if not overhead["gate_ok"]:
        print(
            f"FAIL: proof logging ({overhead['proof_wall_s']}s) slowed the "
            f"rung ({overhead['plain_wall_s']}s) beyond the "
            f"{PROOF_GATE_TOLERANCE}x budget",
            file=sys.stderr,
        )
        failed = True
    if not tele["gate_ok"]:
        print(
            f"FAIL: live telemetry ({tele['telemetry_wall_s']}s) slowed the "
            f"rung ({tele['plain_wall_s']}s) beyond the "
            f"{TELEMETRY_GATE_TOLERANCE}x budget",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    for name, data in sections:
        print(f"ok: {name}")
    return 0


# -- pytest smoke entry points (explicit invocation only; bench_* files are
# -- not collected by the tier-1 run) ----------------------------------------


def test_bench_solver_health():
    bench_solver_health()


def test_bench_descent_full_small():
    data = bench_descent_full(modes=3)
    assert data["proved_optimal"]


def test_bench_descent_ladder_small():
    data = bench_descent_ladder(modes=4, max_conflicts=2000)
    assert data["preprocessed_conflicts"] >= 0


def test_bench_proof_overhead_small():
    data = bench_proof_overhead(modes=4, max_conflicts=500)
    assert data["plain_status"] == data["proof_status"]
    assert data["proof_lines_banked"] > 0


def test_bench_telemetry_overhead_small():
    data = bench_telemetry_overhead(modes=4, max_conflicts=500)
    assert data["plain_status"] == data["telemetry_status"]
    assert data["telemetry_metric_lines"] > 0


def test_bench_ladder_rung_small():
    data = bench_ladder_rung(modes=4, max_conflicts=500)
    assert data["preprocessed_status"] == data["raw_status"] or (
        "UNKNOWN" in (data["preprocessed_status"], data["raw_status"]))


if __name__ == "__main__":
    sys.exit(main())
