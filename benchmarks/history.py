"""Runnable front door for the perf-history ledger.

Thin wrapper over :mod:`repro.analysis.perfhistory` so CI (and anyone
without the console script on PATH) can record and compare benchmark
runs directly::

    python benchmarks/history.py record --json-dir /tmp/bench-json
    python benchmarks/history.py compare --json-dir /tmp/bench-json

``repro bench record`` / ``repro bench compare`` drive the same
functions; this module only resolves the default ledger path relative
to the repo checkout (``benchmarks/results/history.jsonl``) and maps
the comparison verdict onto the exit code — non-zero means at least
one metric regressed beyond the threshold.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Runnable both as a script and with benchmarks/ on sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.perfhistory import (  # noqa: E402
    DEFAULT_THRESHOLD,
    compare_runs,
    format_report,
    record_run,
)

DEFAULT_LEDGER = Path(__file__).resolve().parent / "results" / "history.jsonl"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record benchmark snapshots into the perf-history "
                    "ledger, or compare a fresh run against the last "
                    "recorded commit."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="append a run to the ledger")
    record.add_argument("--json-dir", required=True,
                        help="directory of BENCH_*.json snapshots "
                             "(the suite's --json DIR)")
    record.add_argument("--history", default=str(DEFAULT_LEDGER),
                        help=f"ledger path (default: {DEFAULT_LEDGER})")
    record.add_argument("--sha", default=None,
                        help="override the recorded git sha")
    record.add_argument("--note", default=None,
                        help="free-form annotation stored with the run")

    compare = sub.add_parser("compare", help="diff a run against the ledger")
    compare.add_argument("--json-dir", required=True,
                         help="directory of BENCH_*.json snapshots")
    compare.add_argument("--history", default=str(DEFAULT_LEDGER),
                         help=f"ledger path (default: {DEFAULT_LEDGER})")
    compare.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                         help="fractional regression threshold "
                              "(default: 0.10)")
    compare.add_argument("--sha", default=None,
                         help="treat this sha as the commit under test")

    args = parser.parse_args(argv)
    if args.command == "record":
        entries = record_run(args.json_dir, args.history,
                             sha=args.sha, note=args.note)
        if not entries:
            print(f"error: no BENCH_*.json snapshots in {args.json_dir}",
                  file=sys.stderr)
            return 2
        print(f"recorded {len(entries)} benchmark(s) at sha "
              f"{entries[0]['sha'][:12]} -> {args.history}")
        return 0
    report = compare_runs(args.json_dir, args.history,
                          threshold=args.threshold, sha=args.sha)
    print(format_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
