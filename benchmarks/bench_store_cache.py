"""Compilation-store benchmark — cold compile vs. cache hit vs. warm start.

Not a paper table; measures the subsystem the serving/batching roadmap
items build on.  Three timings per mode count:

* **cold** — full SAT descent, empty cache.
* **hit** — the same job answered from the populated cache (should be
  file-read time, zero SAT calls).
* **warm** — the cache seeded with an *unproved* baseline-quality entry,
  so the descent restarts from it rather than from Bravyi-Kitaev.
"""

from __future__ import annotations

import tempfile
import time

from _harness import budget_seconds, max_modes, report

from repro.core import (
    METHOD_INDEPENDENT,
    CompilationResult,
    FermihedralCompiler,
    FermihedralConfig,
    SolverBudget,
)
from repro.core.descent import DescentResult
from repro.encodings import bravyi_kitaev
from repro.store import CompilationCache


def _unproved_entry(num_modes: int) -> CompilationResult:
    encoding = bravyi_kitaev(num_modes)
    descent = DescentResult(
        encoding=encoding,
        weight=encoding.total_majorana_weight,
        proved_optimal=False,
        steps=[],
    )
    return CompilationResult(
        encoding=encoding,
        method="full-sat/independent",
        weight=encoding.total_majorana_weight,
        proved_optimal=False,
        descent=descent,
    )


def main() -> None:
    config = FermihedralConfig(
        budget=SolverBudget(time_budget_s=budget_seconds(30.0))
    )
    rows = ["modes  cold_s    hit_s     warm_s    cold_calls  warm_calls"]
    for num_modes in range(1, max_modes(4) + 1):
        with tempfile.TemporaryDirectory() as root:
            cache = CompilationCache(root)
            started = time.monotonic()
            cold = FermihedralCompiler(num_modes, config, cache=cache)
            cold_result = cold.compile(method=METHOD_INDEPENDENT)
            cold_s = time.monotonic() - started

            started = time.monotonic()
            hot = FermihedralCompiler(num_modes, config, cache=cache)
            hot.compile(method=METHOD_INDEPENDENT)
            hit_s = time.monotonic() - started
            assert hot.last_cache_status == "hit"

        with tempfile.TemporaryDirectory() as root:
            cache = CompilationCache(root)
            key = cache.key_for(
                num_modes=num_modes, config=config, method=METHOD_INDEPENDENT
            )
            cache.put(key, _unproved_entry(num_modes))
            started = time.monotonic()
            warm = FermihedralCompiler(num_modes, config, cache=cache)
            warm_result = warm.compile(method=METHOD_INDEPENDENT)
            warm_s = time.monotonic() - started
            assert warm.last_cache_status == "warm-start"

        rows.append(
            f"{num_modes:<6d} {cold_s:<9.3f} {hit_s:<9.4f} {warm_s:<9.3f} "
            f"{cold_result.descent.sat_calls:<11d} "
            f"{warm_result.descent.sat_calls:<10d}"
        )
    report("store_cache", "\n".join(rows))


if __name__ == "__main__":
    main()
