"""Figure 6 — average Pauli weight per Majorana, small scale (Full SAT vs BK).

The paper reports the SAT optimum tracking ``0.56·log2(N) + 0.95`` against
Bravyi-Kitaev's ``0.73·log2(N) + 0.94`` for 1-8 modes; the same series and
fits are regenerated here (default cap 4 modes — the pure-Python solver
proves optimality to N=4 in seconds; raise FERMIHEDRAL_BENCH_MAX_MODES
with a larger FERMIHEDRAL_BENCH_BUDGET_S to extend).
"""

from __future__ import annotations

from _harness import budget_seconds, max_modes, report

from repro.analysis import average_weight_per_majorana, fit_log2
from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, descend
from repro.encodings import bravyi_kitaev

MODES = max_modes(4)


def _solve(num_modes: int):
    config = FermihedralConfig(
        budget=SolverBudget(time_budget_s=budget_seconds(30.0))
    )
    return descend(num_modes, config=config)


def test_fig06_small_scale_weight(benchmark):
    rows = []
    sat_points = []
    bk_points = []
    for num_modes in range(1, MODES + 1):
        result = _solve(num_modes)
        bk = bravyi_kitaev(num_modes)
        sat_avg = average_weight_per_majorana(result.encoding)
        bk_avg = average_weight_per_majorana(bk)
        sat_points.append((num_modes, sat_avg))
        bk_points.append((num_modes, bk_avg))
        rows.append(
            [
                num_modes,
                f"{bk_avg:.3f}",
                f"{sat_avg:.3f}",
                "yes" if result.proved_optimal else "budget",
                result.weight,
            ]
        )

    lines = [format_table(["modes", "BK w/op", "FullSAT w/op", "optimal?", "total"], rows)]
    if len(sat_points) >= 2:
        sat_fit = fit_log2(*zip(*sat_points))
        bk_fit = fit_log2(*zip(*bk_points))
        lines.append(f"Full SAT fit: {sat_fit}   (paper: 0.56*log2(N) + 0.95)")
        lines.append(f"BK fit:       {bk_fit}   (paper: 0.73*log2(N) + 0.94)")
    report("fig06_small_scale_weight", "\n".join(lines))

    # Shape assertions: SAT never above BK, strictly below from N=2 on.
    for (modes, sat_avg), (_, bk_avg) in zip(sat_points, bk_points):
        assert sat_avg <= bk_avg + 1e-9
        if modes >= 2:
            assert sat_avg < bk_avg

    benchmark.pedantic(_solve, args=(2,), rounds=1, iterations=1)
