"""Hardware-aware vs weight-only encodings, routed onto real topologies.

Following Chien & Klassen (arXiv:2210.05652) and Williams de la Bastida et
al. (arXiv:2512.13580): the encoding that minimizes abstract Pauli weight
is not automatically the one that minimizes *routed* two-qubit gate count
once a device's coupling graph is in play.

Two arms per (model, device) case, scored by the same
:class:`~repro.hardware.cost.HardwareCostModel` (identical synthesis,
layout and SWAP-insertion pipeline, so the comparison is apples-to-apples):

* **weight-only** — the plain Full-SAT optimum, compiled ignoring the
  device, then routed;
* **hardware-aware** — the device-bound compiler: connectivity-weighted
  SAT objective plus routed-cost candidate selection.  The portfolio
  explicitly includes the weight-only optimum, so by construction the
  hardware-aware arm's routed CNOT count never exceeds the weight-only
  arm's — the asserted invariant; the interesting number is how often
  (and by how much) it is strictly better.

Cases: H2 (4 modes) across a line, a grid, a heavy-hex cell and
all-to-all; 2x2 Fermi-Hubbard (8 modes) on the 3x3 grid of the ISSUE's
acceptance scenario.
"""

from __future__ import annotations

import time

from _harness import budget_seconds, max_modes, report

from repro.analysis.tables import format_table
from repro.core import FermihedralCompiler, FermihedralConfig, SolverBudget, solve_full_sat
from repro.encodings import bravyi_kitaev
from repro.fermion import h2_hamiltonian, hubbard_lattice
from repro.hardware import HardwareCostModel, get_device

MODES_CAP = max_modes(8)


def _cases():
    h2 = h2_hamiltonian()
    hubbard = hubbard_lattice(2, 2)
    candidates = [
        ("H2", h2, "linear-5"),
        ("H2", h2, "grid-2x3"),
        ("H2", h2, "heavy-hex-1x1"),
        ("H2", h2, "all-to-all-4"),
        ("2x2 Hubbard", hubbard, "grid-3x3"),
    ]
    return [(name, h, device) for name, h, device in candidates
            if h.num_modes <= MODES_CAP]


def _config(num_modes: int) -> FermihedralConfig:
    return FermihedralConfig(
        algebraic_independence=num_modes <= 4,
        budget=SolverBudget(time_budget_s=budget_seconds(15.0)),
    )


def test_hardware_routing(benchmark):
    rows = []
    json_cases = []
    for name, hamiltonian, device in _cases():
        topology = get_device(device)
        model = HardwareCostModel(topology)

        started = time.monotonic()
        weight_only = solve_full_sat(hamiltonian, _config(hamiltonian.num_modes))
        weight_cost = model.cost_of_encoding(weight_only.encoding, hamiltonian)
        weight_elapsed = time.monotonic() - started

        started = time.monotonic()
        compiler = FermihedralCompiler(
            hamiltonian.num_modes, _config(hamiltonian.num_modes), device=topology
        )
        aware = compiler.full_sat(hamiltonian)
        # Portfolio step: also score the weight-only optimum, and report
        # whichever encoding wins — weight and routed cost always describe
        # the same encoding.
        chosen, aware_cost = model.best_encoding(
            [aware.encoding, weight_only.encoding], hamiltonian
        )
        aware_weight = chosen.hamiltonian_pauli_weight(hamiltonian)
        aware_elapsed = time.monotonic() - started

        # Real invariant of the device-bound pipeline: it never routes
        # worse than a textbook baseline it could have had for free.
        assert aware.hardware.two_qubit_count <= model.cost_of_encoding(
            bravyi_kitaev(hamiltonian.num_modes), hamiltonian
        ).two_qubit_count
        # Portfolio guarantee (by construction, since the weight-only
        # optimum is a candidate): the acceptance criterion's <=.
        assert aware_cost.two_qubit_count <= weight_cost.two_qubit_count

        rows.append([
            name, device,
            weight_only.weight, weight_cost.two_qubit_count, weight_cost.depth,
            aware_weight, aware_cost.two_qubit_count, aware_cost.depth,
            aware_cost.swap_count,
        ])
        json_cases.append({
            "model": name,
            "device": device,
            "weight_only": {
                "weight": weight_only.weight,
                "routed_two_qubit": weight_cost.two_qubit_count,
                "depth": weight_cost.depth,
                "swaps": weight_cost.swap_count,
                "wall_time_s": weight_elapsed,
            },
            "hardware_aware": {
                "weight": aware_weight,
                "routed_two_qubit": aware_cost.two_qubit_count,
                "depth": aware_cost.depth,
                "swaps": aware_cost.swap_count,
                "pipeline_routed_two_qubit": aware.hardware.two_qubit_count,
                "wall_time_s": aware_elapsed,
            },
        })

    table = format_table(
        ["case", "device",
         "W-only weight", "W-only 2q", "W-only depth",
         "HW weight", "HW 2q", "HW depth", "HW swaps"],
        rows,
    )
    report(
        "hardware_routing",
        table,
        data={
            "params": {
                "modes_cap": MODES_CAP,
                "budget_s": budget_seconds(15.0),
            },
            "cases": json_cases,
        },
    )

    # Steady-state cost of the routing pass itself (no SAT in the loop).
    h2 = h2_hamiltonian()
    linear = HardwareCostModel(get_device("linear-5"))
    benchmark(linear.cost_of_encoding, bravyi_kitaev(4), h2)
