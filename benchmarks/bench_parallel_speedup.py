"""Parallel-engine benchmark — batch fan-out vs naive serial, and
incremental vs cold-start descent.

Two comparisons, mirroring the two halves of the parallel subsystem:

* **batch** — a sweep-shaped workload (each distinct job appears several
  times, as a bond-length sweep does after coefficient-free
  fingerprinting) compiled two ways: the naive serial loop a user would
  write (one ``FermihedralCompiler`` per job, no dedup, no cache) vs the
  4-worker ``BatchCompiler`` process executor (fingerprint dedup before
  dispatch, shared cache, parent-side fast path).  The reported speedup
  therefore compounds deduplication with process parallelism — both are
  things the serial loop does not do.  The acceptance bar is >= 1.8x;
  identical weights and optimality proofs across arms are asserted, and
  ``--jobs 1`` vs ``--jobs 4`` equality of the batch executor itself is
  asserted on top.
* **descent** — one incremental SAT instance with assumption-activated
  bounds vs rebuilding the CNF at every rung of the weight ladder, cold.

Scale knobs: ``FERMIHEDRAL_BENCH_MAX_MODES`` caps the sweep's mode
count, ``FERMIHEDRAL_BENCH_BUDGET_S`` the per-SAT-call budget.
"""

from __future__ import annotations

import tempfile
import time

from _harness import budget_seconds, max_modes, report

from repro.core import FermihedralCompiler, FermihedralConfig, SolverBudget
from repro.core.descent import descend
from repro.store import BatchCompiler, CompilationCache, CompileJob

#: How many times each distinct job repeats in the sweep workload.
SWEEP_REPEATS = 4


def _config() -> FermihedralConfig:
    return FermihedralConfig(budget=SolverBudget(time_budget_s=budget_seconds(30.0)))


def _sweep_jobs(modes_cap: int) -> list[CompileJob]:
    jobs = []
    for num_modes in range(2, modes_cap + 1):
        for repeat in range(SWEEP_REPEATS):
            jobs.append(CompileJob(
                method="independent",
                num_modes=num_modes,
                label=f"{num_modes}-modes/pt-{repeat}",
            ))
    return jobs


def _naive_serial(jobs: list[CompileJob], config: FermihedralConfig) -> list:
    """The baseline loop: every job solved from scratch, independently."""
    results = []
    for job in jobs:
        compiler = FermihedralCompiler(job.modes, config)
        results.append(compiler.compile(method=job.method))
    return results


def test_parallel_speedup():
    modes_cap = max_modes(3)
    config = _config()
    jobs = _sweep_jobs(modes_cap)

    started = time.monotonic()
    serial_results = _naive_serial(jobs, config)
    serial_s = time.monotonic() - started

    with tempfile.TemporaryDirectory() as root:
        started = time.monotonic()
        batch = BatchCompiler(
            cache=CompilationCache(root), jobs=4, default_config=config
        )
        batch_report = batch.compile(jobs)
        batch_s = time.monotonic() - started

    assert batch_report.ok
    batch_speedup = serial_s / max(batch_s, 1e-9)

    # Same answers, whatever the execution strategy.
    serial_answers = [(r.weight, r.proved_optimal) for r in serial_results]
    batch_answers = [
        (o.result.weight, o.result.proved_optimal) for o in batch_report.outcomes
    ]
    assert serial_answers == batch_answers

    # --jobs 1 vs --jobs 4 of the executor itself: identical outcomes.
    one = BatchCompiler(jobs=1, default_config=config).compile(jobs)
    assert [(o.result.weight, o.result.proved_optimal) for o in one.outcomes] \
        == batch_answers

    # Incremental vs cold-start descent on the hardest mode count.
    started = time.monotonic()
    incremental = descend(modes_cap, config)
    incremental_s = time.monotonic() - started
    started = time.monotonic()
    cold = descend(modes_cap, config.with_parallelism(incremental=False))
    cold_s = time.monotonic() - started
    assert incremental.weight == cold.weight
    assert incremental.proved_optimal == cold.proved_optimal
    descent_speedup = cold_s / max(incremental_s, 1e-9)

    lines = [
        f"workload: {len(jobs)} jobs "
        f"({len(jobs) // SWEEP_REPEATS} unique x {SWEEP_REPEATS} sweep points), "
        f"modes 2..{modes_cap}",
        f"serial loop      {serial_s:8.2f}s",
        f"4-worker batch   {batch_s:8.2f}s   speedup {batch_speedup:5.2f}x",
        "",
        f"descent at N={modes_cap}: "
        f"cold {cold_s:.2f}s vs incremental {incremental_s:.2f}s "
        f"({descent_speedup:.2f}x, weight {incremental.weight}, "
        f"proved={incremental.proved_optimal})",
    ]
    report(
        "parallel_speedup",
        "\n".join(lines),
        data={
            "params": {
                "jobs": len(jobs),
                "unique_jobs": len(jobs) // SWEEP_REPEATS,
                "sweep_repeats": SWEEP_REPEATS,
                "modes_cap": modes_cap,
                "budget_s": budget_seconds(30.0),
                "workers": 4,
            },
            "batch": {
                "serial_wall_s": serial_s,
                "parallel_wall_s": batch_s,
                "speedup": batch_speedup,
            },
            "descent": {
                "cold_wall_s": cold_s,
                "incremental_wall_s": incremental_s,
                "speedup": descent_speedup,
            },
        },
    )

    # The acceptance bar: dedup + process fan-out must beat the naive
    # loop by a wide margin on a sweep-shaped workload.
    assert batch_speedup >= 1.8, (
        f"4-worker batch speedup {batch_speedup:.2f}x below the 1.8x bar"
    )


if __name__ == "__main__":
    test_parallel_speedup()
