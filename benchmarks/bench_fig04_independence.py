"""Figure 4 — probability that ``n`` column events ``A_k`` hold simultaneously.

The paper samples optimal encodings (with algebraic-independence clauses
applied) and shows the empirical probability of ``n`` simultaneous
identity-column events tracks ``1/4^n`` — the justification for dropping
the exponential clause family (Section 4.1).
"""

from __future__ import annotations

from _harness import budget_seconds, int_env, max_modes, report

from repro.analysis import (
    estimate_simultaneous_probability,
    sample_optimal_encodings,
)
from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget

MODES = max_modes(3)
SAMPLES = int_env("FERMIHEDRAL_BENCH_FIG4_SAMPLES", 16)
TRIALS = int_env("FERMIHEDRAL_BENCH_FIG4_TRIALS", 6000)


def _sample(num_modes: int):
    config = FermihedralConfig(
        budget=SolverBudget(time_budget_s=budget_seconds(20.0))
    )
    return sample_optimal_encodings(num_modes, count=SAMPLES, config=config)


def test_fig04_probability_tracks_quarter_power(benchmark):
    encodings = {n: _sample(n) for n in range(2, MODES + 1)}
    rows = []
    for num_modes, sampled in encodings.items():
        if not sampled:
            continue
        for events in range(1, num_modes + 1):
            estimate = estimate_simultaneous_probability(
                sampled, events, trials=TRIALS, seed=99 + events
            )
            rows.append(
                [
                    num_modes,
                    events,
                    f"{estimate.probability:.4f}",
                    f"{estimate.prediction:.4f}",
                    f"{estimate.ratio_to_prediction:.2f}x",
                ]
            )

    table = format_table(
        ["modes", "n events", "P(empirical)", "1/4^n", "ratio"], rows
    )
    report("fig04_independence", table)

    # The paper's claim: empirical probability within a small factor of 4^-n.
    for row in rows:
        empirical, predicted = float(row[2]), float(row[3])
        assert empirical <= max(4.0 * predicted, 0.02)

    sampled = encodings[2]
    benchmark(
        estimate_simultaneous_probability, sampled, 1, 2000, 5
    )
