"""Ablation — random valid encodings vs constructive vs SAT-optimal.

Quantifies how much of Fermihedral's win is *optimization* rather than
mere validity: Clifford-scrambled random encodings satisfy every
constraint yet weigh far more than Jordan-Wigner, let alone the SAT
optimum.  (This also validates the paper's premise that the encoding
choice matters enormously.)
"""

from __future__ import annotations

import statistics

from _harness import budget_seconds, int_env, report

from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, descend
from repro.encodings import bravyi_kitaev, jordan_wigner, random_encoding, ternary_tree

SAMPLES = int_env("FERMIHEDRAL_BENCH_RANDOM_SAMPLES", 25)


def _random_weights(num_modes: int) -> list[int]:
    return [
        random_encoding(num_modes, seed=seed).total_majorana_weight
        for seed in range(SAMPLES)
    ]


def test_ablation_random_baseline(benchmark):
    rows = []
    for num_modes in (2, 3, 4):
        weights = _random_weights(num_modes)
        sat = descend(
            num_modes,
            config=FermihedralConfig(budget=SolverBudget(time_budget_s=budget_seconds(30.0))),
        )
        rows.append(
            [
                num_modes,
                f"{statistics.mean(weights):.1f}",
                min(weights),
                jordan_wigner(num_modes).total_majorana_weight,
                bravyi_kitaev(num_modes).total_majorana_weight,
                ternary_tree(num_modes).total_majorana_weight,
                sat.weight,
            ]
        )
        # The ordering the ablation demonstrates:
        assert sat.weight <= min(weights)
        assert sat.weight <= jordan_wigner(num_modes).total_majorana_weight
        assert statistics.mean(weights) > sat.weight

    table = format_table(
        ["modes", "random mean", "random best", "JW", "BK", "TT", "Full SAT"],
        rows,
    )
    report("ablation_random_baseline", table)

    benchmark(_random_weights, 4)
