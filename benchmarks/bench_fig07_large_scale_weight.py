"""Figure 7 — average Pauli weight per Majorana at larger scale (SAT w/o Alg vs BK).

The paper runs 9-19 modes, where the algebraic-independence clauses are
dropped and solutions are rank-checked instead (Section 4.1).  Default
sweep here is 5-7 modes under a per-call budget: the series reproduces the
paper's two properties — the SAT line sits below BK, and BK oscillates
with mode count while the SAT optimum moves smoothly.
"""

from __future__ import annotations

from _harness import budget_seconds, int_env, max_modes, report

from repro.analysis import average_weight_per_majorana, improvement_percent
from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, descend
from repro.core.verify import verify_encoding
from repro.encodings import bravyi_kitaev

MIN_MODES = int_env("FERMIHEDRAL_BENCH_FIG7_MIN", 5)
MODES = max_modes(7)


def _solve(num_modes: int):
    config = FermihedralConfig(
        algebraic_independence=False,
        budget=SolverBudget(time_budget_s=budget_seconds(45.0)),
    )
    return descend(num_modes, config=config)


def test_fig07_large_scale_weight(benchmark):
    rows = []
    for num_modes in range(MIN_MODES, MODES + 1):
        result = _solve(num_modes)
        report_card = verify_encoding(result.encoding)
        assert report_card.valid, "w/o-Alg repair loop must deliver valid encodings"
        bk = bravyi_kitaev(num_modes)
        sat_avg = average_weight_per_majorana(result.encoding)
        bk_avg = average_weight_per_majorana(bk)
        rows.append(
            [
                num_modes,
                f"{bk_avg:.3f}",
                f"{sat_avg:.3f}",
                f"{improvement_percent(bk_avg, sat_avg):.1f}%",
                result.repairs,
                "yes" if result.proved_optimal else "budget",
            ]
        )
        assert sat_avg <= bk_avg + 1e-9

    table = format_table(
        ["modes", "BK w/op", "SAT w/o Alg w/op", "improvement", "repairs", "optimal?"],
        rows,
    )
    report("fig07_large_scale_weight", table)

    benchmark.pedantic(_solve, args=(MIN_MODES,), rounds=1, iterations=1)
