"""Service-layer benchmark — warm request throughput over HTTP.

Not a paper table; measures the front door the serving roadmap items
build on.  A real daemon is started on an ephemeral port with a
pre-warmed cache, then hammered by concurrent clients — the workload
shape of many users compiling against one shared cache, where every
request is answered without a SAT call.  The two submission paths are
measured separately because they exercise different machinery:

* **submit-hit** — ``POST /jobs`` of a *first-seen* fingerprint whose
  result is already in the cache: fingerprinting + a real cache read
  and decode, answered synchronously.  (Each request uses a distinct
  pre-warmed fingerprint so the in-memory registry can never answer.)
* **submit-dedup** — ``POST /jobs`` of a fingerprint the registry
  already owns: the in-memory collapse path duplicate-heavy traffic
  takes.
* **poll** — ``GET /jobs/<id>`` *with* the full result payload
  (serialization + transport of the versioned result schema).
* **poll-light** — ``GET /jobs/<id>?result=0`` (queue-state polling).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --json DIR

or under pytest (``python -m pytest benchmarks/bench_service_throughput.py``)
for a scaled-down smoke version.  ``FERMIHEDRAL_BENCH_SHOTS`` resizes
the request count.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import _harness
from _harness import int_env, report

from repro.core import FermihedralCompiler, FermihedralConfig, SolverBudget
from repro.service import CompilationService, ServiceClient, ServiceServer
from repro.store import CompilationCache

#: Concurrent client threads (the HTTP server is threaded too).
CLIENTS = 8


def _timed_loop(client_count: int, requests: int, make_call) -> float:
    """Run ``requests`` calls across ``client_count`` threads; returns req/s."""
    counter = iter(range(requests))
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                if next(counter, None) is None:
                    return
            make_call()

    threads = [threading.Thread(target=worker) for _ in range(client_count)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return requests / max(time.monotonic() - started, 1e-9)


def _prewarm_distinct_keys(cache_dir: Path, config, count: int) -> list[dict]:
    """``count`` distinct cache-hit specs, each its own fingerprint.

    One real compile produces the result; it is then stored under the
    keys of ``count`` budget-variant jobs (the budget is part of the
    fingerprint, so each variant is a distinct first-seen submission
    that must be answered by an actual cache read, never by the
    in-memory registry).
    """
    import dataclasses

    from repro.core import SolverBudget as Budget

    cache = CompilationCache(cache_dir)
    result = FermihedralCompiler(2, config, cache=cache).compile(
        method="independent"
    )
    specs = []
    base_s = config.budget.time_budget_s
    for offset in range(1, count + 1):
        budget_s = base_s + offset
        variant = dataclasses.replace(config, budget=Budget(time_budget_s=budget_s))
        cache.put(
            cache.key_for(num_modes=2, config=variant, method="independent"),
            result,
        )
        specs.append({
            "modes": 2, "method": "independent",
            "config": {"budget_s": budget_s},
        })
    return specs


def run_bench(requests: int, budget_s: float) -> dict:
    config = FermihedralConfig(budget=SolverBudget(time_budget_s=budget_s))
    with tempfile.TemporaryDirectory() as root:
        cache_dir = Path(root) / "cache"
        hit_specs = _prewarm_distinct_keys(cache_dir, config, requests)

        service = CompilationService(
            cache=CompilationCache(cache_dir),
            default_config=config,
            use_processes=False,  # hits never reach a worker anyway
            queue_limit=max(64, requests),
            max_records=2 * requests + 64,
        ).start()
        server = ServiceServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_until_stopped, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url, timeout=30.0)
            spec = {"modes": 2, "method": "independent"}
            record = client.submit(spec)
            assert record["status"] == "done", "expected a synchronous hit"
            job_id = record["id"]

            remaining = iter(hit_specs)
            pick = threading.Lock()

            def submit_hit():
                with pick:
                    hit_spec = next(remaining)
                assert client.submit(hit_spec)["status"] == "done"

            def submit_dedup():
                assert client.submit(spec)["status"] == "done"

            def poll():
                client.job(job_id)

            def poll_light():
                client.job(job_id, include_result=False)

            submit_hit_rps = _timed_loop(CLIENTS, requests, submit_hit)
            stats = client.stats()["counters"]
            assert stats["cache_hits"] >= requests, \
                "submit-hit arm was not answered from the cache"
            submit_dedup_rps = _timed_loop(CLIENTS, requests, submit_dedup)
            poll_rps = _timed_loop(CLIENTS, requests, poll)
            poll_light_rps = _timed_loop(CLIENTS, requests, poll_light)
        finally:
            client.shutdown(drain=False)
            thread.join(timeout=30.0)
    return {
        "requests": requests,
        "clients": CLIENTS,
        "submit_hit_rps": round(submit_hit_rps, 1),
        "submit_dedup_rps": round(submit_dedup_rps, 1),
        "poll_rps": round(poll_rps, 1),
        "poll_light_rps": round(poll_light_rps, 1),
    }


def _report(data: dict) -> None:
    lines = [
        f"workload: {data['requests']} requests x {data['clients']} "
        f"concurrent clients, warm cache (modes=2)",
        f"submit (first-seen key, real cache read) "
        f"{data['submit_hit_rps']:8.1f} req/s",
        f"submit (duplicate key, registry dedup)   "
        f"{data['submit_dedup_rps']:8.1f} req/s",
        f"poll   (GET /jobs/<id>, full result)     "
        f"{data['poll_rps']:8.1f} req/s",
        f"poll   (GET /jobs/<id>?result=0)         "
        f"{data['poll_light_rps']:8.1f} req/s",
    ]
    report("service_throughput", "\n".join(lines), data=data)


def test_service_throughput():
    data = run_bench(
        requests=int_env("FERMIHEDRAL_BENCH_SHOTS", 200), budget_s=30.0
    )
    _report(data)
    # Sanity floor, far below any healthy machine: the service must not
    # be orders of magnitude slower than a bare file read.
    assert data["submit_hit_rps"] > 20


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="DIR",
                        help="also write BENCH_service_throughput.json here")
    parser.add_argument("--requests", type=int,
                        default=int_env("FERMIHEDRAL_BENCH_SHOTS", 500))
    arguments = parser.parse_args()
    if arguments.json:
        _harness.JSON_DIR = arguments.json
    _report(run_bench(requests=arguments.requests, budget_s=30.0))
