"""Benchmark-suite configuration: make the repo-local harness importable
and wire the ``--json`` results flag into it."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        default=None,
        metavar="DIR",
        help="write machine-readable BENCH_<name>.json results into DIR",
    )


def pytest_configure(config):
    import _harness

    _harness.JSON_DIR = config.getoption("--json")
