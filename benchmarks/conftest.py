"""Benchmark-suite configuration: make the repo-local harness importable."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
