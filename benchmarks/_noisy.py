"""Shared noisy-simulation experiment used by the Figure 8/9/10 benchmarks.

One experiment = (Hamiltonian, encoding, eigenstate level, noise level):
prepare the exact eigenstate of the *encoded* Hamiltonian, run the
Trotterized evolution circuit under Monte-Carlo Pauli noise, and record
the measured-energy mean and standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import optimize_circuit, trotter_circuit
from repro.encodings.base import MajoranaEncoding
from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.simulator import (
    NoiseModel,
    diagonalize,
    distinct_eigenlevels,
    simulate_noisy_energy,
)


@dataclass(frozen=True)
class NoisyPoint:
    """One cell of a Figure 8/9-style grid."""

    encoding_name: str
    level_label: str
    reference_energy: float
    two_qubit_error: float
    mean_energy: float
    std_energy: float

    @property
    def drift(self) -> float:
        return abs(self.mean_energy - self.reference_energy)


def noisy_energy_grid(
    hamiltonian: FermionicHamiltonian,
    encoding: MajoranaEncoding,
    levels: int,
    error_rates: list[float],
    shots: int,
    noise_model: NoiseModel | None = None,
    seed: int = 1234,
    trotter_steps: int = 1,
) -> list[NoisyPoint]:
    """Evaluate the noisy-evolution energy grid for one encoding.

    ``noise_model`` overrides the swept depolarizing model (used for the
    IonQ Aria-1 substitution in Figure 10, where rates are fixed).
    ``trotter_steps`` must be large enough that the *noiseless* energy of
    the initial eigenstate is approximately conserved — otherwise Trotter
    error, not gate noise, dominates the drift (one step suffices for H2;
    the Hubbard models need several).
    """
    encoded = encoding.encode(hamiltonian).hermitian_part()
    spectrum = diagonalize(encoded)
    level_indices = distinct_eigenlevels(spectrum, levels)
    circuit = optimize_circuit(
        trotter_circuit(encoded.without_identity(), time=1.0, steps=trotter_steps)
    )

    points = []
    for label_index, level in enumerate(level_indices):
        initial = spectrum.eigenstate(level)
        reference = spectrum.energy(level)
        for rate in error_rates:
            model = noise_model or NoiseModel(
                single_qubit_error=1e-4, two_qubit_error=rate
            )
            stats = simulate_noisy_energy(
                circuit, encoded, initial, model, shots=shots, seed=seed
            )
            points.append(
                NoisyPoint(
                    encoding_name=encoding.name,
                    level_label=f"E{label_index}",
                    reference_energy=reference,
                    two_qubit_error=rate,
                    mean_energy=stats.mean,
                    std_energy=stats.std,
                )
            )
    return points
