"""Ablation — cost of the vacuum-preservation constraint variants.

Compares the optimal Hamiltonian-independent weight and instance size
under three vacuum modes: off, the paper's X/Y witness (Section 3.5), and
the exact necessary-and-sufficient constraint (this repository's
extension).  The paper states the constraint "will not affect the
correctness/optimality"; this ablation quantifies that claim and the
instance-size overhead of exactness.
"""

from __future__ import annotations

from _harness import budget_seconds, max_modes, report

from repro.analysis.tables import format_table
from repro.core import FermihedralConfig, SolverBudget, build_base_formula, descend
from repro.core.verify import verify_encoding

MODES = max_modes(3)

MODE_CONFIGS = {
    "off": dict(vacuum_preservation=False),
    "paper-witness": dict(vacuum_preservation=True, exact_vacuum=False),
    "exact": dict(vacuum_preservation=True, exact_vacuum=True),
}


def _solve(num_modes: int, **vacuum_kwargs):
    config = FermihedralConfig(
        budget=SolverBudget(time_budget_s=budget_seconds(30.0)), **vacuum_kwargs
    )
    return config, descend(num_modes, config=config)


def test_ablation_vacuum_modes(benchmark):
    rows = []
    optima: dict[tuple[int, str], int] = {}
    for num_modes in range(2, MODES + 1):
        for label, kwargs in MODE_CONFIGS.items():
            config, result = _solve(num_modes, **kwargs)
            encoder, _ = build_base_formula(num_modes, config)
            report_card = verify_encoding(result.encoding)
            optima[num_modes, label] = result.weight
            rows.append(
                [
                    num_modes,
                    label,
                    result.weight,
                    "yes" if result.proved_optimal else "budget",
                    "yes" if report_card.vacuum_preservation else "no",
                    encoder.formula.num_clauses,
                ]
            )

    table = format_table(
        ["modes", "vacuum mode", "optimal weight", "proved", "true vacuum", "#clauses"],
        rows,
    )
    report("ablation_vacuum", table)

    for num_modes in range(2, MODES + 1):
        # The paper's claim: constraining vacuum does not change optimality.
        assert optima[num_modes, "paper-witness"] == optima[num_modes, "off"]
        # Exactness costs at most nothing at these sizes.
        assert optima[num_modes, "exact"] >= optima[num_modes, "paper-witness"]

    benchmark.pedantic(
        _solve, args=(2,), kwargs=MODE_CONFIGS["exact"], rounds=1, iterations=1
    )
