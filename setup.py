from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="fermihedral-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Fermihedral: On the Optimal Compilation for "
        "Fermion-to-Qubit Encoding' (ASPLOS 2024): SAT-optimal encodings, "
        "a persistent compilation cache, and a batch compiler"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    url="https://arxiv.org/abs/2403.17794",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["networkx", "numpy"],
    extras_require={"test": ["pytest", "hypothesis"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Physics",
    ],
)
