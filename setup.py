import re
from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"


def package_version() -> str:
    """The __version__ constant of src/repro/__init__.py — the single
    source of truth, so metadata always matches the code."""
    source = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    return re.search(r'^__version__ = "([^"]+)"', source, re.MULTILINE).group(1)


setup(
    name="fermihedral-repro",
    version=package_version(),
    description=(
        "Reproduction of 'Fermihedral: On the Optimal Compilation for "
        "Fermion-to-Qubit Encoding' (ASPLOS 2024): SAT-optimal encodings, "
        "hardware-aware compilation onto device topologies, a persistent "
        "compilation cache, a batch compiler, and an HTTP compilation "
        "service"
    ),
    long_description=README.read_text() if README.exists() else "",
    long_description_content_type="text/markdown",
    url="https://arxiv.org/abs/2403.17794",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["networkx", "numpy"],
    extras_require={"test": ["pytest", "hypothesis"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Physics",
    ],
)
