"""Pauli algebra substrate: strings, sums and GF(2) symplectic structure."""

from repro.paulis.matrices import pauli_string_matrix, pauli_sum_matrix
from repro.paulis.operators import LABELS, MATRICES, PRODUCTS, operators_anticommute
from repro.paulis.strings import PauliString
from repro.paulis.symplectic import (
    are_algebraically_independent,
    dependent_subset,
    gf2_rank,
    pairwise_anticommuting,
    strings_rank,
)
from repro.paulis.terms import PauliSum, sum_of

__all__ = [
    "LABELS",
    "MATRICES",
    "PRODUCTS",
    "PauliString",
    "PauliSum",
    "are_algebraically_independent",
    "dependent_subset",
    "gf2_rank",
    "operators_anticommute",
    "pairwise_anticommuting",
    "pauli_string_matrix",
    "pauli_sum_matrix",
    "strings_rank",
    "sum_of",
]
