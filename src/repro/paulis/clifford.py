"""Clifford conjugation of Pauli strings, tableau-style.

A Clifford unitary ``U`` maps Pauli strings to Pauli strings under
conjugation: ``U P U† = ±P'``.  Tracking ``(string, sign)`` through the
elementary generators (H, S, CNOT) is the Gottesman-Knill bookkeeping; it
powers the random-encoding generator (conjugating Jordan-Wigner by a
random Clifford yields a uniformly scrambled *valid* encoding, since
conjugation preserves commutation relations, algebraic independence and
weights' parity structure — though not the weights themselves).

Conventions (standard tableau rules, qubit-local):

========  =============  =============
gate      X maps to      Z maps to
========  =============  =============
H         Z              X
S         Y              Z
CNOT c,t  X_c X_t (c)    Z_c (c)
          X_t (t)        Z_c Z_t (t)
========  =============  =============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.paulis.strings import PauliString


@dataclass(frozen=True)
class CliffordGate:
    """One elementary Clifford generator: ``H(q)``, ``S(q)`` or ``CNOT(c, t)``."""

    name: str
    qubits: tuple[int, ...]

    def __post_init__(self):
        if self.name in ("H", "S"):
            if len(self.qubits) != 1:
                raise ValueError(f"{self.name} takes one qubit")
        elif self.name == "CNOT":
            if len(self.qubits) != 2 or self.qubits[0] == self.qubits[1]:
                raise ValueError("CNOT takes two distinct qubits")
        else:
            raise ValueError(f"not a Clifford generator: {self.name!r}")


def conjugate_h(string: PauliString, sign: int, qubit: int) -> tuple[PauliString, int]:
    """``H P H``: swap the X and Z bits on ``qubit``; ``Y -> -Y``."""
    x_bit = (string.x_mask >> qubit) & 1
    z_bit = (string.z_mask >> qubit) & 1
    if x_bit and z_bit:
        sign = -sign
    x_mask = string.x_mask & ~(1 << qubit) | (z_bit << qubit)
    z_mask = string.z_mask & ~(1 << qubit) | (x_bit << qubit)
    return PauliString(string.num_qubits, x_mask, z_mask), sign


def conjugate_s(string: PauliString, sign: int, qubit: int) -> tuple[PauliString, int]:
    """``S P S†``: ``X -> Y, Y -> -X, Z -> Z``."""
    x_bit = (string.x_mask >> qubit) & 1
    z_bit = (string.z_mask >> qubit) & 1
    if x_bit and z_bit:  # Y -> -X
        sign = -sign
    # z' = z XOR x
    z_mask = string.z_mask ^ (x_bit << qubit)
    return PauliString(string.num_qubits, string.x_mask, z_mask), sign


def conjugate_cnot(
    string: PauliString, sign: int, control: int, target: int
) -> tuple[PauliString, int]:
    """``CNOT P CNOT``: ``X_c -> X_c X_t``, ``Z_t -> Z_c Z_t``;
    the ``X_c Z_t``-type pattern picks up a sign via ``Y`` bookkeeping."""
    x_c = (string.x_mask >> control) & 1
    z_c = (string.z_mask >> control) & 1
    x_t = (string.x_mask >> target) & 1
    z_t = (string.z_mask >> target) & 1
    # Standard tableau sign rule: flip when x_c z_t (x_t + z_c + 1) is odd.
    if x_c and z_t and (x_t ^ z_c ^ 1):
        sign = -sign
    x_mask = string.x_mask ^ (x_c << target)
    z_mask = string.z_mask ^ (z_t << control)
    return PauliString(string.num_qubits, x_mask, z_mask), sign


def conjugate_gate(
    string: PauliString, sign: int, gate: CliffordGate
) -> tuple[PauliString, int]:
    """Dispatch one generator conjugation."""
    if gate.name == "H":
        return conjugate_h(string, sign, gate.qubits[0])
    if gate.name == "S":
        return conjugate_s(string, sign, gate.qubits[0])
    return conjugate_cnot(string, sign, gate.qubits[0], gate.qubits[1])


def conjugate_sequence(
    string: PauliString, gates: Iterable[CliffordGate], sign: int = 1
) -> tuple[PauliString, int]:
    """Conjugate by ``U = g_k ... g_2 g_1`` (gates applied left to right)."""
    for gate in gates:
        string, sign = conjugate_gate(string, sign, gate)
    return string, sign
