"""GF(2) linear algebra over Pauli strings.

Every phase-free Pauli string on ``N`` qubits is a vector in ``GF(2)^{2N}``
(the ``symplectic_key`` of :class:`~repro.paulis.strings.PauliString`), and
string multiplication is vector addition.  Consequently, a set of strings is
*algebraically independent* in the paper's sense (no subset multiplies to a
scalar multiple of identity, Eq. 5) exactly when their key vectors are
linearly independent over GF(2).  This module provides that rank machinery;
it backs solution verification and the w/o-Alg repair loop in
:mod:`repro.core.verify`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.paulis.strings import PauliString


def gf2_rank(vectors: Iterable[int]) -> int:
    """Rank of integer bitmask row-vectors over GF(2)."""
    basis: list[int] = []
    for vector in vectors:
        for pivot in basis:
            vector = min(vector, vector ^ pivot)
        if vector:
            basis.append(vector)
            basis.sort(reverse=True)
    return len(basis)


def gf2_dependent_subset(vectors: Sequence[int]) -> list[int] | None:
    """Indices of a subset XOR-ing to zero, or ``None`` if independent.

    Performs Gaussian elimination while tracking which input rows were
    combined into each reduced row; the first row that reduces to zero
    exposes a dependency certificate.
    """
    basis: list[tuple[int, int]] = []  # (reduced vector, membership mask)
    for index, vector in enumerate(vectors):
        membership = 1 << index
        for reduced, reduced_membership in basis:
            if vector ^ reduced < vector:
                vector ^= reduced
                membership ^= reduced_membership
        if vector == 0:
            return [i for i in range(index + 1) if (membership >> i) & 1]
        basis.append((vector, membership))
        basis.sort(reverse=True)
    return None


def gf2_nullspace(vectors: Sequence[int], width: int) -> list[int]:
    """Basis of the right nullspace of the GF(2) matrix whose rows are
    ``vectors`` (each an integer bitmask of ``width`` columns).

    Returns bitmask basis vectors ``v`` with ``popcount(row & v)`` even for
    every row.
    """
    mask = (1 << width) - 1
    pivot_rows: list[tuple[int, int]] = []  # (pivot column, reduced row)
    for row in vectors:
        row &= mask
        for column, pivot_row in pivot_rows:
            if (row >> column) & 1:
                row ^= pivot_row
        if row:
            pivot_rows.append((row.bit_length() - 1, row))
    # Gauss-Jordan: clear every pivot column from the other reduced rows.
    for i in range(len(pivot_rows)):
        column_i, row_i = pivot_rows[i]
        for j in range(len(pivot_rows)):
            if i == j:
                continue
            column_j, row_j = pivot_rows[j]
            if (row_j >> column_i) & 1:
                pivot_rows[j] = (column_j, row_j ^ row_i)
    pivot_columns = {column for column, _ in pivot_rows}
    basis = []
    for free in (c for c in range(width) if c not in pivot_columns):
        vector = 1 << free
        for column, row in pivot_rows:
            if (row >> free) & 1:
                vector |= 1 << column
        basis.append(vector)
    return basis


def strings_rank(strings: Iterable[PauliString]) -> int:
    """GF(2) rank of the symplectic key vectors of ``strings``."""
    return gf2_rank(string.symplectic_key() for string in strings)


def are_algebraically_independent(strings: Sequence[PauliString]) -> bool:
    """True when no non-empty subset of ``strings`` multiplies to identity.

    Equivalent to the paper's power-set condition (Eq. 5) but checked in
    ``O(N^3)`` via GF(2) rank rather than ``4^N`` subset enumeration.
    """
    strings = list(strings)
    return strings_rank(strings) == len(strings)


def dependent_subset(strings: Sequence[PauliString]) -> list[int] | None:
    """Indices of strings whose product is (a phase times) identity, else ``None``."""
    return gf2_dependent_subset([string.symplectic_key() for string in strings])


def pairwise_anticommuting(strings: Sequence[PauliString]) -> bool:
    """True when every pair of distinct strings anticommutes (Eq. 3)."""
    for i, left in enumerate(strings):
        for right in strings[i + 1:]:
            if not left.anticommutes_with(right):
                return False
    return True
