"""Weighted sums of Pauli strings — the qubit-side Hamiltonian representation.

A :class:`PauliSum` maps :class:`~repro.paulis.strings.PauliString` to complex
coefficients and supports the ring operations needed to encode fermionic
operators: addition, scalar multiplication and exact (phase-tracked) products.
It is the output type of every fermion-to-qubit encoding in this package.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.paulis.strings import PauliString

#: Coefficients with magnitude below this are dropped during simplification.
TOLERANCE = 1e-12


class PauliSum:
    """A linear combination ``sum_i w_i P_i`` of Pauli strings."""

    __slots__ = ("num_qubits", "_terms")

    def __init__(self, num_qubits: int, terms: Mapping[PauliString, complex] | None = None):
        self.num_qubits = num_qubits
        self._terms: dict[PauliString, complex] = {}
        if terms:
            for string, coefficient in terms.items():
                self._add_term(string, coefficient)

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero(cls, num_qubits: int) -> "PauliSum":
        return cls(num_qubits)

    @classmethod
    def identity(cls, num_qubits: int, coefficient: complex = 1.0) -> "PauliSum":
        return cls(num_qubits, {PauliString.identity(num_qubits): coefficient})

    @classmethod
    def from_term(cls, string: PauliString, coefficient: complex = 1.0) -> "PauliSum":
        return cls(string.num_qubits, {string: coefficient})

    @classmethod
    def from_label(cls, label: str, coefficient: complex = 1.0) -> "PauliSum":
        return cls.from_term(PauliString.from_label(label), coefficient)

    # -- mutation helpers (internal) -----------------------------------------

    def _add_term(self, string: PauliString, coefficient: complex) -> None:
        if string.num_qubits != self.num_qubits:
            raise ValueError("term length does not match PauliSum qubit count")
        updated = self._terms.get(string, 0j) + coefficient
        if abs(updated) <= TOLERANCE:
            self._terms.pop(string, None)
        else:
            self._terms[string] = updated

    # -- inspection -----------------------------------------------------------

    def coefficient(self, string: PauliString) -> complex:
        """The coefficient of ``string`` (0 when absent)."""
        return self._terms.get(string, 0j)

    def items(self) -> Iterator[tuple[PauliString, complex]]:
        return iter(self._terms.items())

    def strings(self) -> Iterator[PauliString]:
        return iter(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[tuple[PauliString, complex]]:
        return self.items()

    def __contains__(self, string: PauliString) -> bool:
        return string in self._terms

    @property
    def is_zero(self) -> bool:
        return not self._terms

    @property
    def total_weight(self) -> int:
        """Sum of Pauli weights over all (non-identity) terms.

        This is the paper's "Hamiltonian Pauli weight" metric (Tables 4/5):
        each distinct Pauli string surviving coefficient combination counts
        its number of non-identity positions once.
        """
        return sum(string.weight for string in self._terms)

    def is_hermitian(self, tolerance: float = 1e-9) -> bool:
        """True when every coefficient is (numerically) real."""
        return all(abs(coefficient.imag) <= tolerance for coefficient in self._terms.values())

    # -- ring operations --------------------------------------------------------

    def __add__(self, other: "PauliSum") -> "PauliSum":
        if not isinstance(other, PauliSum):
            return NotImplemented
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot add sums on different qubit counts")
        result = PauliSum(self.num_qubits, self._terms)
        for string, coefficient in other.items():
            result._add_term(string, coefficient)
        return result

    def __sub__(self, other: "PauliSum") -> "PauliSum":
        return self + (other * -1.0)

    def __mul__(self, other) -> "PauliSum":
        if isinstance(other, PauliSum):
            return self._multiply_sum(other)
        if isinstance(other, (int, float, complex)):
            return PauliSum(
                self.num_qubits,
                {string: coefficient * other for string, coefficient in self._terms.items()},
            )
        return NotImplemented

    def __rmul__(self, other) -> "PauliSum":
        if isinstance(other, (int, float, complex)):
            return self * other
        return NotImplemented

    def __neg__(self) -> "PauliSum":
        return self * -1.0

    def _multiply_sum(self, other: "PauliSum") -> "PauliSum":
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot multiply sums on different qubit counts")
        result = PauliSum(self.num_qubits)
        for left, left_coefficient in self._terms.items():
            for right, right_coefficient in other._terms.items():
                product, phase = left.multiply(right)
                result._add_term(product, left_coefficient * right_coefficient * phase)
        return result

    def hermitian_part(self) -> "PauliSum":
        """Project onto real coefficients (discard numerically-imaginary dust)."""
        return PauliSum(
            self.num_qubits,
            {string: complex(coefficient.real, 0.0) for string, coefficient in self._terms.items()},
        )

    def without_identity(self) -> "PauliSum":
        """Drop the all-identity term (irrelevant to circuits and weight)."""
        trimmed = dict(self._terms)
        trimmed.pop(PauliString.identity(self.num_qubits), None)
        return PauliSum(self.num_qubits, trimmed)

    # -- plumbing ------------------------------------------------------------------

    def sorted_terms(self) -> list[tuple[PauliString, complex]]:
        """Terms sorted by label, for deterministic iteration order."""
        return sorted(self._terms.items(), key=lambda item: item[0].label())

    def approx_equal(self, other: "PauliSum", tolerance: float = 1e-9) -> bool:
        if other.num_qubits != self.num_qubits:
            return False
        keys = set(self._terms) | set(other._terms)
        return all(abs(self.coefficient(k) - other.coefficient(k)) <= tolerance for k in keys)

    def __eq__(self, other) -> bool:
        return isinstance(other, PauliSum) and self.approx_equal(other, TOLERANCE)

    def __repr__(self) -> str:
        parts = [f"({coefficient:.6g})*{string.label()}" for string, coefficient in self.sorted_terms()]
        body = " + ".join(parts) if parts else "0"
        return f"PauliSum({body})"


def sum_of(terms: Iterable[PauliSum]) -> PauliSum:
    """Add an iterable of :class:`PauliSum` (which must be non-empty)."""
    iterator = iter(terms)
    try:
        total = next(iterator)
    except StopIteration:
        raise ValueError("sum_of needs at least one PauliSum") from None
    for term in iterator:
        total = total + term
    return total
