"""Phase-free Pauli strings in the symplectic bitmask representation.

A :class:`PauliString` is an immutable tensor product of single-qubit Pauli
operators.  Internally it stores two integers, ``x_mask`` and ``z_mask``;
qubit ``i`` carries ``X``/``Z``/``Y`` according to bits ``i`` of the masks.
The textual convention follows the paper: in a label such as ``"XZ"`` the
*rightmost* character acts on qubit 0.

Multiplication returns the product string together with the exact scalar
phase (a power of ``i``), so :class:`~repro.paulis.terms.PauliSum` can track
coefficients without any matrix arithmetic.
"""

from __future__ import annotations

from typing import Iterator

from repro.paulis.operators import label_from_bits, xz_bits

#: The four possible phases of a Pauli-string product, indexed by ``i``-exponent.
_PHASES = (1 + 0j, 1j, -1 + 0j, -1j)


# repro-lint: worker-shipped
class PauliString:
    """An ``N``-qubit Pauli string without a scalar coefficient.

    Args:
        num_qubits: length of the string.
        x_mask: bitmask of qubits carrying an ``X`` component.
        z_mask: bitmask of qubits carrying a ``Z`` component.
    """

    __slots__ = ("num_qubits", "x_mask", "z_mask")

    def __init__(self, num_qubits: int, x_mask: int = 0, z_mask: int = 0):
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        full = (1 << num_qubits) - 1
        if x_mask & ~full or z_mask & ~full:
            raise ValueError("mask has bits outside the qubit range")
        object.__setattr__(self, "num_qubits", num_qubits)
        object.__setattr__(self, "x_mask", x_mask)
        object.__setattr__(self, "z_mask", z_mask)

    def __setattr__(self, name, value):
        raise AttributeError("PauliString is immutable")

    def __reduce__(self):
        # The immutability guard blocks pickle's default slot restoration;
        # rebuild through the constructor instead (results cross process
        # boundaries in the parallel executor).
        return (PauliString, (self.num_qubits, self.x_mask, self.z_mask))

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_label(cls, label: str) -> "PauliString":
        """Build a string from text such as ``"XYZI"`` (rightmost = qubit 0)."""
        num_qubits = len(label)
        x_mask = 0
        z_mask = 0
        for position, char in enumerate(label):
            qubit = num_qubits - 1 - position
            x_bit, z_bit = xz_bits(char)
            x_mask |= x_bit << qubit
            z_mask |= z_bit << qubit
        return cls(num_qubits, x_mask, z_mask)

    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """The all-identity string on ``num_qubits`` qubits."""
        return cls(num_qubits)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, operator: str) -> "PauliString":
        """A string with ``operator`` on one qubit and identity elsewhere."""
        if not 0 <= qubit < num_qubits:
            raise ValueError(f"qubit {qubit} out of range for {num_qubits} qubits")
        x_bit, z_bit = xz_bits(operator)
        return cls(num_qubits, x_bit << qubit, z_bit << qubit)

    @classmethod
    def from_operators(cls, num_qubits: int, operators: dict[int, str]) -> "PauliString":
        """Build a string from a ``{qubit: label}`` mapping."""
        x_mask = 0
        z_mask = 0
        for qubit, operator in operators.items():
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit {qubit} out of range for {num_qubits} qubits")
            x_bit, z_bit = xz_bits(operator)
            x_mask |= x_bit << qubit
            z_mask |= z_bit << qubit
        return cls(num_qubits, x_mask, z_mask)

    # -- inspection --------------------------------------------------------

    def operator(self, qubit: int) -> str:
        """The single-qubit operator label acting on ``qubit``."""
        if not 0 <= qubit < self.num_qubits:
            raise IndexError(f"qubit {qubit} out of range")
        return label_from_bits((self.x_mask >> qubit) & 1, (self.z_mask >> qubit) & 1)

    def label(self) -> str:
        """Text form, rightmost character on qubit 0."""
        return "".join(self.operator(q) for q in reversed(range(self.num_qubits)))

    @property
    def weight(self) -> int:
        """Pauli weight: the number of non-identity positions (Section 2.1.3)."""
        return (self.x_mask | self.z_mask).bit_count()

    @property
    def is_identity(self) -> bool:
        return self.x_mask == 0 and self.z_mask == 0

    @property
    def support(self) -> tuple[int, ...]:
        """Qubits on which the string acts non-trivially, ascending."""
        mask = self.x_mask | self.z_mask
        return tuple(q for q in range(self.num_qubits) if (mask >> q) & 1)

    def __iter__(self) -> Iterator[str]:
        """Iterate operator labels from qubit 0 upwards."""
        return (self.operator(q) for q in range(self.num_qubits))

    def __getitem__(self, qubit: int) -> str:
        return self.operator(qubit)

    def __len__(self) -> int:
        return self.num_qubits

    # -- algebra -----------------------------------------------------------

    def _y_count(self) -> int:
        return (self.x_mask & self.z_mask).bit_count()

    def multiply(self, other: "PauliString") -> tuple["PauliString", complex]:
        """Exact product: returns ``(string, phase)`` with ``self @ other == phase * string``.

        Phase bookkeeping uses ``Y = i·X·Z``: writing each string as
        ``i^y · X^x Z^z`` and commuting ``Z^z1`` past ``X^x2`` contributes
        ``(-1)^{|z1 & x2|}``.
        """
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot multiply strings of different length")
        x_mask = self.x_mask ^ other.x_mask
        z_mask = self.z_mask ^ other.z_mask
        product = PauliString(self.num_qubits, x_mask, z_mask)
        exponent = (
            self._y_count()
            + other._y_count()
            - product._y_count()
            + 2 * (self.z_mask & other.x_mask).bit_count()
        )
        return product, _PHASES[exponent % 4]

    def __mul__(self, other: "PauliString") -> tuple["PauliString", complex]:
        return self.multiply(other)

    def commutes_with(self, other: "PauliString") -> bool:
        """True when the symplectic product vanishes (strings commute)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot compare strings of different length")
        overlap = (self.x_mask & other.z_mask).bit_count() + (self.z_mask & other.x_mask).bit_count()
        return overlap % 2 == 0

    def anticommutes_with(self, other: "PauliString") -> bool:
        return not self.commutes_with(other)

    def symplectic_key(self) -> int:
        """The string as a single ``2N``-bit integer: ``x_mask | z_mask << N``.

        Products of strings XOR these keys, so a subset of strings multiplies
        to identity exactly when its keys XOR to zero — the GF(2) view used
        for algebraic-independence checks.
        """
        return self.x_mask | (self.z_mask << self.num_qubits)

    # -- dunder plumbing ----------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PauliString)
            and self.num_qubits == other.num_qubits
            and self.x_mask == other.x_mask
            and self.z_mask == other.z_mask
        )

    def __hash__(self) -> int:
        return hash((self.num_qubits, self.x_mask, self.z_mask))

    def __repr__(self) -> str:
        return f"PauliString({self.label()!r})"
