"""Dense-matrix realisations of Pauli strings and sums.

Only used by tests and the exact-diagonalization side of the simulator;
everything algorithmic works on the symplectic representation.  The qubit
ordering matches the simulator: basis state index bit ``i`` is qubit ``i``,
so qubit 0 is the least-significant bit of the computational basis label.
"""

from __future__ import annotations

import numpy as np

from repro.paulis.operators import MATRICES
from repro.paulis.strings import PauliString
from repro.paulis.terms import PauliSum


def pauli_string_matrix(string: PauliString) -> np.ndarray:
    """Dense ``2^N x 2^N`` matrix of a Pauli string.

    Built as ``kron(op[N-1], ..., op[0])`` so that qubit 0 is the
    least-significant index bit.
    """
    matrix = np.array([[1.0 + 0j]])
    for qubit in range(string.num_qubits):
        matrix = np.kron(MATRICES[string.operator(qubit)], matrix)
    return matrix


def pauli_sum_matrix(operator: PauliSum) -> np.ndarray:
    """Dense matrix of a :class:`PauliSum`."""
    dimension = 2 ** operator.num_qubits
    matrix = np.zeros((dimension, dimension), dtype=complex)
    for string, coefficient in operator.items():
        matrix += coefficient * pauli_string_matrix(string)
    return matrix
