"""Single-qubit Pauli operators and their multiplication table.

The rest of the package represents a Pauli string as a pair of bitmasks
``(x_mask, z_mask)`` — qubit ``i`` carries ``X`` when bit ``i`` of ``x_mask``
is set, ``Z`` when bit ``i`` of ``z_mask`` is set, and ``Y`` when both are
set.  This module holds the scalar, human-facing side of that encoding:
labels, 2x2 matrices and the single-operator product table used by tests.
"""

from __future__ import annotations

import numpy as np

#: Canonical operator labels indexed by ``(x_bit, z_bit)`` packed as ``x + 2*z``.
LABELS = ("I", "X", "Z", "Y")

#: The four single-qubit operators as dense matrices.
MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    "Y": np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex),
    "Z": np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex),
}

#: ``PRODUCTS[(a, b)] == (phase, c)`` with ``a @ b == phase * c``.
PRODUCTS = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}


def xz_bits(label: str) -> tuple[int, int]:
    """Return the ``(x_bit, z_bit)`` pair for a single-operator label."""
    if label not in LABELS:
        raise ValueError(f"not a Pauli operator label: {label!r}")
    x_bit = int(label in ("X", "Y"))
    z_bit = int(label in ("Z", "Y"))
    return x_bit, z_bit


def label_from_bits(x_bit: int, z_bit: int) -> str:
    """Return the operator label for an ``(x_bit, z_bit)`` pair."""
    return LABELS[(x_bit & 1) + 2 * (z_bit & 1)]


def operators_anticommute(a: str, b: str) -> bool:
    """True when two single-qubit operators anticommute.

    This is the truth table of the paper's ``acomm`` (Table 2): distinct
    non-identity operators anticommute, everything else commutes.
    """
    return a != "I" and b != "I" and a != b
