"""Algebraic-dependence probability estimation (the paper's Figure 4).

Section 4.1 argues the algebraic-independence clauses can be dropped
because the probability that a random subset of Majorana strings satisfies
``n`` column events ``A_k`` (the product restricted to qubit ``k`` is the
identity) simultaneously is ``≈ 1/4^n``; full dependence needs all ``N``
columns, hence failure probability ``4^-N``.

:func:`estimate_simultaneous_probability` reproduces the figure's
empirical estimate over sampled optimal encodings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import FermihedralConfig
from repro.core.descent import build_base_formula, descend
from repro.encodings.base import MajoranaEncoding
from repro.sat.enumerate import enumerate_models


def column_event_holds(strings, subset: list[int], qubit: int) -> bool:
    """The event ``A_k``: the subset's operator product at ``qubit`` is ``I``."""
    x_bit = 0
    z_bit = 0
    for index in subset:
        string = strings[index]
        x_bit ^= (string.x_mask >> qubit) & 1
        z_bit ^= (string.z_mask >> qubit) & 1
    return x_bit == 0 and z_bit == 0


def sample_optimal_encodings(
    num_modes: int,
    count: int,
    config: FermihedralConfig | None = None,
    max_conflicts_per_model: int | None = None,
) -> list[MajoranaEncoding]:
    """Distinct optimal-weight encodings, via blocking-clause enumeration.

    Finds the optimal Hamiltonian-independent weight with Algorithm 1,
    freezes the bound, and enumerates models that achieve it.
    """
    config = config or FermihedralConfig()
    optimum = descend(num_modes, config=config)
    encoder, indicators = build_base_formula(num_modes, config)
    # The frozen bound must live in the same units descend() optimized —
    # with a connectivity-weighted config, that is the weighted objective.
    encoder.add_weight_at_most(
        indicators, optimum.weight, qubit_weights=config.qubit_weights
    )
    projection = encoder.all_string_variables()
    encodings = []
    for model in enumerate_models(
        encoder.formula,
        projection,
        limit=count,
        max_conflicts_per_model=max_conflicts_per_model,
    ):
        encodings.append(encoder.decode(model))
    return encodings


@dataclass(frozen=True)
class ProbabilityEstimate:
    """Empirical estimate of ``P(n column events hold simultaneously)``."""

    simultaneous_events: int
    probability: float
    trials: int
    prediction: float  # the paper's 1/4^n

    @property
    def ratio_to_prediction(self) -> float:
        if self.prediction == 0:
            return float("inf")
        return self.probability / self.prediction


def estimate_simultaneous_probability(
    encodings: list[MajoranaEncoding],
    num_events: int,
    trials: int = 4000,
    seed: int = 99,
) -> ProbabilityEstimate:
    """Monte-Carlo estimate of ``P(A_{k_1} ∧ ... ∧ A_{k_n})``.

    Each trial draws one sampled encoding, a uniformly random subset of its
    strings of size ≥ 2, and ``num_events`` distinct columns, and checks
    whether every column product is the identity.
    """
    if not encodings:
        raise ValueError("need at least one sampled encoding")
    num_modes = encodings[0].num_modes
    if num_events < 1 or num_events > num_modes:
        raise ValueError("num_events must lie in 1..num_modes")
    rng = random.Random(seed)
    hits = 0
    for _ in range(trials):
        encoding = rng.choice(encodings)
        string_count = len(encoding.strings)
        subset_size = rng.randint(2, string_count)
        subset = rng.sample(range(string_count), subset_size)
        columns = rng.sample(range(num_modes), num_events)
        if all(column_event_holds(encoding.strings, subset, k) for k in columns):
            hits += 1
    return ProbabilityEstimate(
        simultaneous_events=num_events,
        probability=hits / trials,
        trials=trials,
        prediction=0.25**num_events,
    )
