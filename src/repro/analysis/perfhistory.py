"""Perf-history ledger: record benchmark runs, flag regressions.

The benchmark suite already emits machine-readable ``BENCH_<name>.json``
files when run with ``--json DIR`` (see :mod:`benchmarks._harness`).
This module turns those one-shot snapshots into a *trajectory*: each
recorded run appends one line per benchmark to an append-only JSONL
ledger keyed by git sha, and :func:`compare_runs` diffs a fresh snapshot
against the most recent entry from a *different* sha — i.e. against the
last commit that recorded — flagging any metric that moved more than a
threshold in the bad direction.

Which direction is "bad" is inferred from the metric name:

* higher-is-better — names containing ``per_s`` or ``throughput``
  (rates); a *drop* beyond the threshold is a regression;
* lower-is-better — names ending in ``_wall_s``, ``_s``, ``_seconds``,
  ``_bytes``, or containing ``conflicts``/``propagations`` (costs); a
  *rise* beyond the threshold is a regression.

The higher-is-better patterns are checked first so ``jobs_per_s`` is a
rate, not a ``_s`` duration.  Non-numeric and unclassified fields are
ignored — the ledger stores them anyway, so a future rule can reach
back in time.

Storage is a single JSONL file (default
``benchmarks/results/history.jsonl``): one JSON object per line, append
only, trivially mergeable, and readable with ``jq`` or a text editor.
Corrupt lines are skipped on read, never fatal — a half-written tail
from a crashed recorder must not brick the tracker.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Default relative location of the ledger (under the repo's
#: ``benchmarks/results/``; callers pass an absolute path normally).
DEFAULT_HISTORY = "benchmarks/results/history.jsonl"

#: Fractional change that counts as a regression (10%).
DEFAULT_THRESHOLD = 0.10

#: Substrings marking a metric as higher-is-better (checked first).
_HIGHER_BETTER = ("per_s", "throughput")

#: Name shapes marking a metric as lower-is-better.
_LOWER_SUFFIXES = ("_wall_s", "_seconds", "_s", "_bytes")
_LOWER_SUBSTRINGS = ("conflicts", "propagations")

#: Bookkeeping and parameter fields of a BENCH_*.json that are never
#: metrics (``max_conflicts`` is a budget knob — raising it is a choice,
#: not a regression).
_SKIP_FIELDS = frozenset({"name", "written_at", "max_conflicts",
                          "budget_s", "shots"})


def metric_direction(name: str) -> str | None:
    """``"higher"`` / ``"lower"`` = which way is better; ``None`` = not
    a tracked metric (statuses, parameters, booleans)."""
    lowered = name.lower()
    if any(token in lowered for token in _HIGHER_BETTER):
        return "higher"
    if lowered.endswith(_LOWER_SUFFIXES):
        return "lower"
    if any(token in lowered for token in _LOWER_SUBSTRINGS):
        return "lower"
    return None


def git_sha(repo_dir: str | Path | None = None) -> str:
    """The current HEAD sha, or ``"unknown"`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if repo_dir is None else str(repo_dir),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def load_snapshots(json_dir: str | Path) -> dict[str, dict]:
    """All ``BENCH_<name>.json`` files in ``json_dir``, by bench name.

    Unreadable files are skipped (the suite may still be writing).
    """
    snapshots: dict[str, dict] = {}
    for path in sorted(Path(json_dir).glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(data, dict):
            snapshots[data.get("name") or path.stem[len("BENCH_"):]] = data
    return snapshots


def read_history(path: str | Path) -> list[dict]:
    """Every well-formed entry in the ledger, oldest first."""
    entries: list[dict] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return entries
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue  # half-written tail; never fatal
        if isinstance(entry, dict) and "name" in entry:
            entries.append(entry)
    return entries


def record_run(
    json_dir: str | Path,
    history_path: str | Path,
    sha: str | None = None,
    note: str | None = None,
    recorded_at: float | None = None,
) -> list[dict]:
    """Append one ledger entry per benchmark snapshot; returns them.

    Each entry is ``{"sha", "recorded_at", "name", "note", "data"}``
    where ``data`` is the bench's full BENCH_*.json payload.  An empty
    ``json_dir`` appends nothing and returns ``[]``.
    """
    snapshots = load_snapshots(json_dir)
    if not snapshots:
        return []
    sha = sha or git_sha()
    recorded_at = time.time() if recorded_at is None else recorded_at
    entries = [
        {
            "sha": sha,
            "recorded_at": recorded_at,
            "name": name,
            "note": note,
            "data": data,
        }
        for name, data in sorted(snapshots.items())
    ]
    path = Path(history_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entries


@dataclass
class MetricDelta:
    """One metric compared against its baseline value."""

    bench: str
    metric: str
    direction: str          # "higher" | "lower" (which way is better)
    baseline: float
    current: float
    change: float           # signed fractional change vs. baseline
    regressed: bool

    @property
    def percent(self) -> float:
        return 100.0 * self.change


@dataclass
class ComparisonReport:
    """Everything :func:`compare_runs` decided, ready to print or test."""

    baseline_sha: str | None
    current_sha: str
    threshold: float
    deltas: list[MetricDelta] = field(default_factory=list)
    missing_baseline: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _baseline_entries(
    history: list[dict], current_sha: str
) -> tuple[str | None, dict[str, dict]]:
    """The newest recorded run from a sha other than ``current_sha``.

    Entries of one run share a sha and ``recorded_at``; scanning from the
    tail, the first foreign sha wins and every entry of that run (same
    sha, walking back while contiguous) becomes the baseline — so
    re-recording on the current commit never dilutes the comparison
    with its own numbers.
    """
    baseline_sha: str | None = None
    baseline: dict[str, dict] = {}
    for entry in reversed(history):
        sha = entry.get("sha")
        if sha == current_sha and baseline_sha is None:
            continue  # skip runs from the commit under test
        if baseline_sha is None:
            baseline_sha = sha
        if sha != baseline_sha:
            break
        # Walking backwards: keep the newest entry per bench name.
        baseline.setdefault(entry["name"], entry.get("data") or {})
    return baseline_sha, baseline


def compare_runs(
    json_dir: str | Path,
    history_path: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
    sha: str | None = None,
) -> ComparisonReport:
    """Diff a fresh snapshot directory against the recorded baseline.

    The baseline is the most recent ledger run whose sha differs from
    ``sha`` (default: the current HEAD) — comparing a commit against
    itself would hide every regression.  Benches present now but absent
    from the baseline land in ``missing_baseline`` (new benches are not
    failures).  A baseline metric of 0 is compared by absolute change
    against the threshold instead of a ratio.
    """
    current_sha = sha or git_sha()
    history = read_history(history_path)
    baseline_sha, baseline = _baseline_entries(history, current_sha)
    report = ComparisonReport(
        baseline_sha=baseline_sha,
        current_sha=current_sha,
        threshold=threshold,
    )
    for name, data in sorted(load_snapshots(json_dir).items()):
        base = baseline.get(name)
        if base is None:
            report.missing_baseline.append(name)
            continue
        for metric in sorted(data):
            if metric in _SKIP_FIELDS:
                continue
            direction = metric_direction(metric)
            if direction is None:
                continue
            current_value = data[metric]
            baseline_value = base.get(metric)
            if (not isinstance(current_value, (int, float))
                    or not isinstance(baseline_value, (int, float))
                    or isinstance(current_value, bool)
                    or isinstance(baseline_value, bool)):
                continue
            if baseline_value:
                change = (current_value - baseline_value) / abs(baseline_value)
            else:
                change = float(current_value)  # vs. zero: absolute change
            regressed = (
                change > threshold if direction == "lower"
                else change < -threshold
            )
            report.deltas.append(MetricDelta(
                bench=name,
                metric=metric,
                direction=direction,
                baseline=float(baseline_value),
                current=float(current_value),
                change=change,
                regressed=regressed,
            ))
    return report


def format_report(report: ComparisonReport) -> str:
    """Human-readable comparison, one line per tracked metric."""
    lines = [
        f"baseline: {report.baseline_sha or '(none recorded)'}",
        f"current:  {report.current_sha}",
        f"threshold: {report.threshold:.0%}",
    ]
    if not report.deltas and not report.missing_baseline:
        lines.append("no comparable metrics (record a baseline first)")
        return "\n".join(lines)
    for delta in report.deltas:
        marker = "REGRESSION" if delta.regressed else "ok"
        arrow = "↑" if delta.current >= delta.baseline else "↓"
        lines.append(
            f"  [{marker:>10}] {delta.bench}.{delta.metric}: "
            f"{delta.baseline:g} -> {delta.current:g} "
            f"({arrow}{abs(delta.percent):.1f}%, "
            f"{delta.direction} is better)"
        )
    for name in report.missing_baseline:
        lines.append(f"  [       new] {name}: no baseline entry")
    tally = len(report.regressions)
    lines.append(
        "result: "
        + (f"{tally} regression(s) beyond {report.threshold:.0%}"
           if tally else "no regressions")
    )
    return "\n".join(lines)
