"""Pauli-weight metrics shared by the benchmark harnesses."""

from __future__ import annotations

from dataclasses import dataclass

from repro.encodings.base import MajoranaEncoding
from repro.fermion.hamiltonians import FermionicHamiltonian


def average_weight_per_majorana(encoding: MajoranaEncoding) -> float:
    """Mean Pauli weight per Majorana string — the Figure 6/7 Y-axis."""
    return encoding.total_majorana_weight / len(encoding.strings)


@dataclass(frozen=True)
class WeightComparison:
    """One row of a Table 4/5-style comparison."""

    case: str
    num_modes: int
    baseline_name: str
    baseline_weight: int
    candidate_name: str
    candidate_weight: int

    @property
    def reduction_percent(self) -> float:
        return 100.0 * (self.baseline_weight - self.candidate_weight) / self.baseline_weight


def compare_hamiltonian_weight(
    case: str,
    hamiltonian: FermionicHamiltonian,
    baseline: MajoranaEncoding,
    candidate: MajoranaEncoding,
) -> WeightComparison:
    """Evaluate two encodings on one Hamiltonian."""
    return WeightComparison(
        case=case,
        num_modes=hamiltonian.num_modes,
        baseline_name=baseline.name,
        baseline_weight=baseline.hamiltonian_pauli_weight(hamiltonian),
        candidate_name=candidate.name,
        candidate_weight=candidate.hamiltonian_pauli_weight(hamiltonian),
    )
