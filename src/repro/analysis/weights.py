"""Pauli-weight metrics shared by the benchmark harnesses."""

from __future__ import annotations

from dataclasses import dataclass

from repro.encodings.base import MajoranaEncoding
from repro.fermion.hamiltonians import FermionicHamiltonian


def average_weight_per_majorana(encoding: MajoranaEncoding) -> float:
    """Mean Pauli weight per Majorana string — the Figure 6/7 Y-axis."""
    return encoding.total_majorana_weight / len(encoding.strings)


@dataclass(frozen=True)
class WeightComparison:
    """One row of a Table 4/5-style comparison."""

    case: str
    num_modes: int
    baseline_name: str
    baseline_weight: int
    candidate_name: str
    candidate_weight: int

    @property
    def reduction_percent(self) -> float:
        # An identity-only Hamiltonian encodes to weight 0 under every
        # encoding; there is nothing to reduce, not a division to take.
        if self.baseline_weight == 0:
            return 0.0
        return 100.0 * (self.baseline_weight - self.candidate_weight) / self.baseline_weight


def compare_hamiltonian_weight(
    case: str,
    hamiltonian: FermionicHamiltonian,
    baseline: MajoranaEncoding,
    candidate: MajoranaEncoding,
) -> WeightComparison:
    """Evaluate two encodings on one Hamiltonian."""
    return WeightComparison(
        case=case,
        num_modes=hamiltonian.num_modes,
        baseline_name=baseline.name,
        baseline_weight=baseline.hamiltonian_pauli_weight(hamiltonian),
        candidate_name=candidate.name,
        candidate_weight=candidate.hamiltonian_pauli_weight(hamiltonian),
    )


@dataclass(frozen=True)
class RoutedCostComparison:
    """A weight comparison extended with routed-cost columns.

    Abstract weight alone can mis-rank encodings on sparse topologies;
    this row carries both views so tables can show weight *and* the
    routed two-qubit gate count / depth on a concrete device.
    """

    comparison: WeightComparison
    device: str
    baseline_two_qubit: int
    baseline_depth: int
    candidate_two_qubit: int
    candidate_depth: int

    @property
    def two_qubit_reduction_percent(self) -> float:
        return 100.0 * (
            self.baseline_two_qubit - self.candidate_two_qubit
        ) / max(self.baseline_two_qubit, 1)

    def row(self) -> list:
        """The table row: case, device, names, weights, routed counts."""
        weight = self.comparison
        return [
            weight.case,
            self.device,
            weight.baseline_name,
            weight.baseline_weight,
            self.baseline_two_qubit,
            self.baseline_depth,
            weight.candidate_name,
            weight.candidate_weight,
            self.candidate_two_qubit,
            self.candidate_depth,
            f"{self.two_qubit_reduction_percent:+.1f}%",
        ]

    #: Header matching :meth:`row`.
    HEADERS = (
        "case", "device",
        "baseline", "weight", "routed 2q", "depth",
        "candidate", "weight", "routed 2q", "depth",
        "2q reduction",
    )


def compare_routed_cost(
    case: str,
    hamiltonian: FermionicHamiltonian,
    baseline: MajoranaEncoding,
    candidate: MajoranaEncoding,
    topology,
) -> RoutedCostComparison:
    """Evaluate two encodings on one Hamiltonian *and* one device.

    ``topology`` is a :class:`repro.hardware.topology.DeviceTopology`;
    both encodings go through the identical hardware-aware compile-and-
    route pipeline (:class:`repro.hardware.cost.HardwareCostModel`), so
    the routed columns are apples-to-apples.
    """
    from repro.hardware.cost import HardwareCostModel

    model = HardwareCostModel(topology)
    baseline_cost = model.cost_of_encoding(baseline, hamiltonian)
    candidate_cost = model.cost_of_encoding(candidate, hamiltonian)
    return RoutedCostComparison(
        comparison=compare_hamiltonian_weight(case, hamiltonian, baseline, candidate),
        device=topology.name,
        baseline_two_qubit=baseline_cost.two_qubit_count,
        baseline_depth=baseline_cost.depth,
        candidate_two_qubit=candidate_cost.two_qubit_count,
        candidate_depth=candidate_cost.depth,
    )
