"""Analysis helpers: weight metrics, regression fits, dependence
probabilities, and the benchmark perf-history ledger."""

from repro.analysis.independence import (
    ProbabilityEstimate,
    column_event_holds,
    estimate_simultaneous_probability,
    sample_optimal_encodings,
)
from repro.analysis.perfhistory import (
    ComparisonReport,
    MetricDelta,
    compare_runs,
    format_report,
    read_history,
    record_run,
)
from repro.analysis.regression import LogFit, fit_log2, improvement_percent
from repro.analysis.tables import format_percent, format_table
from repro.analysis.weights import (
    RoutedCostComparison,
    WeightComparison,
    average_weight_per_majorana,
    compare_hamiltonian_weight,
    compare_routed_cost,
)

__all__ = [
    "ComparisonReport",
    "LogFit",
    "MetricDelta",
    "ProbabilityEstimate",
    "RoutedCostComparison",
    "WeightComparison",
    "average_weight_per_majorana",
    "column_event_holds",
    "compare_hamiltonian_weight",
    "compare_routed_cost",
    "compare_runs",
    "estimate_simultaneous_probability",
    "fit_log2",
    "format_percent",
    "format_report",
    "format_table",
    "improvement_percent",
    "read_history",
    "record_run",
    "sample_optimal_encodings",
]
