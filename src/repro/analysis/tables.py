"""Plain-text table rendering for the benchmark harnesses.

Every bench prints the same rows/series the paper reports; this module
keeps that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row length does not match header length")
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(columns)
    ]
    def line(values):
        return " | ".join(value.ljust(widths[c]) for c, value in enumerate(values))
    separator = "-+-".join("-" * width for width in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in cells)
    return "\n".join(body)


def format_percent(value: float) -> str:
    return f"{value:+.2f}%"
