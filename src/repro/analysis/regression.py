"""Logarithmic regression fits for the scaling figures.

Figures 6/7 of the paper overlay ``a·log2(N) + b`` fits on the average
per-Majorana Pauli weights (the paper reports ``0.73·log2(N) + 0.94`` for
Bravyi-Kitaev and ``0.56·log2(N) + 0.95`` for the SAT optimum at small
scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LogFit:
    """A least-squares fit ``y ≈ slope · log2(x) + intercept``."""

    slope: float
    intercept: float
    residual: float

    def predict(self, x: float) -> float:
        return self.slope * np.log2(x) + self.intercept

    def __str__(self) -> str:
        return f"{self.slope:.2f}*log2(N) + {self.intercept:.2f}"


def fit_log2(xs, ys) -> LogFit:
    """Least-squares fit of ``y = a·log2(x) + b``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if np.any(xs <= 0):
        raise ValueError("x values must be positive for a log fit")
    design = np.stack([np.log2(xs), np.ones_like(xs)], axis=1)
    (slope, intercept), residual, _, _ = np.linalg.lstsq(design, ys, rcond=None)
    residual_value = float(residual[0]) if residual.size else 0.0
    return LogFit(slope=float(slope), intercept=float(intercept), residual=residual_value)


def improvement_percent(baseline: float, value: float) -> float:
    """Relative reduction ``(baseline - value) / baseline`` in percent."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return 100.0 * (baseline - value) / baseline
