"""Z2 symmetry discovery and qubit tapering (extension beyond the paper)."""

from repro.tapering.z2 import (
    TaperingPlan,
    build_tapering_plan,
    find_z2_symmetries,
    rotate_operator,
    taper_all_sectors,
    taper_with_plan,
)

__all__ = [
    "TaperingPlan",
    "build_tapering_plan",
    "find_z2_symmetries",
    "rotate_operator",
    "taper_all_sectors",
    "taper_with_plan",
]
