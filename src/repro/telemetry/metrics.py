"""Process-local metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` owns named metric *families*; a family owns
one child per label combination (the no-label child is implicit, so
``registry.counter("x").inc()`` works without ever calling
:meth:`MetricFamily.labels`).  The design follows the Prometheus client
data model — ``render()`` emits the text exposition format the
``/metrics`` endpoint serves — but everything here is stdlib-only.

Two extra affordances support this codebase specifically:

* **collect hooks** (:meth:`MetricsRegistry.add_collect_hook`) run just
  before every ``render()``, so scrape-time gauges (queue depth, active
  worker slots) are sampled when asked for instead of being pushed on
  every mutation.
* **delta relay** (:meth:`MetricsRegistry.drain_deltas` /
  :meth:`MetricsRegistry.merge_deltas`): worker processes accumulate
  locally and ship only the increments since the previous drain, so the
  parent can merge contributions from many children without double
  counting.  Counters and histograms merge additively; gauges are
  last-write-wins.

Instrumented code never pays for a disabled registry: call sites gate on
``telemetry is None`` (the same zero-cost pattern the solver uses for
DRAT logging), so a process that never constructs a
:class:`~repro.telemetry.Telemetry` allocates nothing here.
"""

from __future__ import annotations

import threading

# Upper bucket bounds (seconds) for latency histograms; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _escape_label_value(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _escape_help(text: str) -> str:
    # HELP text escapes backslash and newline but NOT double quotes —
    # the exposition format treats them differently from label values.
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(items: tuple) -> str:
    if not items:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"'
                     for key, value in items)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Prometheus accepts integers and floats; keep integral values tidy.
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "value", "_exported")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self.value = 0.0
        self._exported = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def _drain(self) -> float:
        with self._lock:
            delta = self.value - self._exported
            self._exported = self.value
            return delta


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket distribution of observed values."""

    __slots__ = ("_lock", "bounds", "bucket_counts", "sum", "count",
                 "_exported")

    def __init__(self, lock: threading.RLock, bounds: tuple):
        self._lock = lock
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)  # per-bucket, not cumulative
        self.sum = 0.0
        self.count = 0
        self._exported = None  # (bucket_counts, sum, count) at last drain

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break

    def _drain(self):
        with self._lock:
            previous = self._exported or ([0] * len(self.bounds), 0.0, 0)
            counts = [now - then
                      for now, then in zip(self.bucket_counts, previous[0])]
            delta = (counts, self.sum - previous[1], self.count - previous[2])
            self._exported = (list(self.bucket_counts), self.sum, self.count)
            return delta

    def _merge(self, bucket_counts, total, count) -> None:
        with self._lock:
            for index, value in enumerate(bucket_counts):
                if index < len(self.bucket_counts):
                    self.bucket_counts[index] += value
            self.sum += total
            self.count += count


class MetricFamily:
    """All children (label combinations) of one named metric.

    Family-level ``inc``/``set``/``dec``/``observe`` delegate to the
    implicit no-label child, mirroring the prometheus_client ergonomics.
    """

    __slots__ = ("kind", "name", "help", "buckets", "_lock", "_children")

    def __init__(self, kind: str, name: str, help: str, lock: threading.RLock,
                 buckets: tuple = ()):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind: {kind!r}")
        self.kind = kind
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self._lock = lock
        self._children: dict = {}

    def labels(self, **labelvalues):
        """The child for one label combination, created on first use."""
        key = tuple(sorted((str(k), str(v)) for k, v in labelvalues.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "counter":
                    child = Counter(self._lock)
                elif self.kind == "gauge":
                    child = Gauge(self._lock)
                else:
                    child = Histogram(self._lock, self.buckets)
                self._children[key] = child
            return child

    # -- no-label convenience delegation ----------------------------------

    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> list:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A process-local collection of metric families."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict = {}
        self._hooks: list = []

    def _family(self, kind: str, name: str, help: str,
                buckets: tuple = ()) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(kind, name, help, self._lock, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family("counter", name, help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family("gauge", name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS) -> MetricFamily:
        return self._family("histogram", name, help, buckets)

    def add_collect_hook(self, hook) -> None:
        """Register ``hook()`` to run at the start of every render()."""
        with self._lock:
            self._hooks.append(hook)

    def families(self) -> list:
        with self._lock:
            return sorted(self._families.items())

    # -- exposition --------------------------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            hooks = list(self._hooks)
        for hook in hooks:
            hook()
        lines: list = []
        for name, family in self.families():
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in family.children():
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(child.bounds, child.bucket_counts):
                        cumulative += count
                        items = key + (("le", _format_value(float(bound))),)
                        lines.append(f"{name}_bucket{_format_labels(items)} "
                                     f"{cumulative}")
                    items = key + (("le", "+Inf"),)
                    lines.append(f"{name}_bucket{_format_labels(items)} "
                                 f"{child.count}")
                    lines.append(f"{name}_sum{_format_labels(key)} "
                                 f"{_format_value(child.sum)}")
                    lines.append(f"{name}_count{_format_labels(key)} "
                                 f"{child.count}")
                else:
                    lines.append(f"{name}{_format_labels(key)} "
                                 f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n" if lines else ""

    # -- cross-process relay ----------------------------------------------

    def drain_deltas(self) -> list:
        """Plain-data increments since the previous drain.

        Counters and histograms report only what accumulated since the
        last call (and remember it, so repeated drains never double
        count); gauges report their current value every time.
        """
        deltas: list = []
        for name, family in self.families():
            for key, child in family.children():
                labels = dict(key)
                if family.kind == "counter":
                    delta = child._drain()
                    if delta:
                        deltas.append({"kind": "counter", "name": name,
                                       "help": family.help, "labels": labels,
                                       "value": delta})
                elif family.kind == "gauge":
                    deltas.append({"kind": "gauge", "name": name,
                                   "help": family.help, "labels": labels,
                                   "value": child.value})
                else:
                    counts, total, count = child._drain()
                    if count:
                        deltas.append({"kind": "histogram", "name": name,
                                       "help": family.help, "labels": labels,
                                       "buckets": list(child.bounds),
                                       "counts": counts, "sum": total,
                                       "count": count})
        return deltas

    def merge_deltas(self, deltas) -> None:
        """Fold :meth:`drain_deltas` output from another process in."""
        for delta in deltas:
            kind = delta["kind"]
            labels = delta.get("labels") or {}
            if kind == "counter":
                family = self.counter(delta["name"], delta.get("help", ""))
                family.labels(**labels).inc(delta["value"])
            elif kind == "gauge":
                family = self.gauge(delta["name"], delta.get("help", ""))
                family.labels(**labels).set(delta["value"])
            elif kind == "histogram":
                family = self.histogram(
                    delta["name"], delta.get("help", ""),
                    buckets=tuple(delta.get("buckets") or
                                  DEFAULT_LATENCY_BUCKETS),
                )
                family.labels(**labels)._merge(
                    delta.get("counts") or [], delta.get("sum", 0.0),
                    delta.get("count", 0),
                )
            else:
                raise ValueError(f"unknown delta kind: {kind!r}")


# -- parsing the exposition format back ----------------------------------
#
# The ops console (`repro top`) scrapes its own daemon's `/metrics` and
# needs the submit/poll latency histograms back as numbers.  Round-
# tripping through the real text format — rather than adding a private
# JSON side channel — keeps the endpoint honest: if a real scraper
# couldn't parse it, neither could we.


def _unescape_help(text: str) -> str:
    out: list = []
    i = 0
    while i < len(text):
        char = text[i]
        if char == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
        out.append(char)
        i += 1
    return "".join(out)


def _parse_label_block(text: str) -> dict:
    labels: dict = {}
    i = 0
    while i < len(text):
        while i < len(text) and text[i] in ", ":
            i += 1
        if i >= len(text):
            break
        eq = text.find("=", i)
        if eq < 0:
            raise ValueError(f"malformed label block: {text!r}")
        name = text[i:eq].strip()
        i = eq + 1
        if i >= len(text) or text[i] != '"':
            raise ValueError(f"malformed label value in: {text!r}")
        i += 1
        chars: list = []
        while i < len(text):
            char = text[i]
            if char == "\\" and i + 1 < len(text):
                nxt = text[i + 1]
                chars.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                i += 2
                continue
            if char == '"':
                i += 1
                break
            chars.append(char)
            i += 1
        labels[name] = "".join(chars)
    return labels


def parse_prometheus_text(text: str) -> dict:
    """Parse text exposition back into families.

    Returns ``{family: {"kind", "help", "samples": {sample_name:
    [(labels, value), ...]}}}``.  Histogram ``_bucket``/``_sum``/
    ``_count`` samples group under their declared family name; samples
    with no TYPE declaration become their own family with ``kind None``.
    Malformed sample lines are skipped (a scrape racing a restart can
    truncate mid-line).
    """
    families: dict = {}

    def family(name: str) -> dict:
        return families.setdefault(
            name, {"kind": None, "help": None, "samples": {}})

    histogram_names: set = set()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "HELP":
                family(parts[2])["help"] = _unescape_help(
                    parts[3] if len(parts) > 3 else "")
            elif len(parts) >= 4 and parts[1] == "TYPE":
                family(parts[2])["kind"] = parts[3]
                if parts[3] == "histogram":
                    histogram_names.add(parts[2])
            continue
        try:
            if "{" in line:
                name, rest = line.split("{", 1)
                block, value_text = rest.rsplit("}", 1)
                labels = _parse_label_block(block)
            else:
                name, value_text = line.split(None, 1)
                labels = {}
            value = float(value_text)
        except ValueError:
            continue
        owner = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in histogram_names:
                owner = name[:-len(suffix)]
                break
        family(owner)["samples"].setdefault(name, []).append((labels, value))
    return families


def histogram_quantile(q: float, buckets) -> float | None:
    """Estimate the ``q``-quantile from cumulative histogram buckets.

    ``buckets`` is an iterable of ``(le, cumulative_count)`` pairs with
    ``le`` a number or ``"+Inf"``, exactly as a ``_bucket`` sample list
    yields them.  Linear interpolation within the winning bucket,
    PromQL-style; values past the last finite bound clamp to it.
    Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    pairs: list = []
    for le, count in buckets:
        text = str(le)
        bound = float("inf") if text in ("+Inf", "inf") else float(le)
        pairs.append((bound, float(count)))
    pairs.sort()
    if not pairs or pairs[-1][1] <= 0:
        return None
    target = q * pairs[-1][1]
    prev_bound, prev_count = 0.0, 0.0
    for bound, cumulative in pairs:
        if cumulative >= target:
            if bound == float("inf") or cumulative == prev_count:
                return prev_bound if bound == float("inf") else bound
            fraction = (target - prev_count) / (cumulative - prev_count)
            return prev_bound + (bound - prev_bound) * fraction
        prev_bound, prev_count = bound, cumulative
    return pairs[-1][0]
