"""Process-local metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` owns named metric *families*; a family owns
one child per label combination (the no-label child is implicit, so
``registry.counter("x").inc()`` works without ever calling
:meth:`MetricFamily.labels`).  The design follows the Prometheus client
data model — ``render()`` emits the text exposition format the
``/metrics`` endpoint serves — but everything here is stdlib-only.

Two extra affordances support this codebase specifically:

* **collect hooks** (:meth:`MetricsRegistry.add_collect_hook`) run just
  before every ``render()``, so scrape-time gauges (queue depth, active
  worker slots) are sampled when asked for instead of being pushed on
  every mutation.
* **delta relay** (:meth:`MetricsRegistry.drain_deltas` /
  :meth:`MetricsRegistry.merge_deltas`): worker processes accumulate
  locally and ship only the increments since the previous drain, so the
  parent can merge contributions from many children without double
  counting.  Counters and histograms merge additively; gauges are
  last-write-wins.

Instrumented code never pays for a disabled registry: call sites gate on
``telemetry is None`` (the same zero-cost pattern the solver uses for
DRAT logging), so a process that never constructs a
:class:`~repro.telemetry.Telemetry` allocates nothing here.
"""

from __future__ import annotations

import threading

# Upper bucket bounds (seconds) for latency histograms; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _escape_label_value(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_labels(items: tuple) -> str:
    if not items:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"'
                     for key, value in items)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Prometheus accepts integers and floats; keep integral values tidy.
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "value", "_exported")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self.value = 0.0
        self._exported = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def _drain(self) -> float:
        with self._lock:
            delta = self.value - self._exported
            self._exported = self.value
            return delta


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket distribution of observed values."""

    __slots__ = ("_lock", "bounds", "bucket_counts", "sum", "count",
                 "_exported")

    def __init__(self, lock: threading.RLock, bounds: tuple):
        self._lock = lock
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)  # per-bucket, not cumulative
        self.sum = 0.0
        self.count = 0
        self._exported = None  # (bucket_counts, sum, count) at last drain

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break

    def _drain(self):
        with self._lock:
            previous = self._exported or ([0] * len(self.bounds), 0.0, 0)
            counts = [now - then
                      for now, then in zip(self.bucket_counts, previous[0])]
            delta = (counts, self.sum - previous[1], self.count - previous[2])
            self._exported = (list(self.bucket_counts), self.sum, self.count)
            return delta

    def _merge(self, bucket_counts, total, count) -> None:
        with self._lock:
            for index, value in enumerate(bucket_counts):
                if index < len(self.bucket_counts):
                    self.bucket_counts[index] += value
            self.sum += total
            self.count += count


class MetricFamily:
    """All children (label combinations) of one named metric.

    Family-level ``inc``/``set``/``dec``/``observe`` delegate to the
    implicit no-label child, mirroring the prometheus_client ergonomics.
    """

    __slots__ = ("kind", "name", "help", "buckets", "_lock", "_children")

    def __init__(self, kind: str, name: str, help: str, lock: threading.RLock,
                 buckets: tuple = ()):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind: {kind!r}")
        self.kind = kind
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self._lock = lock
        self._children: dict = {}

    def labels(self, **labelvalues):
        """The child for one label combination, created on first use."""
        key = tuple(sorted((str(k), str(v)) for k, v in labelvalues.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "counter":
                    child = Counter(self._lock)
                elif self.kind == "gauge":
                    child = Gauge(self._lock)
                else:
                    child = Histogram(self._lock, self.buckets)
                self._children[key] = child
            return child

    # -- no-label convenience delegation ----------------------------------

    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> list:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A process-local collection of metric families."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict = {}
        self._hooks: list = []

    def _family(self, kind: str, name: str, help: str,
                buckets: tuple = ()) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(kind, name, help, self._lock, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family("counter", name, help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family("gauge", name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS) -> MetricFamily:
        return self._family("histogram", name, help, buckets)

    def add_collect_hook(self, hook) -> None:
        """Register ``hook()`` to run at the start of every render()."""
        with self._lock:
            self._hooks.append(hook)

    def families(self) -> list:
        with self._lock:
            return sorted(self._families.items())

    # -- exposition --------------------------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            hooks = list(self._hooks)
        for hook in hooks:
            hook()
        lines: list = []
        for name, family in self.families():
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in family.children():
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(child.bounds, child.bucket_counts):
                        cumulative += count
                        items = key + (("le", _format_value(float(bound))),)
                        lines.append(f"{name}_bucket{_format_labels(items)} "
                                     f"{cumulative}")
                    items = key + (("le", "+Inf"),)
                    lines.append(f"{name}_bucket{_format_labels(items)} "
                                 f"{child.count}")
                    lines.append(f"{name}_sum{_format_labels(key)} "
                                 f"{_format_value(child.sum)}")
                    lines.append(f"{name}_count{_format_labels(key)} "
                                 f"{child.count}")
                else:
                    lines.append(f"{name}{_format_labels(key)} "
                                 f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n" if lines else ""

    # -- cross-process relay ----------------------------------------------

    def drain_deltas(self) -> list:
        """Plain-data increments since the previous drain.

        Counters and histograms report only what accumulated since the
        last call (and remember it, so repeated drains never double
        count); gauges report their current value every time.
        """
        deltas: list = []
        for name, family in self.families():
            for key, child in family.children():
                labels = dict(key)
                if family.kind == "counter":
                    delta = child._drain()
                    if delta:
                        deltas.append({"kind": "counter", "name": name,
                                       "help": family.help, "labels": labels,
                                       "value": delta})
                elif family.kind == "gauge":
                    deltas.append({"kind": "gauge", "name": name,
                                   "help": family.help, "labels": labels,
                                   "value": child.value})
                else:
                    counts, total, count = child._drain()
                    if count:
                        deltas.append({"kind": "histogram", "name": name,
                                       "help": family.help, "labels": labels,
                                       "buckets": list(child.bounds),
                                       "counts": counts, "sum": total,
                                       "count": count})
        return deltas

    def merge_deltas(self, deltas) -> None:
        """Fold :meth:`drain_deltas` output from another process in."""
        for delta in deltas:
            kind = delta["kind"]
            labels = delta.get("labels") or {}
            if kind == "counter":
                family = self.counter(delta["name"], delta.get("help", ""))
                family.labels(**labels).inc(delta["value"])
            elif kind == "gauge":
                family = self.gauge(delta["name"], delta.get("help", ""))
                family.labels(**labels).set(delta["value"])
            elif kind == "histogram":
                family = self.histogram(
                    delta["name"], delta.get("help", ""),
                    buckets=tuple(delta.get("buckets") or
                                  DEFAULT_LATENCY_BUCKETS),
                )
                family.labels(**labels)._merge(
                    delta.get("counts") or [], delta.get("sum", 0.0),
                    delta.get("count", 0),
                )
            else:
                raise ValueError(f"unknown delta kind: {kind!r}")
