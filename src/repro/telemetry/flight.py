"""Flight recorder: a bounded black box that survives job failure.

When a compilation job dies — a solver bug, a poisoned Hamiltonian, an
injected chaos fault — the traceback alone says *where* it stopped, not
*what it was doing*.  A :class:`FlightRecorder` rides along with each
job and keeps the last ``max_events`` breadcrumbs (structured log
records and progress events), so the failure dump answers the operator
questions a bare traceback cannot: which rung was in flight, how fast
conflicts were accumulating, which spans were still open.

The recorder is passive until the moment of failure; :meth:`dump` then
assembles the post-mortem:

* the ring of recent breadcrumbs, oldest first;
* spans still open at failure time (from the tracer's open-span
  registry — a span that never closed is exactly the one that matters);
* a metrics snapshot (the Prometheus text rendering, so the dump is
  self-describing without our parser).

``run_compile_job`` attaches a recorder per job and stores the dump on
the :class:`~repro.store.batch.JobOutcome`; the daemon persists it next
to the ``JobRecord`` and serves it at ``GET /jobs/<id>/forensics``.
"""

from __future__ import annotations

import time
import traceback as _traceback
from collections import deque

#: Default breadcrumb ring size — enough to cover several rungs of
#: heartbeats plus the lifecycle events around them.
DEFAULT_MAX_EVENTS = 256


class FlightRecorder:
    """Bounded breadcrumb ring + failure-time dump assembly."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self._events: deque[dict] = deque(maxlen=max_events)

    def record(self, level: str, message: str, **fields) -> dict:
        """Append one structured breadcrumb (a log record)."""
        event = {"ts": time.time(), "level": level, "message": message}
        event.update((k, v) for k, v in fields.items() if v is not None)
        self._events.append(event)
        return event

    def watch(self, event: dict) -> None:
        """Progress-bus sink: capture bus events as breadcrumbs."""
        copy = dict(event)
        copy.setdefault("level", "progress")
        self._events.append(copy)

    def events(self) -> list:
        """Breadcrumbs currently buffered, oldest first."""
        return [dict(e) for e in self._events]

    def dump(self, telemetry=None, error=None) -> dict:
        """Assemble the post-mortem document.

        ``error`` may be an exception (formatted with its traceback) or
        a pre-formatted string.  ``telemetry`` contributes the open-span
        registry and the metrics snapshot when present.
        """
        if isinstance(error, BaseException):
            error = "".join(_traceback.format_exception(
                type(error), error, error.__traceback__)).rstrip()
        dump = {
            "captured_at": time.time(),
            "error": error,
            "events": self.events(),
            "open_spans": [],
            "metrics": None,
        }
        if telemetry is not None:
            tracer = getattr(telemetry, "tracer", None)
            if tracer is not None and hasattr(tracer, "open_spans"):
                dump["open_spans"] = tracer.open_spans()
            try:
                dump["metrics"] = telemetry.render_metrics()
            except Exception:
                # The dump is a best-effort artifact assembled while a
                # job is already failing — a metrics rendering error
                # must not mask the original fault.
                pass
        return dump
