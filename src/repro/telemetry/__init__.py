"""Observability for the Fermihedral pipeline: metrics, tracing, progress.

One :class:`Telemetry` handle bundles a :class:`MetricsRegistry`
(counters, gauges, histograms; Prometheus text via ``render_metrics``)
with a :class:`Tracer` (nested spans, JSONL events) and a
:class:`ProgressBus` (live heartbeat events with cursors and per-job
snapshots).  It is threaded *optionally* through the compiler, solver,
cache, and service: every instrumented site gates on ``telemetry is
None``, so a process that never constructs one pays nothing — the same
zero-cost-when-off discipline the solver's DRAT logging established.

Cross-process relay: worker processes (portfolio racers,
``ProcessBatchExecutor`` children) build their own local ``Telemetry``,
then :meth:`Telemetry.drain_relay` a plain-data payload back with each
result over the existing pipe/pickle plumbing.  The parent
:meth:`Telemetry.absorb_relay`\\ s it — counter/histogram deltas merge
additively (exactly once, because draining resets the export mark),
span ids are remapped into the parent's id space, and progress events
are re-sequenced into the parent bus's cursor feed.

A :class:`FlightRecorder` (``telemetry/flight.py``) can additionally be
attached per job as ``telemetry.flight``; on failure its :meth:`dump`
combines recent breadcrumbs with the tracer's open spans and a metrics
snapshot into the post-mortem the service persists.
"""

from __future__ import annotations

from repro.telemetry.flight import FlightRecorder
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    histogram_quantile,
    parse_prometheus_text,
)
from repro.telemetry.progress import (
    FileSnapshotSink,
    ProgressBus,
    RungEtaEstimator,
    read_snapshot,
)
from repro.telemetry.trace import (
    Tracer,
    read_jsonl,
    render_tree,
    write_jsonl,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "FileSnapshotSink",
    "FlightRecorder",
    "MetricFamily",
    "MetricsRegistry",
    "ProgressBus",
    "RungEtaEstimator",
    "Telemetry",
    "Tracer",
    "histogram_quantile",
    "parse_prometheus_text",
    "read_jsonl",
    "read_snapshot",
    "render_tree",
    "write_jsonl",
]


class Telemetry:
    """A metrics registry, a tracer, and a progress bus behind one handle."""

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 progress: ProgressBus | None = None):
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.tracer = Tracer() if tracer is None else tracer
        self.progress = ProgressBus() if progress is None else progress
        #: Per-job flight recorder, attached by ``run_compile_job`` for
        #: the duration of one job; ``None`` otherwise.
        self.flight: FlightRecorder | None = None

    # -- tracing -----------------------------------------------------------

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def context(self, **attrs):
        return self.tracer.context(**attrs)

    # -- metrics -----------------------------------------------------------

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS) -> MetricFamily:
        return self.metrics.histogram(name, help, buckets=buckets)

    def render_metrics(self) -> str:
        return self.metrics.render()

    # -- cross-process relay ----------------------------------------------

    def drain_relay(self) -> dict:
        """Everything accumulated since the last drain, as plain data."""
        return {
            "events": self.tracer.drain(),
            "metrics": self.metrics.drain_deltas(),
            "progress": self.progress.drain(),
        }

    def absorb_relay(self, payload, extra: dict | None = None) -> None:
        """Merge a child process's :meth:`drain_relay` payload."""
        if not payload:
            return
        self.metrics.merge_deltas(payload.get("metrics") or ())
        self.tracer.ingest(payload.get("events") or (), extra=extra)
        self.progress.ingest(payload.get("progress") or (), extra=extra)
