"""Observability for the Fermihedral pipeline: metrics + tracing.

One :class:`Telemetry` handle bundles a :class:`MetricsRegistry`
(counters, gauges, histograms; Prometheus text via ``render_metrics``)
with a :class:`Tracer` (nested spans, JSONL events).  It is threaded
*optionally* through the compiler, solver, cache, and service: every
instrumented site gates on ``telemetry is None``, so a process that
never constructs one pays nothing — the same zero-cost-when-off
discipline the solver's DRAT logging established.

Cross-process relay: worker processes (portfolio racers,
``ProcessBatchExecutor`` children) build their own local ``Telemetry``,
then :meth:`Telemetry.drain_relay` a plain-data payload back with each
result over the existing pipe/pickle plumbing.  The parent
:meth:`Telemetry.absorb_relay`\\ s it — counter/histogram deltas merge
additively (exactly once, because draining resets the export mark), and
span ids are remapped into the parent's id space.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
)
from repro.telemetry.trace import (
    Tracer,
    read_jsonl,
    render_tree,
    write_jsonl,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "Telemetry",
    "Tracer",
    "read_jsonl",
    "render_tree",
    "write_jsonl",
]


class Telemetry:
    """A metrics registry and a tracer behind one handle."""

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None):
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.tracer = Tracer() if tracer is None else tracer

    # -- tracing -----------------------------------------------------------

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def context(self, **attrs):
        return self.tracer.context(**attrs)

    # -- metrics -----------------------------------------------------------

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS) -> MetricFamily:
        return self.metrics.histogram(name, help, buckets=buckets)

    def render_metrics(self) -> str:
        return self.metrics.render()

    # -- cross-process relay ----------------------------------------------

    def drain_relay(self) -> dict:
        """Everything accumulated since the last drain, as plain data."""
        return {
            "events": self.tracer.drain(),
            "metrics": self.metrics.drain_deltas(),
        }

    def absorb_relay(self, payload, extra: dict | None = None) -> None:
        """Merge a child process's :meth:`drain_relay` payload."""
        if not payload:
            return
        self.metrics.merge_deltas(payload.get("metrics") or ())
        self.tracer.ingest(payload.get("events") or (), extra=extra)
