"""Progress streaming: a bounded bus of structured heartbeat events.

The SAT lane of a real Fermihedral instance runs for minutes to hours,
and until it answers, metrics and spans only describe the *past*.  A
:class:`ProgressBus` closes that gap: instrumented code emits small
plain-dict events — a descent starting, a rung finishing, a periodic
in-flight heartbeat with the current conflict count and rate — and
consumers read them three ways:

* **cursor feed** — every event gets a monotonically increasing ``seq``;
  :meth:`ProgressBus.since` returns everything after a cursor and
  :meth:`ProgressBus.wait_since` long-polls for it (the ``GET /events``
  endpoint).  The buffer is a bounded ring: a reader that falls further
  behind than ``max_events`` is told so via ``dropped`` instead of
  silently missing events.
* **per-job snapshot** — events carrying a ``job`` field fold into a
  latest-state dict per job (the ``GET /jobs/<id>/progress`` view).
* **sinks** — callables invoked with each event as it is emitted; the
  flight recorder and the executor's cross-process snapshot file both
  attach this way.

Cross-process relay follows the telemetry relay discipline exactly:
worker processes emit into their own local bus, :meth:`drain` the raw
events into the reply payload, and the parent :meth:`ingest`\\ s them —
re-sequenced into the parent's cursor space, in order, exactly once.
Because a worker cannot relay *mid-job* over the result pipe, the
executor additionally gives each worker a :class:`FileSnapshotSink`
whose atomically-replaced JSON file the daemon reads for live
in-flight snapshots.

Heartbeats from the solver hot path are throttled here
(``heartbeat_interval_s``), not at the call site: the solver only calls
:meth:`heartbeat` at restart boundaries — where it already samples
telemetry — and the bus turns most of those calls into a single
monotonic-clock comparison.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager

#: Default bound on buffered events (the cursor feed's ring size).
DEFAULT_MAX_EVENTS = 4096

#: Default bound on per-job snapshots kept (oldest-touched evicted).
DEFAULT_MAX_JOBS = 512

#: Default minimum spacing between ``heartbeat()`` emissions per thread.
DEFAULT_HEARTBEAT_INTERVAL_S = 0.5


class ProgressBus:
    """Thread-safe bounded event bus with cursors, snapshots, and sinks."""

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        max_jobs: int = DEFAULT_MAX_JOBS,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
    ):
        if max_events < 1:
            raise ValueError("max_events must be positive")
        if max_jobs < 1:
            raise ValueError("max_jobs must be positive")
        self.heartbeat_interval_s = heartbeat_interval_s
        self._cond = threading.Condition()
        self._events: deque[dict] = deque(maxlen=max_events)
        self._next_seq = 1
        self._snapshots: OrderedDict[str, dict] = OrderedDict()
        self._max_jobs = max_jobs
        self._sinks: list = []
        self._local = threading.local()

    # -- per-thread implicit fields ---------------------------------------

    def _contexts(self) -> list:
        contexts = getattr(self._local, "contexts", None)
        if contexts is None:
            contexts = self._local.contexts = []
        return contexts

    @contextmanager
    def context(self, **fields):
        """Attach implicit fields (job id, bound, engine) to every event
        this thread emits — or ingests — while the context is active."""
        contexts = self._contexts()
        contexts.append({k: v for k, v in fields.items() if v is not None})
        try:
            yield
        finally:
            contexts.pop()

    def _context_fields(self) -> dict:
        merged: dict = {}
        for context in self._contexts():
            merged.update(context)
        return merged

    # -- sinks -------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Register ``sink(event)`` to run on every emitted event."""
        with self._cond:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        with self._cond:
            if sink in self._sinks:
                self._sinks.remove(sink)

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns it (with ``seq`` and ``ts`` set)."""
        merged = self._context_fields()
        merged.update((k, v) for k, v in fields.items() if v is not None)
        return self._append(kind, time.time(), merged)

    def heartbeat(self, **fields) -> dict | None:
        """A throttled in-flight ``heartbeat`` event.

        Returns ``None`` (emitting nothing) when the previous heartbeat
        on this thread is younger than ``heartbeat_interval_s`` — the
        solver calls this at every restart boundary and almost all calls
        must cost one clock read.  When the implicit context carries
        ``expected_conflicts`` (the descent's per-rung estimate) and the
        fields carry a positive ``conflicts_per_s``, the remaining-time
        estimate ``eta_s`` is derived here.
        """
        now = time.monotonic()
        last = getattr(self._local, "last_heartbeat", None)
        if last is not None and now - last < self.heartbeat_interval_s:
            return None
        self._local.last_heartbeat = now
        merged = self._context_fields()
        merged.update((k, v) for k, v in fields.items() if v is not None)
        expected = merged.pop("expected_conflicts", None)
        rate = merged.get("conflicts_per_s") or 0.0
        if expected is not None and rate > 0:
            remaining = max(0.0, float(expected) - merged.get("conflicts", 0))
            merged["eta_s"] = round(remaining / rate, 1)
        return self._append("heartbeat", time.time(), merged)

    def _append(self, kind: str, ts: float, fields: dict) -> dict:
        with self._cond:
            event = {"seq": self._next_seq, "ts": ts, "kind": kind, **fields}
            self._next_seq += 1
            self._events.append(event)
            job = fields.get("job")
            if job is not None:
                snapshot = self._snapshots.pop(str(job), {})
                snapshot.update(fields)
                snapshot["seq"] = event["seq"]
                snapshot["ts"] = ts
                snapshot["last_kind"] = kind
                self._snapshots[str(job)] = snapshot
                while len(self._snapshots) > self._max_jobs:
                    self._snapshots.popitem(last=False)
            sinks = list(self._sinks)
            self._cond.notify_all()
        for sink in sinks:
            try:
                sink(event)
            except Exception:
                # A broken sink (full disk under a snapshot file, a
                # misbehaving subscriber) must never take down the solve
                # it is observing.
                pass
        return event

    # -- cursor feed -------------------------------------------------------

    def since(self, cursor: int = 0, limit: int = 500) -> dict:
        """Events with ``seq > cursor``: ``{"events", "next", "dropped"}``.

        ``next`` is the cursor for the following call; ``dropped`` is
        true when the ring evicted events the cursor never saw (the
        reader resumes from the oldest still buffered).
        """
        with self._cond:
            return self._since_locked(cursor, limit)

    def _since_locked(self, cursor: int, limit: int) -> dict:
        cursor = max(0, int(cursor))
        newest = self._next_seq - 1
        oldest = self._events[0]["seq"] if self._events else self._next_seq
        dropped = cursor + 1 < oldest and newest > cursor
        events = [dict(e) for e in self._events if e["seq"] > cursor][:limit]
        next_cursor = events[-1]["seq"] if events else max(cursor, newest)
        return {"events": events, "next": next_cursor, "dropped": dropped}

    def wait_since(self, cursor: int = 0, timeout: float = 0.0,
                   limit: int = 500) -> dict:
        """:meth:`since`, long-polling up to ``timeout`` seconds for the
        first new event before answering empty."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            while True:
                batch = self._since_locked(cursor, limit)
                if batch["events"]:
                    return batch
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return batch
                self._cond.wait(remaining)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self, job: str) -> dict | None:
        """Latest merged state of one job (``None`` when never seen)."""
        with self._cond:
            snapshot = self._snapshots.get(str(job))
            return None if snapshot is None else dict(snapshot)

    def snapshots(self) -> dict:
        """All per-job snapshots, keyed by job id."""
        with self._cond:
            return {job: dict(snap) for job, snap in self._snapshots.items()}

    def forget(self, job: str) -> None:
        """Drop one job's snapshot (registry eviction lockstep)."""
        with self._cond:
            self._snapshots.pop(str(job), None)

    # -- cross-process relay ----------------------------------------------

    def drain(self) -> list:
        """Buffered events as plain data, forgetting them (relay
        primitive: repeated drains never ship an event twice).  Snapshots
        are kept — the local process may still be asked about its jobs."""
        with self._cond:
            events = [dict(e) for e in self._events]
            self._events.clear()
            return events

    def ingest(self, events, extra: dict | None = None) -> list:
        """Merge events drained from another bus, re-sequenced into this
        bus's cursor space in their original order.

        Field precedence per event: the ingesting thread's implicit
        context, then ``extra``, then the event's own fields — so a
        worker's ``job``/``bound`` tags survive, and the parent can still
        add what only it knows (round, worker index).
        """
        merged: list = []
        base = self._context_fields()
        if extra:
            base = {**base, **extra}
        for event in events:
            fields = {
                k: v for k, v in event.items()
                if k not in ("seq", "ts", "kind")
            }
            fields = {**base, **fields}
            merged.append(self._append(
                event.get("kind", "event"), event.get("ts", time.time()),
                fields,
            ))
        return merged


class FileSnapshotSink:
    """A bus sink mirroring the latest merged snapshot into a JSON file.

    The file is written with an atomic replace so a reader never sees a
    torn document, and writes are throttled to ``min_interval_s`` except
    for non-heartbeat events (rung completions, terminal transitions),
    which always flush.  This is the live mid-job channel out of a
    ``ProcessBatchExecutor`` worker: the result pipe only speaks at
    completion, a file speaks whenever the daemon cares to read it.
    """

    def __init__(self, path, min_interval_s: float = 0.5):
        self.path = str(path)
        self.min_interval_s = min_interval_s
        self._snapshot: dict = {}
        self._last_write = 0.0
        self._lock = threading.Lock()

    def __call__(self, event: dict) -> None:
        with self._lock:
            fields = {
                k: v for k, v in event.items() if k not in ("seq", "ts")
            }
            kind = fields.pop("kind", "event")
            self._snapshot.update(fields)
            self._snapshot["last_kind"] = kind
            self._snapshot["ts"] = event.get("ts", time.time())
            now = time.monotonic()
            if (kind == "heartbeat"
                    and now - self._last_write < self.min_interval_s):
                return
            self._last_write = now
            self._write()

    def _write(self) -> None:
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(self._snapshot, handle, sort_keys=True)
        os.replace(tmp, self.path)


def read_snapshot(path) -> dict | None:
    """Read a :class:`FileSnapshotSink` file; ``None`` when absent or
    torn (a crash between create and replace can leave junk)."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


class RungEtaEstimator:
    """Predicts a rung's total conflicts from the ladder's history.

    The incremental ladder's rungs get harder as the bound tightens, so
    a plain mean lags badly; an exponential moving average weighted
    toward recent rungs tracks the trend.  ``expected_conflicts()`` is
    ``None`` until the first rung completes — no estimate beats a made-up
    one.  The heartbeat path divides the remaining conflicts by the
    live conflict rate to get ``eta_s``.
    """

    def __init__(self, smoothing: float = 0.5):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        self._ema: float | None = None

    def observe(self, conflicts: int) -> None:
        """Fold one completed rung's conflict count in."""
        if self._ema is None:
            self._ema = float(conflicts)
        else:
            self._ema = (self.smoothing * conflicts
                         + (1.0 - self.smoothing) * self._ema)

    def expected_conflicts(self) -> float | None:
        return None if self._ema is None else round(self._ema, 1)
