"""Span-based tracing with structured JSONL events.

A :class:`Tracer` hands out nested spans::

    with tracer.span("descent.rung", bound=36, engine="incremental"):
        ...

Each span becomes one plain-dict event when it *closes*::

    {"name": "descent.rung", "span_id": 7, "parent_id": 3,
     "ts": 1722988571.4, "start_s": 1042.118, "duration_s": 0.031,
     "attrs": {"bound": 36, "engine": "incremental"}}

``ts`` is the wall-clock start (comparable across processes), ``start_s``
the monotonic start (precise within one process), ``duration_s`` the
monotonic elapsed time.  Parent links follow the per-thread span stack;
:meth:`Tracer.context` pushes implicit attributes (e.g. a job id) onto
every span a thread opens while the context is active.

Cross-process relay: a worker drains its events (:meth:`Tracer.drain`)
and ships them with its result; the parent :meth:`Tracer.ingest`\\ s
them, remapping span ids into its own id space so merged traces from
many children never collide, while preserving the internal parent links.

Helpers at module level read/write JSONL trace files and render an
indented span tree with durations (the ``repro trace show`` view).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path


class Tracer:
    """Collects span events; thread-safe; bounded to ``max_events``."""

    def __init__(self, sink=None, max_events: int = 100_000):
        self._sink = sink
        self._max_events = max_events
        self._events: list = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._open: dict = {}

    # -- per-thread state --------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _contexts(self) -> list:
        contexts = getattr(self._local, "contexts", None)
        if contexts is None:
            contexts = self._local.contexts = []
        return contexts

    # -- spans -------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span; yields its attrs dict (mutable until close)."""
        span_id = next(self._ids)
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        merged: dict = {}
        for context in self._contexts():
            merged.update(context)
        merged.update(attrs)
        wall = time.time()
        start = time.monotonic()
        stack.append(span_id)
        with self._lock:
            self._open[span_id] = {
                "name": name,
                "span_id": span_id,
                "parent_id": parent_id,
                "ts": wall,
                "start_s": start,
                "attrs": merged,
            }
        try:
            yield merged
        finally:
            stack.pop()
            with self._lock:
                self._open.pop(span_id, None)
            self._record({
                "name": name,
                "span_id": span_id,
                "parent_id": parent_id,
                "ts": wall,
                "start_s": start,
                "duration_s": time.monotonic() - start,
                "attrs": merged,
            })

    @contextmanager
    def context(self, **attrs):
        """Attach implicit attrs to every span this thread opens inside."""
        contexts = self._contexts()
        contexts.append(dict(attrs))
        try:
            yield
        finally:
            contexts.pop()

    def _record(self, event: dict) -> None:
        with self._lock:
            if len(self._events) < self._max_events:
                self._events.append(event)
        if self._sink is not None:
            self._sink(event)

    # -- access and relay --------------------------------------------------

    def events(self) -> list:
        with self._lock:
            return list(self._events)

    def open_spans(self) -> list:
        """Spans entered but not yet closed, oldest first — the flight
        recorder captures these at failure time: a span that never
        closed is exactly the one worth looking at."""
        now = time.monotonic()
        with self._lock:
            spans = []
            for record in self._open.values():
                copy = dict(record)
                copy["attrs"] = dict(record["attrs"])
                copy["age_s"] = now - record["start_s"]
                spans.append(copy)
        spans.sort(key=lambda s: s["start_s"])
        return spans

    def drain(self) -> list:
        """Return all buffered events and forget them (relay primitive)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def ingest(self, events, extra: dict | None = None) -> list:
        """Merge events drained from another tracer into this one.

        Span ids are remapped into this tracer's id space (internal
        parent links are preserved; parents that did not travel with the
        batch become roots).  ``extra`` attrs, if given, are merged onto
        every ingested event — the parent uses this to tag a worker's
        spans with the round/worker/job they belong to.
        """
        mapping: dict = {}
        batch = list(events)
        for event in batch:
            mapping[event["span_id"]] = next(self._ids)
        merged: list = []
        for event in batch:
            copy = dict(event)
            copy["span_id"] = mapping[event["span_id"]]
            copy["parent_id"] = mapping.get(event.get("parent_id"))
            if extra:
                copy["attrs"] = {**(event.get("attrs") or {}), **extra}
            merged.append(copy)
        with self._lock:
            room = self._max_events - len(self._events)
            if room > 0:
                self._events.extend(merged[:room])
        if self._sink is not None:
            for event in merged:
                self._sink(event)
        return merged


# -- JSONL files ---------------------------------------------------------


def write_jsonl(events, path) -> None:
    """Write one event per line (the ``repro solve --trace`` artifact)."""
    with Path(path).open("w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")


def read_jsonl(path) -> list:
    """Read a JSONL trace file back into a list of event dicts.

    Malformed lines are skipped: a worker killed mid-write leaves a
    truncated final line, and a post-mortem reader must still get every
    span that did land intact.
    """
    events = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events


# -- rendering -----------------------------------------------------------


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _format_attrs(attrs: dict) -> str:
    return " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))


def render_tree(events) -> str:
    """An indented per-span tree with durations, sorted by start time."""
    if not events:
        return "(empty trace)"
    by_id = {event["span_id"]: event for event in events}
    children: dict = {}
    roots = []
    orphans = set()
    for event in events:
        parent = event.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(event)
        else:
            # A non-None parent missing from the file means the trace is
            # incomplete (truncated JSONL from a killed worker): render
            # the span at root, visibly marked, rather than losing it.
            if parent is not None:
                orphans.add(event["span_id"])
            roots.append(event)

    def start_key(event):
        return (event.get("ts", 0.0), event.get("start_s", 0.0))

    lines: list = []

    def walk(event, depth):
        indent = "  " * depth
        attrs = _format_attrs(event.get("attrs") or {})
        line = (f"{indent}{event['name']}  "
                f"{_format_duration(event.get('duration_s', 0.0))}")
        if event["span_id"] in orphans:
            line += "  (orphan: parent span missing)"
        if attrs:
            line += f"  [{attrs}]"
        lines.append(line)
        for child in sorted(children.get(event["span_id"], ()), key=start_key):
            walk(child, depth + 1)

    for root in sorted(roots, key=start_key):
        walk(root, 0)
    return "\n".join(lines)
