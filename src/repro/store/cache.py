"""Persistent, content-addressed compilation cache.

Entries live under a root directory, sharded by the first two hex chars of
their fingerprint key::

    <root>/ab/abcdef...0123.json

Each entry is a small, versioned JSON document wrapping a full
:class:`~repro.core.pipeline.CompilationResult` (result schema of
:mod:`repro.encodings.serialization`) plus descriptive job metadata for
``repro cache ls``.  Writes are atomic (temp file + ``os.replace``) so a
crashed or concurrent writer can never leave a half-written entry behind;
readers treat anything unparseable as a miss and count it as corrupted.

The cache is safe to share across threads — :class:`BatchCompiler` hands
one instance to every worker — and across processes on the same
filesystem, because the key is content-addressed: two processes that race
to store the same key write equivalent entries.  The parallel batch
executor leans on this: every worker process opens the same directory,
readers treat an entry GC'd from under them (``FileNotFoundError`` between
the existence check and the read) as a plain miss, and writers recreate a
shard directory a concurrent ``gc()``/cleanup removed mid-``put``.  Cache
objects themselves pickle by directory — the in-memory lock and counters
stay process-local.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro import chaos
from repro.store.fingerprint import compilation_key

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.config import AnnealingSchedule, FermihedralConfig
    from repro.core.pipeline import CompilationResult
    from repro.fermion.hamiltonians import FermionicHamiltonian
    from repro.hardware.topology import DeviceTopology
    from repro.sat.drat import ProofTrace

_ENTRY_FORMAT_VERSION = 1

#: Subdirectory of the cache root holding DRAT proof artifacts, stored
#: content-addressed by their own SHA-256 (not by job fingerprint: the
#: proof describes one concrete refutation, and a result entry points at
#: it through ``CompilationResult.proof["sha256"]``).
_PROOFS_DIR = "proofs"

#: Subdirectory of the cache root holding descent checkpoints, keyed by
#: job fingerprint.  A checkpoint is transient execution state (rung
#: progress of one in-flight descent), not a result: it is excluded from
#: entry listings and overwritten in place as the descent advances.
_CHECKPOINTS_DIR = "checkpoints"

#: Age (seconds) after which an orphaned ``.tmp`` writer file is fair game
#: for gc; any live put() completes in well under this.
_STALE_TEMP_S = 3600.0


def default_cache_dir() -> Path:
    """The conventional cache location: ``$REPRO_CACHE_DIR`` or
    ``~/.cache/fermihedral``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "fermihedral"


@dataclass
class CacheStats:
    """Counters accumulated by one :class:`CompilationCache` instance.

    ``hits`` counts entries found and decoded; a hit that is then used
    only to seed a warm-started descent also increments ``warm_starts``
    (the pipeline records that).  ``corrupted`` counts entries that were
    present but unreadable — they behave as misses.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    warm_starts: int = 0
    corrupted: int = 0


@dataclass(frozen=True)
class CacheEntryInfo:
    """Summary of one on-disk entry, as listed by ``repro cache ls``."""

    key: str
    path: Path
    num_modes: int | None
    method: str | None
    weight: int | None
    proved_optimal: bool | None
    created_at: float
    size_bytes: int
    corrupted: bool = False


@dataclass
class GcReport:
    """What a :meth:`CompilationCache.gc` pass removed and kept."""

    removed: list[CacheEntryInfo] = field(default_factory=list)
    #: Why each entry was evicted: key -> "corrupted" | "unproved" | "over-limit".
    reasons: dict[str, str] = field(default_factory=dict)
    kept: int = 0
    dry_run: bool = False
    temp_files_removed: int = 0

    @property
    def removed_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.removed)


# repro-lint: worker-shipped
class CompilationCache:
    """Content-addressed store of compilation results.

    Args:
        root: directory holding the entries; created on first use.
        validate: re-validate encoding constraints when decoding entries.
            Leave on unless the caller re-verifies results itself.
        telemetry: optional :class:`repro.telemetry.Telemetry`; every
            ``stats`` increment is then mirrored into labelled counters
            (``repro_cache_requests_total{outcome=...}``, stores, warm
            starts).  Also settable after construction with
            :meth:`set_telemetry` — the compiler does this so a cache
            built by the CLI reports through the compiler's handle.

    High-level use pairs :meth:`key_for` with :meth:`get`/:meth:`put`;
    :class:`~repro.core.pipeline.FermihedralCompiler` does this when
    constructed with ``cache=``.
    """

    def __init__(self, root: str | Path, validate: bool = True,
                 telemetry=None):
        self.root = Path(root)
        self.validate = validate
        self.telemetry = telemetry
        self.stats = CacheStats()
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Pickle by directory: locks are process-local, and a worker's
        hit/miss counters should start at zero, not at the parent's."""
        return {"root": self.root, "validate": self.validate}

    def __setstate__(self, state: dict) -> None:
        self.root = state["root"]
        self.validate = state["validate"]
        self.telemetry = None
        self.stats = CacheStats()
        self._lock = threading.Lock()

    def set_telemetry(self, telemetry) -> None:
        """Attach (or detach, with ``None``) a telemetry handle."""
        self.telemetry = telemetry

    def _tele_request(self, outcome: str) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(
                "repro_cache_requests_total",
                "compilation-cache lookups by outcome",
            ).labels(outcome=outcome).inc()

    # -- keys -----------------------------------------------------------------

    def key_for(
        self,
        num_modes: int,
        config: FermihedralConfig,
        hamiltonian: FermionicHamiltonian | None = None,
        method: str = "independent",
        schedule: AnnealingSchedule | None = None,
        seed: int | None = None,
        device: "DeviceTopology | None" = None,
    ) -> str:
        """Fingerprint a compilation job (see :mod:`repro.store.fingerprint`)."""
        return compilation_key(
            num_modes, config, hamiltonian, method, schedule, seed, device
        )

    def path_for(self, key: str) -> Path:
        """On-disk location of a key's entry (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def proof_path(self, sha: str) -> Path:
        """On-disk location of a proof artifact (whether or not it exists)."""
        return self.root / _PROOFS_DIR / f"{sha}.json"

    def checkpoint_path(self, key: str) -> Path:
        """On-disk location of a key's descent checkpoint (if any)."""
        return self.root / _CHECKPOINTS_DIR / f"{key}.json"

    # -- read side ------------------------------------------------------------

    def _decode_entry(self, path: Path, key: str) -> CompilationResult:
        """Fully decode one entry file, raising ``ValueError``-family
        exceptions on any corruption (the single source of truth for what
        counts as a readable entry)."""
        from repro.encodings.serialization import result_from_dict

        data = json.loads(path.read_text())
        if data.get("entry_format_version") != _ENTRY_FORMAT_VERSION:
            raise ValueError("unknown entry format version")
        if data.get("key") != key:
            raise ValueError("entry key does not match its filename")
        return result_from_dict(data["result"], validate=self.validate)

    def get(self, key: str) -> CompilationResult | None:
        """Fetch a cached result, or ``None`` on miss.

        Corrupted entries (unreadable JSON, schema mismatch, key mismatch,
        invalid encodings) are counted in ``stats.corrupted`` and reported
        as misses; ``gc()`` removes them.
        """
        path = self.path_for(key)
        try:
            chaos.inject("cache.read", telemetry=self.telemetry)
            exists = path.exists()
        except OSError:
            # An unreadable store (injected or real) degrades to a miss:
            # the pipeline recomputes instead of failing the job.
            with self._lock:
                self.stats.misses += 1
            self._tele_request("miss")
            return None
        if not exists:
            with self._lock:
                self.stats.misses += 1
            self._tele_request("miss")
            return None
        try:
            result = self._decode_entry(path, key)
        except OSError:
            with self._lock:
                self.stats.misses += 1
            self._tele_request("miss")
            return None
        except (ValueError, KeyError, TypeError):
            with self._lock:
                self.stats.corrupted += 1
                self.stats.misses += 1
            self._tele_request("corrupted")
            self._tele_request("miss")
            return None
        with self._lock:
            self.stats.hits += 1
        self._tele_request("hit")
        return result

    def note_warm_start(self) -> None:
        """Record that a hit was consumed as a warm-start seed (thread-safe)."""
        with self._lock:
            self.stats.warm_starts += 1
        if self.telemetry is not None:
            self.telemetry.counter(
                "repro_cache_warm_starts_total",
                "cache hits consumed as descent warm starts",
            ).inc()

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    # -- write side -----------------------------------------------------------

    @staticmethod
    def _atomic_write(path: Path, text: str, prefix: str) -> None:
        """Write ``text`` to ``path`` atomically (temp + ``os.replace``).

        One retry: a concurrent cleanup may remove the parent directory
        between mkdir and the write/replace below; recreating it once
        closes that race (a second removal mid-retry is a real error).
        """
        for attempt in (0, 1):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                handle, temp_name = tempfile.mkstemp(
                    dir=path.parent, prefix=f".{prefix}.", suffix=".tmp"
                )
            except FileNotFoundError:
                if attempt == 0:
                    continue
                raise
            try:
                with os.fdopen(handle, "w") as stream:
                    stream.write(text)
                os.replace(temp_name, path)
                break
            except FileNotFoundError:
                if attempt == 0:
                    continue
                raise
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise

    def put(self, key: str, result: CompilationResult) -> Path:
        """Persist a result under ``key`` atomically; returns the entry path."""
        from repro.encodings.serialization import result_to_dict

        chaos.inject("cache.write", telemetry=self.telemetry)
        entry = {
            "entry_format_version": _ENTRY_FORMAT_VERSION,
            "key": key,
            "created_at": time.time(),
            "job": {
                "num_modes": result.encoding.num_modes,
                "method": result.method,
            },
            "result": result_to_dict(result),
        }
        path = self.path_for(key)
        self._atomic_write(path, json.dumps(entry, indent=2) + "\n", key[:8])
        with self._lock:
            self.stats.stores += 1
        if self.telemetry is not None:
            self.telemetry.counter(
                "repro_cache_stores_total", "cache entries written"
            ).inc()
        return path

    # -- proof artifacts -------------------------------------------------------

    def put_proof(self, trace: "ProofTrace") -> tuple[str, Path]:
        """Persist a DRAT proof artifact content-addressed; returns
        ``(sha256, path)``.

        The filename *is* the content hash, so concurrent writers of the
        same trace write identical bytes and the write is idempotent.
        """
        sha = trace.sha256()
        path = self.proof_path(sha)
        text = json.dumps(trace.to_dict(), sort_keys=True) + "\n"
        self._atomic_write(path, text, sha[:8])
        return sha, path

    def get_proof(self, sha: str) -> "ProofTrace | None":
        """Load a proof artifact by content hash; ``None`` on miss.

        The artifact's hash is recomputed and compared against the
        filename, so a corrupted or tampered file reads as a miss rather
        than as a plausible-looking certificate.
        """
        from repro.sat.drat import ProofTrace

        path = self.proof_path(sha)
        try:
            data = json.loads(path.read_text())
            trace = ProofTrace.from_dict(data)
        except OSError:
            return None
        except (ValueError, KeyError, TypeError):
            return None
        if trace.sha256() != sha:
            return None
        return trace

    def proof_shas(self) -> list[str]:
        """Content hashes of every stored proof artifact (sorted)."""
        proofs = self.root / _PROOFS_DIR
        if not proofs.is_dir():
            return []
        return sorted(path.stem for path in proofs.glob("*.json"))

    # -- descent checkpoints ---------------------------------------------------

    def put_checkpoint(self, key: str, data: dict) -> Path:
        """Persist a descent checkpoint document for ``key`` atomically.

        Overwrites any previous checkpoint for the key — only the latest
        rung state matters.  Raises ``OSError`` on failure; callers
        (:class:`repro.core.checkpoint.CacheCheckpointSink`) treat that as
        best-effort and keep solving.
        """
        chaos.inject("checkpoint.write", telemetry=self.telemetry)
        path = self.checkpoint_path(key)
        self._atomic_write(path, json.dumps(data) + "\n", key[:8])
        return path

    def get_checkpoint(self, key: str) -> dict | None:
        """Load a key's descent checkpoint document; ``None`` on miss or
        corruption (a bad checkpoint just means a cold start)."""
        path = self.checkpoint_path(key)
        try:
            data = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError:
            return None
        return data if isinstance(data, dict) else None

    def clear_checkpoint(self, key: str) -> None:
        """Drop a key's checkpoint (after the descent completed)."""
        try:
            self.checkpoint_path(key).unlink()
        except OSError:
            pass

    # -- maintenance ----------------------------------------------------------

    def _entry_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name in (_PROOFS_DIR, _CHECKPOINTS_DIR):
                continue  # proof/checkpoint artifacts are not result entries
            yield from sorted(shard.glob("*.json"))

    def _info_for(self, path: Path) -> CacheEntryInfo | None:
        """Summarize one entry file; ``None`` when it vanished under a
        concurrent writer.  Reads only the summary fields — cheap, but
        blind to corruption deep inside the result payload (``gc()`` does
        the full decode)."""
        key = path.stem
        try:
            stat = path.stat()
        except OSError:
            return None  # vanished under a concurrent gc
        try:
            data = json.loads(path.read_text())
            if data.get("entry_format_version") != _ENTRY_FORMAT_VERSION:
                raise ValueError("unknown entry format version")
            if data.get("key") != key:
                raise ValueError("entry key does not match its filename")
            result = data["result"]
            return CacheEntryInfo(
                key=key,
                path=path,
                num_modes=data.get("job", {}).get("num_modes"),
                method=result.get("method"),
                weight=result.get("weight"),
                proved_optimal=result.get("proved_optimal"),
                created_at=data.get("created_at", stat.st_mtime),
                size_bytes=stat.st_size,
            )
        except OSError:
            return None  # vanished under a concurrent gc
        except (ValueError, KeyError, TypeError):
            return CacheEntryInfo(
                key=key,
                path=path,
                num_modes=None,
                method=None,
                weight=None,
                proved_optimal=None,
                created_at=stat.st_mtime,
                size_bytes=stat.st_size,
                corrupted=True,
            )

    def entries(self) -> list[CacheEntryInfo]:
        """Summaries of every entry, corrupted ones flagged rather than hidden.

        Entries removed by a concurrent writer between listing and reading
        are silently skipped.
        """
        infos = []
        for path in self._entry_paths():
            info = self._info_for(path)
            if info is not None:
                infos.append(info)
        return infos

    def find(self, key_prefix: str) -> list[CacheEntryInfo]:
        """Entries whose key starts with ``key_prefix``.

        Matches on filenames first (keys are content-addressed), so only
        the matching entries are ever read.
        """
        infos = []
        for path in self._entry_paths():
            if not path.stem.startswith(key_prefix):
                continue
            info = self._info_for(path)
            if info is not None:
                infos.append(info)
        return infos

    @staticmethod
    def _unlink_if_unchanged(path: Path, observed: os.stat_result) -> bool:
        """Remove ``path`` only if it is still the file ``observed`` described.

        A ``.tmp`` that looked stale when scanned may belong to a *live*
        writer whose clock is skewed or whose ``put()`` stalled: between
        the scan's ``stat`` and this removal the writer can finish
        (``os.replace`` moves the temp onto its entry, so the name
        vanishes) or the name can be reused by a fresh writer.  Re-check
        identity (inode + mtime) immediately before unlinking and treat
        any mismatch or disappearance as "not ours to remove", so gc
        never deletes — or counts — a temp that was replaced between
        stat and unlink.
        """
        try:
            fresh = path.stat()
            if (fresh.st_ino, fresh.st_mtime_ns) != (
                observed.st_ino, observed.st_mtime_ns
            ):
                return False
            path.unlink()
        except OSError:
            return False
        return True

    def gc(
        self,
        drop_unproved: bool = False,
        max_entries: int | None = None,
        dry_run: bool = False,
    ) -> GcReport:
        """Prune the store.

        Corrupted entries are always removed — each survivor of the cheap
        summary check is fully decoded, so corruption buried in the result
        payload is caught too — as are temp files abandoned by crashed
        writers (older than :data:`_STALE_TEMP_S`, so a live writer's
        in-flight temp survives; removal re-checks the file's identity
        right before unlinking, so a temp the writer replaced between
        stat and unlink is neither deleted nor counted, and a stalled
        writer that loses its temp anyway recovers through ``put()``'s
        retry).  ``drop_unproved`` also evicts
        results whose optimality was never proved and that therefore only
        ever serve as warm starts — excluding ``sat+annealing`` entries,
        which are unproved by nature but count as full hits.
        ``max_entries`` keeps at most that many of the
        newest surviving entries.  ``dry_run`` reports without deleting.
        """
        from repro.core.config import METHOD_ANNEALING

        report = GcReport(dry_run=dry_run)
        now = time.time()
        for shard in self.root.glob("*/"):
            for temp in shard.glob(".*.tmp"):
                try:
                    observed = temp.stat()
                except OSError:
                    continue  # already replaced or removed
                if now - observed.st_mtime < _STALE_TEMP_S:
                    continue
                if dry_run:
                    report.temp_files_removed += 1
                elif self._unlink_if_unchanged(temp, observed):
                    report.temp_files_removed += 1
        def evict(info: CacheEntryInfo, reason: str) -> None:
            report.removed.append(info)
            report.reasons[info.key] = reason

        survivors = []
        for info in self.entries():
            corrupted = info.corrupted
            if not corrupted:
                # entries() only reads summary fields; a gc pass can afford
                # the full decode, so deep corruption is caught here too.
                try:
                    self._decode_entry(info.path, info.key)
                except OSError:
                    continue  # vanished under a concurrent writer
                except (ValueError, KeyError, TypeError):
                    corrupted = True
            if corrupted:
                evict(info, "corrupted")
                continue
            # sat+annealing results are never "proved" yet serve as full
            # hits (deterministic for their seed), so drop_unproved must
            # not evict them.
            evictable_unproved = (
                info.proved_optimal is False and info.method != METHOD_ANNEALING
            )
            if drop_unproved and evictable_unproved:
                evict(info, "unproved")
            else:
                survivors.append(info)
        if max_entries is not None and len(survivors) > max_entries:
            survivors.sort(key=lambda info: info.created_at, reverse=True)
            for info in survivors[max_entries:]:
                evict(info, "over-limit")
            survivors = survivors[:max_entries]
        report.kept = len(survivors)
        if not dry_run:
            for info in report.removed:
                try:
                    info.path.unlink()
                except OSError:
                    pass
        return report
