"""Batch compilation: fan a job list across workers, deduplicated by key.

The SAT descent dominates wall-clock time, so a batch front-end has two
cheap wins before it ever parallelizes:

1. **Deduplication** — jobs are fingerprinted first; only one
   representative per distinct key is compiled, and duplicates share its
   result (status ``"deduplicated"``).  Because the fingerprint ignores
   Hamiltonian coefficients, a sweep over e.g. bond lengths of the same
   molecule collapses to a single solve.
2. **Caching** — each worker runs a cache-enabled
   :class:`~repro.core.pipeline.FermihedralCompiler`, so keys already in
   the persistent store return instantly across batch invocations.

Execution is pluggable.  With ``jobs > 1`` the unique jobs fan out
across **worker processes** (:class:`repro.parallel.executor
.ProcessBatchExecutor`) — real CPU parallelism for the GIL-holding
pure-Python solver, with a parent-side cache fast path and per-job
failure isolation.  Otherwise the legacy thread pool runs them (the
jobs then share one cache object and results need no pickling).  Both
paths emit :mod:`repro.parallel.events` through ``on_event``, which the
CLI renders as a live per-job status line.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro import chaos
from repro.core.config import (
    COMPILE_METHODS,
    METHOD_ANNEALING,
    METHOD_FULL_SAT,
    METHOD_INDEPENDENT,
    AnnealingSchedule,
    FermihedralConfig,
    SolverBudget,
)
from repro.core.pipeline import CompilationResult, FermihedralCompiler, hardware_config
from repro.fermion.catalog import parse_model
from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.hardware import DeviceTopology, resolve_device
from repro.store.cache import CompilationCache
from repro.store.fingerprint import compilation_key
from repro.telemetry.flight import FlightRecorder

#: Job statuses a :class:`BatchReport` can contain.  ``degraded`` is a
#: *successful* status: the job's wall-clock deadline expired and the
#: best-so-far encoding was returned instead of an error.
JOB_STATUSES = (
    "compiled", "warm-start", "cache-hit", "deduplicated", "degraded", "error",
)

#: Legacy chaos knob (pre-``repro.chaos``): when this environment
#: variable is set and its value is a substring of a job's *label*, the
#: execution body raises before compiling.  Kept as a back-compat shim —
#: structured drills use :data:`repro.chaos.CHAOS_ENV` and its named
#: fault points instead.  Workers inherit either through fork.
CHAOS_ENV = chaos.LEGACY_CHAOS_ENV

#: Accepted spellings of the compile methods in job specs — the CLI's
#: ``--method``, batch job files, and the service wire format all share
#: this table so a method means the same thing on every front door.
METHOD_SPELLINGS = {
    "full-sat": METHOD_FULL_SAT,
    "sat-anl": METHOD_ANNEALING,
    "sat+annealing": METHOD_ANNEALING,
    "independent": METHOD_INDEPENDENT,
}

#: Fields a job spec may carry; anything else is a typo in strict mode.
JOB_SPEC_KEYS = ("model", "modes", "method", "seed", "label", "device", "config")

#: Keys of the optional per-job ``config`` override object.  ``proof``
#: and ``deadline_s`` are execution-only fields (excluded from cache
#: fingerprints), so asking for a certificate or a deadline never forks
#: the cache key of an otherwise identical job.
CONFIG_SPEC_KEYS = (
    "algebraic_independence",
    "vacuum_preservation",
    "exact_vacuum",
    "strategy",
    "budget_s",
    "max_conflicts",
    "proof",
    "deadline_s",
)


def config_from_spec(
    data: dict, base: FermihedralConfig | None = None
) -> FermihedralConfig:
    """A :class:`FermihedralConfig` built from a plain-data override object.

    ``data`` holds a subset of :data:`CONFIG_SPEC_KEYS`; unspecified
    fields keep the values of ``base`` (the batch or service default
    config).  Unknown keys are rejected — a silently ignored typo in a
    job submission would compile the wrong instance.
    """
    base = base or FermihedralConfig()
    if not isinstance(data, dict):
        raise ValueError(f"'config' must be a JSON object, got {data!r}")
    unknown = sorted(set(data) - set(CONFIG_SPEC_KEYS))
    if unknown:
        raise ValueError(
            f"unknown config field(s) {', '.join(unknown)}; "
            f"expected a subset of {CONFIG_SPEC_KEYS}"
        )
    for name in ("budget_s", "max_conflicts", "deadline_s"):
        value = data.get(name)
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{name!r} must be a number, got {value!r}")
    if data.get("max_conflicts") is not None:
        data = {**data, "max_conflicts": int(data["max_conflicts"])}
    budget = base.budget
    if "budget_s" in data or "max_conflicts" in data:
        budget = SolverBudget(
            max_conflicts=data.get("max_conflicts", budget.max_conflicts),
            time_budget_s=data.get("budget_s", budget.time_budget_s),
        )
    return dataclasses.replace(
        base,
        algebraic_independence=bool(
            data.get("algebraic_independence", base.algebraic_independence)
        ),
        vacuum_preservation=bool(
            data.get("vacuum_preservation", base.vacuum_preservation)
        ),
        exact_vacuum=bool(data.get("exact_vacuum", base.exact_vacuum)),
        strategy=data.get("strategy", base.strategy),
        budget=budget,
        proof=bool(data.get("proof", base.proof)),
        deadline_s=data.get("deadline_s", base.deadline_s),
    )


def _spec_int(value, name: str) -> int:
    """Coerce a spec field to int, folding type errors into ValueError
    so every malformed spec surfaces the same way (HTTP 400)."""
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name!r} must be an integer, got {value!r}") from None


def job_from_spec(
    spec: dict,
    default_method: str = METHOD_FULL_SAT,
    default_device=None,
    base_config: FermihedralConfig | None = None,
    strict: bool = False,
) -> CompileJob:
    """Build a :class:`CompileJob` from one plain-data job description.

    The single spec grammar behind ``repro batch`` job files, repeated
    ``--model`` flags, and the service's ``POST /jobs`` body: a JSON
    object with ``model`` *or* ``modes``, plus optional ``method``,
    ``seed``, ``label``, ``device``, and a ``config`` override object
    (see :func:`config_from_spec`).

    Args:
        spec: the job description.
        default_method: method for specs that carry none (any spelling
            in :data:`METHOD_SPELLINGS`).
        default_device: device for specs without a ``device`` field; a
            spec's explicit ``"device": null`` still means device-free.
        base_config: config that a spec's ``config`` object overrides;
            specs without one get ``config=None`` (the batch/service
            default applies).
        strict: reject unknown spec fields — the service API turns this
            on so a typoed field is a 400, not a silently different job.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"each job must be a JSON object, got {spec!r}")
    if strict:
        unknown = sorted(set(spec) - set(JOB_SPEC_KEYS))
        if unknown:
            raise ValueError(
                f"unknown job field(s) {', '.join(unknown)}; "
                f"expected a subset of {JOB_SPEC_KEYS}"
            )
    method_name = spec.get("method") or default_method
    if not isinstance(method_name, str):
        raise ValueError(f"'method' must be a string, got {method_name!r}")
    method = METHOD_SPELLINGS.get(method_name)
    if method is None:
        raise ValueError(
            f"unknown method {method_name!r}; expected one of "
            f"{sorted(METHOD_SPELLINGS)}"
        )
    model = spec.get("model")
    if model is not None and not isinstance(model, str):
        raise ValueError(f"'model' must be a spec string, got {model!r}")
    label = spec.get("label", model)
    if label is not None and not isinstance(label, str):
        raise ValueError(f"'label' must be a string, got {label!r}")
    device = spec.get("device", default_device)
    if device is not None and not isinstance(device, (str, DeviceTopology)):
        raise ValueError(f"'device' must be a device name, got {device!r}")
    modes = spec.get("modes")
    if model is not None and method != METHOD_INDEPENDENT:
        hamiltonian, num_modes = parse_model(model), None
    elif model is not None:
        raise ValueError("independent jobs take 'modes', not 'model'")
    elif modes is not None:
        if method != METHOD_INDEPENDENT:
            raise ValueError(f"method {method_name!r} needs a 'model'")
        hamiltonian, num_modes = None, _spec_int(modes, "modes")
    else:
        raise ValueError("each job needs a 'model' or 'modes' field")
    config = None
    if spec.get("config") is not None:
        config = config_from_spec(spec["config"], base_config)
    return CompileJob(
        method=method,
        hamiltonian=hamiltonian,
        num_modes=num_modes,
        config=config,
        schedule=None,
        seed=_spec_int(spec.get("seed", 2024), "seed"),
        label=label,
        device=device,
    )


# repro-lint: worker-shipped
@dataclass(frozen=True)
class CompileJob:
    """One unit of batch work.

    Either a Hamiltonian-dependent job (``hamiltonian`` set, ``num_modes``
    inferred) or a Hamiltonian-independent one (``num_modes`` set).

    Attributes:
        method: one of :data:`repro.core.config.COMPILE_METHODS`.
        hamiltonian: target Hamiltonian for the dependent methods.
        num_modes: mode count for the ``independent`` method.
        config: per-job config override (falls back to the batch default).
        schedule: annealing schedule (``sat+annealing`` only).
        seed: annealing RNG seed (``sat+annealing`` only).
        label: display name for reports; defaults to the Hamiltonian name
            or ``"<N> modes"``.
        device: target topology name (or
            :class:`~repro.hardware.topology.DeviceTopology`) for a
            hardware-aware job; ``None`` compiles device-free.
    """

    method: str = METHOD_INDEPENDENT
    hamiltonian: FermionicHamiltonian | None = None
    num_modes: int | None = None
    config: FermihedralConfig | None = None
    schedule: AnnealingSchedule | None = None
    seed: int = 2024
    label: str | None = None
    device: "str | DeviceTopology | None" = None

    def __post_init__(self):
        if self.method not in COMPILE_METHODS:
            raise ValueError(
                f"unknown compile method {self.method!r}; "
                f"expected one of {COMPILE_METHODS}"
            )
        if self.method == METHOD_INDEPENDENT:
            if self.hamiltonian is not None:
                raise ValueError("independent jobs take no Hamiltonian")
            if self.num_modes is None:
                raise ValueError("independent jobs need num_modes")
        else:
            if self.hamiltonian is None:
                raise ValueError(f"{self.method!r} jobs need a Hamiltonian")
            if (
                self.num_modes is not None
                and self.num_modes != self.hamiltonian.num_modes
            ):
                raise ValueError(
                    f"num_modes={self.num_modes} contradicts the Hamiltonian's "
                    f"{self.hamiltonian.num_modes} modes"
                )

    @property
    def modes(self) -> int:
        """The job's mode count, however it was specified."""
        if self.hamiltonian is not None:
            return self.hamiltonian.num_modes
        return self.num_modes

    @property
    def display(self) -> str:
        """Human-readable job name for batch reports."""
        if self.label:
            return self.label
        if self.hamiltonian is not None:
            return self.hamiltonian.name
        return f"{self.num_modes} modes"


@dataclass
class JobOutcome:
    """The per-job row of a :class:`BatchReport`.

    ``cache_error`` is set when the compilation succeeded but persisting
    it did not (unwritable or vanished cache directory) — the job is
    *not* an error in that case; the result is simply not memoized.

    ``telemetry`` carries a cross-process relay payload (the worker-side
    ``Telemetry.drain_relay()`` dict) when the job ran in a worker process
    with telemetry enabled; in-process executions leave it ``None``
    because they record straight into the parent handle.

    ``forensics`` is the flight-recorder dump assembled at failure time
    (recent breadcrumbs, open spans, a metrics snapshot, the formatted
    traceback) — ``None`` for successful jobs and for failures that ran
    without telemetry.
    """

    job: CompileJob
    key: str
    status: str
    result: CompilationResult | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    cache_error: str | None = None
    telemetry: dict | None = None
    forensics: dict | None = None
    #: An ``error`` outcome that names infrastructure, not the job: the
    #: worker died or could not spawn, so the same job may well succeed on
    #: a fresh attempt.  The service daemon's supervised-retry policy
    #: requeues only these; deterministic failures (bad spec, solver
    #: exception) stay final.
    retryable: bool = False


@dataclass
class BatchReport:
    """Everything a batch run produced, in input job order."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def counts(self) -> dict[str, int]:
        """Jobs per status, statuses with zero jobs omitted."""
        tally: dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def ok(self) -> bool:
        return all(outcome.status != "error" for outcome in self.outcomes)

    def summary(self) -> str:
        """One-line roll-up, e.g. ``4 jobs: 2 compiled, 1 cache-hit, 1 deduplicated``."""
        parts = [
            f"{count} {status}"
            for status, count in sorted(self.counts.items())
        ]
        return f"{len(self.outcomes)} jobs: " + ", ".join(parts)


def compile_job_key(job: CompileJob, default_config: FermihedralConfig) -> str:
    """Fingerprint of one job under a batch/service default config.

    The single key computation shared by :class:`BatchCompiler`, the
    parallel executor's callers and the service daemon — all of them must
    agree with what :meth:`FermihedralCompiler.compile` would compute
    itself, or cache entries and dedup decisions would drift apart.
    """
    topology = resolve_device(job.device)
    config = job.config or default_config
    return compilation_key(
        num_modes=job.modes,
        config=hardware_config(config, topology, job.modes),
        hamiltonian=job.hamiltonian,
        method=job.method,
        schedule=job.schedule,
        seed=job.seed,
        device=topology,
    )


def run_compile_job(
    job: CompileJob,
    config: FermihedralConfig,
    cache: CompilationCache | None,
    key: str,
    telemetry=None,
) -> JobOutcome:
    """One cache-enabled compile, exceptions folded into an ``error`` outcome.

    The single execution body shared by the thread pool (cache object in
    hand), the process executor's workers (cache reopened by directory),
    and the service daemon's single-worker path, so none of them can
    drift in status mapping or error handling.  A cache-store failure
    (``store-failed``) keeps the job successful — the compiled result is
    returned with ``cache_error`` noting why it was not persisted.

    ``telemetry`` is handed to the compiler: spans and metrics from the
    descent land in that handle (in-process callers pass their own; the
    process executor's workers pass a fresh one and relay its contents
    back through :attr:`JobOutcome.telemetry`).  With telemetry on, a
    per-job :class:`~repro.telemetry.flight.FlightRecorder` additionally
    shadows the run, and a failing job returns its post-mortem dump in
    :attr:`JobOutcome.forensics`; progress events emitted anywhere below
    (descent rungs, solver heartbeats) are tagged with the job key.
    """
    started = time.monotonic()
    progress = getattr(telemetry, "progress", None)
    recorder = None
    if telemetry is not None:
        recorder = FlightRecorder()
        telemetry.flight = recorder
        if progress is not None:
            progress.add_sink(recorder.watch)
        recorder.record("info", "job started", job=key, label=job.display)
    job_context = (progress.context(job=key, label=job.display)
                   if progress is not None else nullcontext())
    try:
        with job_context:
            chaos.inject("job.run", telemetry=telemetry)
            chaos.legacy_job_fault(job.label, telemetry=telemetry)
            compiler = FermihedralCompiler(
                job.modes, config, cache=cache, device=job.device,
                telemetry=telemetry,
            )
            result = compiler.compile(
                method=job.method,
                hamiltonian=job.hamiltonian,
                schedule=job.schedule,
                seed=job.seed,
                cache_key=key,
            )
        status = {
            "hit": "cache-hit",
            "warm-start": "warm-start",
        }.get(compiler.last_cache_status, "compiled")
        if result.degraded and status != "cache-hit":
            status = "degraded"
        return JobOutcome(
            job=job,
            key=key,
            status=status,
            result=result,
            elapsed_s=time.monotonic() - started,
            cache_error=compiler.last_cache_error,
        )
    except Exception as error:  # surfaced per-job, batch keeps going
        outcome = JobOutcome(
            job=job,
            key=key,
            status="error",
            error=f"{type(error).__name__}: {error}",
            elapsed_s=time.monotonic() - started,
        )
        if recorder is not None:
            recorder.record("error", "job failed", job=key,
                            error=outcome.error)
            outcome.forensics = recorder.dump(telemetry, error=error)
        return outcome
    finally:
        # The thread path shares one telemetry handle across jobs — the
        # recorder and its sink must not outlive this job.
        if telemetry is not None:
            telemetry.flight = None
            if progress is not None:
                progress.remove_sink(recorder.watch)


class BatchCompiler:
    """Compile many jobs concurrently, deduplicating through the cache.

    Args:
        cache: shared persistent cache; ``None`` still deduplicates within
            the batch but persists nothing.
        max_workers: thread-pool size (default: executor's own default);
            only used when the batch runs on threads.
        default_config: config applied to jobs that carry none.
        jobs: worker-*process* count.  ``jobs > 1`` routes the unique jobs
            through :class:`repro.parallel.executor.ProcessBatchExecutor`
            instead of the thread pool; ``None`` falls back to
            ``default_config.jobs``.  Results are identical either way —
            same weights, same optimality proofs — the executors only
            change how fast they arrive.
        on_event: :mod:`repro.parallel.events` callback for live progress.
        telemetry: a :class:`repro.telemetry.Telemetry` handle shared by
            all jobs; worker processes relay their spans and metric
            deltas back into it (see
            :class:`repro.parallel.executor.ProcessBatchExecutor`).
    """

    def __init__(
        self,
        cache: CompilationCache | None = None,
        max_workers: int | None = None,
        default_config: FermihedralConfig | None = None,
        jobs: int | None = None,
        on_event=None,
        telemetry=None,
    ):
        self.cache = cache
        self.max_workers = max_workers
        self.default_config = default_config or FermihedralConfig()
        self.jobs = self.default_config.jobs if jobs is None else jobs
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1 process")
        self.on_event = on_event
        self.telemetry = telemetry

    def _emit(self, event) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def _job_config(self, job: CompileJob) -> FermihedralConfig:
        return job.config or self.default_config

    def _job_key(self, job: CompileJob) -> str:
        return compile_job_key(job, self.default_config)

    def _run_one(self, job: CompileJob, key: str) -> JobOutcome:
        return run_compile_job(
            job, self._job_config(job), self.cache, key, telemetry=self.telemetry
        )

    def _run_unique_threads(
        self, unique: list[tuple[str, CompileJob]]
    ) -> dict[str, JobOutcome]:
        """Legacy thread-pool execution of the deduplicated job list."""
        from repro.parallel.events import JobFinished, JobStarted

        total = len(unique)
        primary_outcomes: dict[str, JobOutcome] = {}
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {}
            for index, (key, job) in enumerate(unique):
                futures[pool.submit(self._run_one, job, key)] = (index, key, job)
                self._emit(JobStarted(index, total, job.display, key))
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    index, key, job = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as crash:  # defensive: keep the batch alive
                        outcome = JobOutcome(
                            job=job,
                            key=key,
                            status="error",
                            error=f"{type(crash).__name__}: {crash}",
                        )
                    primary_outcomes[key] = outcome
                    self._emit(JobFinished(
                        index, total, job.display, key, outcome.status,
                        outcome.elapsed_s,
                        weight=None if outcome.result is None
                        else outcome.result.weight,
                        error=outcome.error,
                    ))
        return primary_outcomes

    def _run_unique_processes(
        self, unique: list[tuple[str, CompileJob]]
    ) -> dict[str, JobOutcome]:
        """Process-pool execution (the ``jobs > 1`` path)."""
        from repro.parallel.executor import ProcessBatchExecutor

        executor = ProcessBatchExecutor(
            jobs=self.jobs,
            cache=self.cache,
            default_config=self.default_config,
            on_event=self.on_event,
            telemetry=self.telemetry,
        )
        return executor.run(unique)

    def compile(self, jobs: list[CompileJob]) -> BatchReport:
        """Run a job list; returns outcomes in the input order.

        Jobs sharing a fingerprint are compiled once: the first occurrence
        runs (``compiled`` / ``warm-start`` / ``cache-hit``), later ones
        report ``deduplicated`` and share its result object.
        """
        from repro.parallel.events import BatchFinished, BatchStarted

        started = time.monotonic()
        # Fingerprinting itself can fail per job (unknown device name, a
        # device smaller than the mode count); such jobs become error
        # outcomes instead of aborting the batch.
        keys: list[str | None] = []
        key_errors: dict[int, str] = {}
        for index, job in enumerate(jobs):
            try:
                keys.append(self._job_key(job))
            except Exception as error:
                keys.append(None)
                key_errors[index] = f"{type(error).__name__}: {error}"
        primary_index: dict[str, int] = {}
        for index, key in enumerate(keys):
            if key is not None:
                primary_index.setdefault(key, index)

        unique = [(keys[i], jobs[i]) for i in sorted(primary_index.values())]
        if self.jobs > 1:
            workers = self.jobs
        elif self.max_workers is not None:
            workers = self.max_workers
        else:
            # ThreadPoolExecutor's own default worker count
            workers = min(32, (os.cpu_count() or 1) + 4)
        self._emit(BatchStarted(
            total=len(jobs),
            unique=len(unique),
            deduplicated=len(jobs) - len(unique) - len(key_errors),
            workers=min(workers, max(len(unique), 1)),
        ))
        primary_outcomes: dict[str, JobOutcome] = {}
        if unique:
            if self.jobs > 1:
                primary_outcomes = self._run_unique_processes(unique)
            else:
                primary_outcomes = self._run_unique_threads(unique)

        outcomes: list[JobOutcome] = []
        for index, (job, key) in enumerate(zip(jobs, keys)):
            if key is None:
                outcomes.append(
                    JobOutcome(job=job, key="", status="error",
                               error=key_errors[index])
                )
                continue
            primary = primary_outcomes[key]
            if index == primary_index[key]:
                outcomes.append(primary)
            elif primary.status == "error":
                outcomes.append(
                    JobOutcome(job=job, key=key, status="error", error=primary.error)
                )
            else:
                outcomes.append(
                    JobOutcome(
                        job=job, key=key, status="deduplicated", result=primary.result
                    )
                )
        report = BatchReport(outcomes=outcomes, elapsed_s=time.monotonic() - started)
        self._emit(BatchFinished(
            total=len(outcomes), elapsed_s=report.elapsed_s, counts=report.counts
        ))
        return report
