"""Persistent compilation store: fingerprints, on-disk cache, batch compile.

The SAT descent is expensive but deterministic, and its product — an
optimal encoding plus its provenance — is a small JSON document.  This
package turns that asymmetry into a subsystem:

* :mod:`repro.store.fingerprint` — stable content keys for compilation
  jobs (``(num_modes, config, canonical Hamiltonian support, method)``).
* :mod:`repro.store.cache` — :class:`CompilationCache`, a content-addressed
  on-disk memo of full :class:`~repro.core.pipeline.CompilationResult`s
  with hit / warm-start / corrupted-entry handling.
* :mod:`repro.store.batch` — :class:`BatchCompiler`, a concurrent
  front-end that deduplicates a job list through the cache and fans the
  unique jobs across threads or worker processes
  (:mod:`repro.parallel.executor`).

See ``docs/ARCHITECTURE.md`` for the fingerprint and schema design.
"""

from repro.store.batch import (
    CONFIG_SPEC_KEYS,
    JOB_SPEC_KEYS,
    JOB_STATUSES,
    METHOD_SPELLINGS,
    BatchCompiler,
    BatchReport,
    CompileJob,
    JobOutcome,
    config_from_spec,
    job_from_spec,
)
from repro.store.cache import (
    CacheEntryInfo,
    CacheStats,
    CompilationCache,
    GcReport,
    default_cache_dir,
)
from repro.store.fingerprint import (
    FINGERPRINT_VERSION,
    canonical_config,
    canonical_hamiltonian,
    compilation_key,
    job_payload,
)

__all__ = [
    "BatchCompiler",
    "BatchReport",
    "CONFIG_SPEC_KEYS",
    "CacheEntryInfo",
    "CacheStats",
    "CompilationCache",
    "CompileJob",
    "FINGERPRINT_VERSION",
    "GcReport",
    "JOB_SPEC_KEYS",
    "JOB_STATUSES",
    "JobOutcome",
    "METHOD_SPELLINGS",
    "canonical_config",
    "canonical_hamiltonian",
    "compilation_key",
    "config_from_spec",
    "default_cache_dir",
    "job_from_spec",
    "job_payload",
]
