"""Stable content fingerprints for compilation jobs.

The SAT descent is fully deterministic given ``(num_modes, config,
Hamiltonian, method)`` — and, for the annealing method, the cooling
schedule and RNG seed.  A compilation cache therefore needs exactly one
thing from this module: a collision-resistant key that is *identical*
for equivalent jobs and *different* for jobs that could produce different
results.

Canonicalization choices:

* **Hamiltonians** fingerprint as their sorted set of canonical Majorana
  support monomials, not their coefficients.  Every weight objective in
  the compiler (SAT indicators, annealing energy) depends only on *which*
  monomials appear — two Hamiltonians with the same support (e.g. H2 at
  two bond lengths) compile to the same encoding, and the cache treats
  them as the same job.
* **Configs** fingerprint field-by-field, budgets included: a
  budget-starved run may legitimately return a different (unproved)
  result than a generous one.
* **Devices** fingerprint by *shape* — qubit count plus the canonical
  edge list — not by display name: routing and the connectivity-weighted
  objective see only the coupling graph, so two names for the same graph
  are the same job, while any topological difference (the thing that can
  change routed cost) produces a distinct key.
* The payload is serialized as minified, key-sorted JSON and hashed with
  SHA-256; the hex digest is the cache key.  ``FINGERPRINT_VERSION`` is
  part of the payload, so any future canonicalization change invalidates
  old keys instead of silently colliding with them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.core.config import (
    COMPILE_METHODS,
    EXECUTION_ONLY_FIELDS,
    METHOD_ANNEALING,
    AnnealingSchedule,
    FermihedralConfig,
)
from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.hardware.topology import DeviceTopology

#: v2 added the ``device`` entry (hardware-aware compilation).
FINGERPRINT_VERSION = 2


def canonical_config(config: FermihedralConfig) -> dict:
    """Plain-data form of a config, stable across sessions.

    Derived field-by-field from the dataclass so a future config field
    changes the fingerprint automatically (fails closed) instead of
    silently colliding with pre-existing keys.  Execution-strategy fields
    (:data:`repro.core.config.EXECUTION_ONLY_FIELDS` — incremental,
    portfolio, jobs) are excluded: they decide *how* a job is solved, not
    *what* it computes.  Any of several equally-optimal encodings may come
    back, but the achieved weight and optimality proof are invariant, which
    is the identity the cache promises — and serial / incremental /
    portfolio / multi-process runs of one job must share an entry.
    """
    data = dataclasses.asdict(config)
    for name in EXECUTION_ONLY_FIELDS:
        data.pop(name, None)
    return data


def canonical_hamiltonian(hamiltonian: FermionicHamiltonian) -> list[list[int]]:
    """Sorted support monomials — all the compiler ever reads of a Hamiltonian."""
    return sorted([list(monomial) for monomial in hamiltonian.monomials])


def canonical_device(topology: DeviceTopology) -> dict:
    """Plain-data shape of a device: qubit count + canonical edge list.

    Deliberately name-free (see the module docstring) — the graph is the
    only thing routing and the weighted objective consume.
    """
    return {
        "num_qubits": topology.num_qubits,
        "edges": [list(edge) for edge in topology.edges],
    }


def canonical_schedule(schedule: AnnealingSchedule) -> dict:
    """Plain-data form of an annealing schedule."""
    return {
        "initial_temperature": schedule.initial_temperature,
        "final_temperature": schedule.final_temperature,
        "temperature_step": schedule.temperature_step,
        "iterations_per_step": schedule.iterations_per_step,
        "boltzmann_constant": schedule.boltzmann_constant,
    }


def job_payload(
    num_modes: int,
    config: FermihedralConfig,
    hamiltonian: FermionicHamiltonian | None = None,
    method: str = "independent",
    schedule: AnnealingSchedule | None = None,
    seed: int | None = None,
    device: DeviceTopology | None = None,
) -> dict:
    """The canonical, JSON-serializable identity of one compilation job.

    Args:
        num_modes: number of fermionic modes.
        config: full compiler configuration (budget included).
        hamiltonian: target Hamiltonian for the dependent methods; must be
            ``None`` for the ``independent`` method.
        method: one of :data:`repro.core.config.COMPILE_METHODS`.
        schedule: annealing schedule; only fingerprinted for the
            ``sat+annealing`` method (defaults applied there).
        seed: annealing RNG seed; only fingerprinted for ``sat+annealing``.
        device: target topology for hardware-aware jobs; two jobs that
            differ only in device shape never share a key.
    """
    if method not in COMPILE_METHODS:
        raise ValueError(
            f"unknown compile method {method!r}; expected one of {COMPILE_METHODS}"
        )
    payload: dict = {
        "fingerprint_version": FINGERPRINT_VERSION,
        "num_modes": num_modes,
        "method": method,
        "config": canonical_config(config),
        "hamiltonian": (
            None if hamiltonian is None else canonical_hamiltonian(hamiltonian)
        ),
        "annealing": None,
        "device": None if device is None else canonical_device(device),
    }
    if method == METHOD_ANNEALING:
        payload["annealing"] = {
            "schedule": canonical_schedule(schedule or AnnealingSchedule()),
            "seed": seed if seed is not None else 2024,
        }
    return payload


def compilation_key(
    num_modes: int,
    config: FermihedralConfig,
    hamiltonian: FermionicHamiltonian | None = None,
    method: str = "independent",
    schedule: AnnealingSchedule | None = None,
    seed: int | None = None,
    device: DeviceTopology | None = None,
) -> str:
    """SHA-256 hex key identifying one compilation job (see module docs)."""
    payload = job_payload(
        num_modes, config, hamiltonian, method, schedule, seed, device
    )
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
