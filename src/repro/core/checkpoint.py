"""Descent checkpoint/resume: rung progress persisted through a sink.

A weight descent is a ladder of independent SAT calls, which makes it
naturally checkpointable: after each completed rung the whole useful
state is "best encoding so far, the bound being chased next, and the
stats of the rungs already climbed".  :func:`repro.core.descent.descend`
serializes exactly that into a :class:`DescentCheckpoint` after every
rung and hands it to a :class:`CheckpointSink`; when a worker is killed
mid-descent, the retry loads the checkpoint and resumes at the last
completed rung instead of re-proving every bound from the baseline.

Persistence is **best-effort by contract**: a sink that cannot write
(disk full, chaos-injected fault) reports failure and the descent keeps
solving — losing a checkpoint costs retry time, never correctness.
Loading is equally defensive: any unreadable, version-skewed or
mismatched checkpoint is treated as absent (a cold start).

The production sink (:class:`CacheCheckpointSink`) stores checkpoints in
the compilation cache's content-addressed tree under ``checkpoints/``,
keyed by the job fingerprint — the same identity the daemon requeues a
crashed job under, so a retried attempt finds its predecessor's progress
with no extra coordination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.encodings.base import MajoranaEncoding
    from repro.store.cache import CompilationCache

_CHECKPOINT_FORMAT_VERSION = 1


@dataclass
class DescentCheckpoint:
    """Resumable state of one weight descent, captured between rungs.

    ``encoding`` is the best model so far in the standard encoding-schema
    dict (:func:`repro.encodings.serialization.encoding_to_dict`);
    ``steps`` are the completed rungs in result-schema step dicts.  For
    the linear strategy ``next_bound`` is the bound the descent was about
    to chase; for bisection, ``lower``/``upper`` carry the surviving
    search window (including UNSAT-proven lower-bound raises, which a
    cache warm start alone would lose).
    """

    strategy: str
    next_bound: int
    encoding: dict
    weight: int
    steps: list = field(default_factory=list)
    lower: int | None = None
    upper: int | None = None
    solve_time_s: float = 0.0
    repairs: int = 0
    created_at: float = 0.0

    def to_dict(self) -> dict:
        return {
            "checkpoint_format_version": _CHECKPOINT_FORMAT_VERSION,
            "strategy": self.strategy,
            "next_bound": self.next_bound,
            "encoding": self.encoding,
            "weight": self.weight,
            "steps": list(self.steps),
            "lower": self.lower,
            "upper": self.upper,
            "solve_time_s": self.solve_time_s,
            "repairs": self.repairs,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DescentCheckpoint":
        version = data.get("checkpoint_format_version")
        if version != _CHECKPOINT_FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version: {version!r}")
        return cls(
            strategy=data["strategy"],
            next_bound=data["next_bound"],
            encoding=data["encoding"],
            weight=data["weight"],
            steps=list(data.get("steps", [])),
            lower=data.get("lower"),
            upper=data.get("upper"),
            solve_time_s=data.get("solve_time_s", 0.0),
            repairs=data.get("repairs", 0),
            created_at=data.get("created_at", 0.0),
        )

    def decode_encoding(self, num_modes: int) -> "MajoranaEncoding | None":
        """The checkpointed best encoding, or ``None`` when it does not
        decode to a valid encoding of ``num_modes`` modes (a checkpoint
        that fails its own consistency check is worthless — cold-start)."""
        from repro.encodings.serialization import encoding_from_dict

        try:
            encoding = encoding_from_dict(self.encoding, validate=True)
        except Exception:
            return None
        return encoding if encoding.num_modes == num_modes else None

    def decode_steps(self) -> list:
        """The completed rungs as :class:`~repro.core.descent.DescentStep`."""
        from repro.encodings.serialization import step_from_dict

        return [step_from_dict(step) for step in self.steps]


class CheckpointSink:
    """Where a descent persists its progress.  The base class is inert —
    a descent run without resilience wiring checkpoints nowhere."""

    def load(self) -> DescentCheckpoint | None:
        return None

    def save(self, checkpoint: DescentCheckpoint) -> bool:
        """Persist; returns ``False`` (never raises) when the write failed."""
        return False

    def clear(self) -> None:
        pass


class MemoryCheckpointSink(CheckpointSink):
    """In-process sink for tests: keeps the latest checkpoint and the
    full save history, so crash-resume tests can replay any rung k."""

    def __init__(self, checkpoint: DescentCheckpoint | None = None):
        self.checkpoint = checkpoint
        self.history: list[DescentCheckpoint] = []
        self.cleared = 0

    def load(self) -> DescentCheckpoint | None:
        return self.checkpoint

    def save(self, checkpoint: DescentCheckpoint) -> bool:
        self.checkpoint = checkpoint
        self.history.append(DescentCheckpoint.from_dict(checkpoint.to_dict()))
        return True

    def clear(self) -> None:
        self.checkpoint = None
        self.cleared += 1


class CacheCheckpointSink(CheckpointSink):
    """Checkpoints in the compilation cache, keyed by job fingerprint.

    Saves swallow ``OSError`` (real or chaos-injected) into a ``False``
    return plus a ``repro_checkpoint_failures_total`` counter — a descent
    must outlive its checkpoint store.
    """

    def __init__(self, cache: "CompilationCache", key: str, telemetry=None):
        self.cache = cache
        self.key = key
        self.telemetry = telemetry

    def load(self) -> DescentCheckpoint | None:
        data = self.cache.get_checkpoint(self.key)
        if data is None:
            return None
        try:
            return DescentCheckpoint.from_dict(data)
        except (ValueError, KeyError, TypeError):
            return None

    def save(self, checkpoint: DescentCheckpoint) -> bool:
        try:
            self.cache.put_checkpoint(self.key, checkpoint.to_dict())
        except OSError:
            if self.telemetry is not None:
                self.telemetry.counter(
                    "repro_checkpoint_failures_total",
                    "descent checkpoint writes that failed (best-effort)",
                ).inc()
            return False
        if self.telemetry is not None:
            self.telemetry.counter(
                "repro_checkpoint_writes_total", "descent checkpoints persisted"
            ).inc()
        return True

    def clear(self) -> None:
        self.cache.clear_checkpoint(self.key)
