"""Simulated-annealing pairing optimization (the paper's Algorithm 2).

Encoding the Hamiltonian-dependent weight in SAT blows up with the term
count, so the Section 4.2 strategy first solves the cheap Hamiltonian-
independent problem and then searches over the *assignment* of Majorana
pairs to modes: swapping the pairs of modes ``x`` and ``y`` changes which
strings each Hamiltonian monomial multiplies together, and therefore the
encoded weight, without touching any validity constraint.

Energy is the Hamiltonian Pauli weight; moves are pair swaps; acceptance
is Metropolis with the paper's linear cooling schedule.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.config import AnnealingSchedule
from repro.encodings.base import MajoranaEncoding
from repro.fermion.hamiltonians import FermionicHamiltonian


@dataclass
class AnnealingResult:
    """Outcome of Algorithm 2."""

    encoding: MajoranaEncoding
    weight: int
    initial_weight: int
    mode_order: list[int]
    accepted_moves: int = 0
    attempted_moves: int = 0
    history: list[int] = field(default_factory=list)


def _pair_weight_table(encoding: MajoranaEncoding) -> list[tuple[int, int]]:
    """Per-string ``(x_mask, z_mask)`` for fast monomial-product weights."""
    return [(string.x_mask, string.z_mask) for string in encoding.strings]


def _monomial_weight(
    monomial: tuple[int, ...],
    order: list[int],
    masks: list[tuple[int, int]],
) -> int:
    """Weight of a Majorana monomial's image under a mode permutation.

    Role index ``2j + b`` reads the string of pair ``order[j]``; the image
    string's masks are XORs of member masks, and its weight is the popcount
    of their union.
    """
    x_acc = 0
    z_acc = 0
    for role in monomial:
        mode, parity = divmod(role, 2)
        x_mask, z_mask = masks[2 * order[mode] + parity]
        x_acc ^= x_mask
        z_acc ^= z_mask
    return (x_acc | z_acc).bit_count()


def hamiltonian_weight_under_order(
    encoding: MajoranaEncoding,
    hamiltonian: FermionicHamiltonian,
    order: list[int],
) -> int:
    """Total encoded-Hamiltonian weight for a given mode permutation."""
    masks = _pair_weight_table(encoding)
    return sum(
        _monomial_weight(monomial, order, masks) for monomial in hamiltonian.monomials
    )


def anneal_pairing(
    encoding: MajoranaEncoding,
    hamiltonian: FermionicHamiltonian,
    schedule: AnnealingSchedule | None = None,
    seed: int = 2024,
) -> AnnealingResult:
    """Run Algorithm 2: optimize the Majorana-pair-to-mode assignment.

    Args:
        encoding: a valid encoding (typically the Hamiltonian-independent
            SAT optimum); never mutated.
        hamiltonian: the target Hamiltonian supplying the energy function.
        schedule: cooling parameters; paper-style linear schedule.
        seed: RNG seed for reproducible anneals.
    """
    if hamiltonian.num_modes != encoding.num_modes:
        raise ValueError("Hamiltonian and encoding mode counts differ")
    schedule = schedule or AnnealingSchedule()
    rng = random.Random(seed)

    num_modes = encoding.num_modes
    masks = _pair_weight_table(encoding)
    monomials = hamiltonian.monomials
    # Monomials touching a mode, for incremental re-evaluation after a swap.
    touching: list[list[int]] = [[] for _ in range(num_modes)]
    for index, monomial in enumerate(monomials):
        modes = {role // 2 for role in monomial}
        for mode in modes:
            touching[mode].append(index)

    order = list(range(num_modes))
    weights = [_monomial_weight(monomial, order, masks) for monomial in monomials]
    total = sum(weights)
    initial_weight = total
    best_total = total
    best_order = list(order)

    accepted = 0
    attempted = 0
    history = [total]

    for temperature in schedule.temperatures():
        for _ in range(schedule.iterations_per_step):
            if num_modes < 2:
                break
            x = rng.randrange(num_modes)
            y = rng.randrange(num_modes)
            if x == y:
                continue
            attempted += 1
            affected = set(touching[x]) | set(touching[y])
            order[x], order[y] = order[y], order[x]
            delta = 0
            updates: list[tuple[int, int]] = []
            for index in affected:
                new_weight = _monomial_weight(monomials[index], order, masks)
                delta += new_weight - weights[index]
                updates.append((index, new_weight))
            exponent = -(delta * schedule.boltzmann_constant) / max(temperature, 1e-12)
            if delta <= 0 or rng.random() < math.exp(exponent):
                accepted += 1
                total += delta
                for index, new_weight in updates:
                    weights[index] = new_weight
                if total < best_total:
                    best_total = total
                    best_order = list(order)
            else:
                order[x], order[y] = order[y], order[x]
        history.append(total)

    return AnnealingResult(
        encoding=encoding.with_mode_order(best_order),
        weight=best_total,
        initial_weight=initial_weight,
        mode_order=best_order,
        accepted_moves=accepted,
        attempted_moves=attempted,
        history=history,
    )
