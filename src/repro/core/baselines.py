"""Baseline selection for the descent start point.

Algorithm 1 needs an initial feasible bound "close enough to the minimum
weight to reduce the solving time" (Section 3.6 — the paper seeds from
Bravyi-Kitaev).  This module generalizes that: try every constructive
baseline that satisfies the configured constraint set, optionally improve
its pairing with a quick anneal for Hamiltonian-dependent objectives, and
return the lightest.  A tighter start is strictly better: it can only
shrink the number of SAT calls and improve budget-limited results.

Note the constraint filter: the ternary tree does not preserve the vacuum
state, so when ``config.vacuum_preservation`` is on, it must not be used —
otherwise an UNSAT answer at ``bound = weight(TT) - 1`` would wrongly
return a non-vacuum-preserving encoding as "the optimum".
"""

from __future__ import annotations

from repro.core.annealing import anneal_pairing
from repro.core.config import AnnealingSchedule, FermihedralConfig
from repro.encodings.base import MajoranaEncoding
from repro.encodings.bravyi_kitaev import bravyi_kitaev
from repro.encodings.jordan_wigner import jordan_wigner
from repro.encodings.parity import parity_encoding
from repro.encodings.ternary_tree import ternary_tree
from repro.fermion.hamiltonians import FermionicHamiltonian

#: A fast cooling schedule for baseline-pairing improvement.
_QUICK_SCHEDULE = AnnealingSchedule(
    initial_temperature=2.0,
    final_temperature=0.1,
    temperature_step=0.2,
    iterations_per_step=40,
)


def candidate_baselines(
    num_modes: int, require_vacuum: bool
) -> list[MajoranaEncoding]:
    """All constructive encodings compatible with the constraint set."""
    candidates = [
        jordan_wigner(num_modes),
        bravyi_kitaev(num_modes),
        parity_encoding(num_modes),
    ]
    tree = ternary_tree(num_modes)
    if not require_vacuum or tree.preserves_vacuum():
        candidates.append(tree)
    return candidates


def best_baseline(
    num_modes: int,
    config: FermihedralConfig,
    hamiltonian: FermionicHamiltonian | None = None,
    seed: int = 7,
) -> MajoranaEncoding:
    """The lightest admissible baseline for the given objective.

    Hamiltonian-independent: argmin of summed Majorana weight.
    Hamiltonian-dependent: argmin of encoded weight after a quick
    pairing anneal of each candidate.

    When the config carries a connectivity-weighted objective
    (``qubit_weights``), candidates are compared by that weighted measure
    — the same quantity the descent's starting bound is taken from — so
    the seed is tight for the objective actually being optimized.
    """
    from repro.core.descent import measured_weight

    candidates = candidate_baselines(num_modes, config.vacuum_preservation)
    if hamiltonian is None:
        return min(
            candidates,
            key=lambda encoding: measured_weight(
                encoding, qubit_weights=config.qubit_weights
            ),
        )
    best: MajoranaEncoding | None = None
    best_weight = None
    for candidate in candidates:
        annealed = anneal_pairing(
            candidate, hamiltonian, schedule=_QUICK_SCHEDULE, seed=seed
        )
        weight = measured_weight(
            annealed.encoding, hamiltonian, config.qubit_weights
        )
        if best_weight is None or weight < best_weight:
            best_weight = weight
            best = annealed.encoding
    return best
