"""Weight-descent optimization loops (the paper's Algorithm 1 and a
bisection variant).

A SAT solver only answers decision questions, so the minimal-weight
encoding is found by iterated bound tightening.  Two strategies:

* **linear** (the paper's Algorithm 1): ask for strictly better than the
  best model so far, re-measure, repeat until UNSAT (optimum proved) or
  budget exhaustion (best-so-far returned).
* **bisection** (ablation, see DESIGN.md): binary-search between a
  structural lower bound (every string / encoded monomial weighs at least
  one) and the best model found.  Fewer SAT calls when the baseline starts
  far above the optimum; each call may be harder.

Either strategy runs on one of two engines.  The default incremental
engine builds the CNF and a shared cardinality ladder once and answers
each bound with a one-literal assumption on a persistent solver (learned
clauses survive between rungs); ``config.incremental = False`` restores
the cold-start loop that rebuilds the instance per bound, and
``config.portfolio > 1`` races the persistent instance across
diversified worker processes.  The engines visit the same bound/status
trajectory and return the same optima.

In the w/o-Alg configuration (Section 4.1) each SAT model is additionally
rank-checked; the rare algebraically-dependent models (probability
``4^-N``) are excluded with a blocking clause and the bound is retried —
the "negligible failing probability" repair loop.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.core.checkpoint import CheckpointSink, DescentCheckpoint
from repro.core.config import FermihedralConfig
from repro.core.encoder import FermihedralEncoder
from repro.encodings.base import MajoranaEncoding
from repro.encodings.bravyi_kitaev import bravyi_kitaev
from repro.encodings.serialization import encoding_to_dict, step_to_dict
from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.paulis.symplectic import are_algebraically_independent
from repro.sat.solver import CdclSolver, SolverStats
from repro.telemetry.progress import RungEtaEstimator

LINEAR = "linear"
BISECTION = "bisection"

#: Sentinel for ``solve_at(time_budget_s=...)``: "use the config budget".
#: (``None`` is taken — it means unlimited.)
_USE_CONFIG = object()


def _span(telemetry, name: str, **attrs):
    """A telemetry span, or an inert context when telemetry is off."""
    if telemetry is None:
        return nullcontext({})
    return telemetry.span(name, **attrs)


@dataclass
class DescentStep:
    """One SAT call inside the descent loop.

    Carries the solver statistics of the (final) solver run at this bound
    — one :class:`~repro.sat.solver.SolverStats` — so ``repro solve
    --stats`` and the benchmarks can report search effort, not just wall
    time.
    """

    bound: int
    status: str
    achieved_weight: int | None
    elapsed_s: float
    stats: SolverStats = field(default_factory=SolverStats)
    repairs: int = 0

    @property
    def conflicts(self) -> int:
        return self.stats.conflicts

    @property
    def decisions(self) -> int:
        return self.stats.decisions

    @property
    def propagations(self) -> int:
        return self.stats.propagations

    @property
    def restarts(self) -> int:
        return self.stats.restarts


@dataclass
class DescentResult:
    """Outcome of a descent run."""

    encoding: MajoranaEncoding
    weight: int
    proved_optimal: bool
    steps: list[DescentStep] = field(default_factory=list)
    construct_time_s: float = 0.0
    solve_time_s: float = 0.0
    repairs: int = 0
    strategy: str = LINEAR
    #: One-time CNF simplification cost (0.0 when preprocessing is off or
    #: the engine is the cold loop, which never preprocesses).
    preprocess_time_s: float = 0.0
    #: DRAT certificate of the final UNSAT rung (``config.proof`` on and
    #: the descent reached an UNSAT answer); check it with
    #: :func:`repro.sat.drat.check_trace`.  ``None`` otherwise.
    proof_trace: "object | None" = None
    #: The wall-clock deadline (``config.deadline_s``) expired before the
    #: descent finished tightening: ``encoding`` is the best model found
    #: in time (never worse than the baseline) and ``target_bound`` is the
    #: bound still being chased when time ran out.
    degraded: bool = False
    target_bound: int | None = None
    #: This run warm-started from a persisted checkpoint left by an
    #: earlier (killed or interrupted) attempt; ``steps`` includes the
    #: prior attempt's completed rungs.
    resumed: bool = False

    @property
    def sat_calls(self) -> int:
        return len(self.steps)

    @property
    def total_conflicts(self) -> int:
        return sum(step.conflicts for step in self.steps)

    @property
    def total_decisions(self) -> int:
        return sum(step.decisions for step in self.steps)

    @property
    def total_propagations(self) -> int:
        return sum(step.propagations for step in self.steps)

    @property
    def total_restarts(self) -> int:
        return sum(step.restarts for step in self.steps)


def measured_weight(
    encoding: MajoranaEncoding,
    hamiltonian: FermionicHamiltonian | None = None,
    qubit_weights: tuple[int, ...] | None = None,
) -> int:
    """The descent objective value of an encoding.

    Uniform: summed Majorana weight, or the encoded-Hamiltonian weight.
    With ``qubit_weights`` (the connectivity-weighted objective), every
    non-identity position on qubit ``q`` contributes ``qubit_weights[q]``
    instead of 1 — exactly what the weighted SAT indicators count.
    """
    if qubit_weights is None:
        if hamiltonian is None:
            return encoding.total_majorana_weight
        return encoding.hamiltonian_pauli_weight(hamiltonian)
    if hamiltonian is None:
        return sum(
            qubit_weights[qubit]
            for string in encoding.strings
            for qubit in string.support
        )
    total = 0
    for monomial in hamiltonian.monomials:
        image, _ = encoding.monomial_image(monomial)
        total += sum(qubit_weights[qubit] for qubit in image.support)
    return total


def _structural_lower_bound(
    num_modes: int,
    hamiltonian: FermionicHamiltonian | None,
    qubit_weights: tuple[int, ...] | None = None,
) -> int:
    """A weight no valid encoding can beat: every Majorana string (or
    every encoded Hamiltonian monomial) is non-identity, so weighs at
    least 1 — or at least the cheapest qubit's multiplier when the
    objective is connectivity-weighted."""
    unit = 1 if qubit_weights is None else min(qubit_weights)
    if hamiltonian is None:
        return 2 * num_modes * unit
    return max(len(hamiltonian.monomials), 1) * unit


def build_base_formula(
    num_modes: int,
    config: FermihedralConfig,
    hamiltonian: FermionicHamiltonian | None = None,
) -> tuple[FermihedralEncoder, list[int]]:
    """Construct the weight-bound-free part of the SAT instance.

    Returns the encoder and the objective indicator literals; the descent
    loops copy the formula once per bound and append only the cardinality
    constraint.
    """
    encoder = FermihedralEncoder(num_modes)
    encoder.add_anticommutativity()
    if config.algebraic_independence:
        encoder.add_algebraic_independence()
    if config.vacuum_preservation:
        if config.exact_vacuum:
            encoder.add_exact_vacuum_preservation()
        else:
            encoder.add_vacuum_preservation()
    if hamiltonian is None:
        indicators = encoder.majorana_weight_indicators()
    else:
        indicators = encoder.hamiltonian_weight_indicators(hamiltonian)
    return encoder, indicators


def _step_from_result(
    bound: int, result, achieved_weight: int | None, repairs: int,
    status: str | None = None,
) -> DescentStep:
    """A :class:`DescentStep` carrying the solver statistics of ``result``."""
    return DescentStep(
        bound=bound,
        status=status or result.status,
        achieved_weight=achieved_weight,
        elapsed_s=result.elapsed_s,
        stats=result.stats,
        repairs=repairs,
    )


class _BoundSolver:
    """Answers "is there a valid encoding of weight <= bound?" with the
    w/o-Alg repair loop and warm-start phase bookkeeping.

    Cold-start variant: every bound rebuilds the CNF (base formula copy +
    a baked-in cardinality constraint) and a fresh solver.  Kept as the
    ``config.incremental = False`` fallback and as the reference the
    incremental engine is validated against.
    """

    def __init__(
        self,
        encoder: FermihedralEncoder,
        indicators: list[int],
        config: FermihedralConfig,
        hamiltonian: FermionicHamiltonian | None,
        phases: dict[int, bool] | None,
        telemetry=None,
    ):
        self.encoder = encoder
        self.indicators = indicators
        self.config = config
        self.hamiltonian = hamiltonian
        self.phases = phases
        self.telemetry = telemetry
        self.engine_name = "cold"
        self.blocking: list[list[int]] = []
        self.total_repairs = 0
        self.solve_time_s = 0.0
        self.last_unsat_trace = None

    def prepare(self, max_bound: int) -> None:
        """No setup needed: each bound builds its own instance."""

    def close(self) -> None:
        """No persistent resources to release."""

    def solve_at(
        self, bound: int, time_budget_s=_USE_CONFIG,
    ) -> tuple[DescentStep, MajoranaEncoding | None]:
        """One bound query; repairs dependent models until clean or capped.

        ``time_budget_s`` overrides the config's per-call budget for this
        rung (the descent passes the time left to its deadline).
        """
        if time_budget_s is _USE_CONFIG:
            time_budget_s = self.config.budget.time_budget_s
        working = self.encoder.formula.copy()
        for clause in self.blocking:
            working.add_clause(clause)
        base_formula, self.encoder.formula = self.encoder.formula, working
        self.encoder.add_weight_at_most(
            self.indicators, bound, qubit_weights=self.config.qubit_weights
        )
        self.encoder.formula = base_formula

        level_repairs = 0
        while True:
            log = None
            if self.config.proof:
                from repro.sat.drat import ProofLog

                log = ProofLog()
            solver = CdclSolver(working, seed_phases=self.phases, proof=log,
                                telemetry=self.telemetry)
            result = solver.solve(
                max_conflicts=self.config.budget.max_conflicts,
                time_budget_s=time_budget_s,
            )
            self.solve_time_s += result.elapsed_s

            if result.is_unsat or not result.is_sat:
                if result.is_unsat and log is not None:
                    from repro.sat.drat import build_trace

                    # The cold loop bakes the bound (and any blocking
                    # clauses) into ``working``, so the trace is
                    # self-contained with no assumptions.
                    self.last_unsat_trace = build_trace(
                        working, log, meta={"bound": bound, "engine": "cold"}
                    )
                return _step_from_result(bound, result, None, level_repairs), None

            candidate = self.encoder.decode(result.model)
            if not self.config.algebraic_independence and not (
                are_algebraically_independent(candidate.strings)
            ):
                level_repairs += 1
                self.total_repairs += 1
                clause = self.encoder.blocking_clause(result.model)
                self.blocking.append(clause)
                working.add_clause(clause)
                if level_repairs > self.config.max_repairs:
                    step = _step_from_result(bound, result, None, level_repairs,
                                             status="REPAIR-LIMIT")
                    return step, None
                continue

            if self.config.warm_start:
                self.phases = {
                    v: result.model[v] for v in self.encoder.all_string_variables()
                }
            achieved = measured_weight(
                candidate, self.hamiltonian, self.config.qubit_weights
            )
            return _step_from_result(bound, result, achieved, level_repairs), candidate


class _IncrementalBoundSolver:
    """Assumption-based incremental variant of :class:`_BoundSolver`.

    One persistent SAT instance answers every rung of the weight ladder:
    :meth:`prepare` installs a shared cardinality counter wide enough for
    the loosest bound the descent will ever ask about, and each
    :meth:`solve_at` call is then a single one-literal assumption against
    the same clause database.  Learned clauses, branching activities and
    saved phases all survive between bounds, so the ladder's later (and
    harder) rungs start from everything the earlier rungs discovered.
    Blocking clauses from the w/o-Alg repair loop are added to the live
    instance and persist for the rest of the descent, exactly like the
    cold-start loop's replayed ``blocking`` list.

    With ``config.preprocess`` (the default) the instance handed to the
    solver backend is first simplified by :func:`repro.sat.preprocess.
    preprocess` — encoding variables and ladder selectors frozen, so
    assumptions, repair blocking clauses and warm-start phases keep their
    meaning — and every SAT model is lifted back onto the original
    variables before decoding.  Preprocessing happens once per descent,
    ahead of solver construction, so a portfolio pays it once and every
    worker starts from the smaller formula.

    With ``config.portfolio > 1`` the persistent instance is raced by a
    deterministic portfolio of diversified worker processes
    (:class:`repro.parallel.portfolio.PortfolioSolver`) instead of a
    single in-process solver; both backends share the
    ``solve(assumptions=...)`` / ``add_clause`` / ``set_phases`` surface.
    """

    def __init__(
        self,
        encoder: FermihedralEncoder,
        indicators: list[int],
        config: FermihedralConfig,
        hamiltonian: FermionicHamiltonian | None,
        phases: dict[int, bool] | None,
        telemetry=None,
    ):
        self.encoder = encoder
        self.indicators = indicators
        self.config = config
        self.hamiltonian = hamiltonian
        self.phases = phases
        self.telemetry = telemetry
        self.engine_name = (
            "portfolio" if config.portfolio > 1 else "incremental"
        )
        self.total_repairs = 0
        self.solve_time_s = 0.0
        self.preprocess_time_s = 0.0
        self.last_unsat_trace = None
        self._selectors: list[int] | None = None
        self._reconstruct = None
        self._solver = None
        self._proof_log = None
        self._base_formula = None

    def prepare(self, max_bound: int) -> None:
        """Build the bound ladder and the persistent solver (idempotent).

        ``max_bound`` must be at least the largest bound any later
        :meth:`solve_at` call will request.
        """
        if self._selectors is not None:
            return
        self._selectors = self.encoder.weight_ladder(
            self.indicators, max(max_bound, 0), self.config.qubit_weights
        )
        formula = self.encoder.formula
        if self.config.proof:
            from repro.sat.drat import ProofLog

            # One log spans preprocessing and every solver call, and the
            # trace certifies the pre-simplification instance — the CNF a
            # reader can rebuild from the encoder's published constraints.
            self._proof_log = ProofLog()
            self._base_formula = formula
        if self.config.preprocess:
            from repro.sat.preprocess import preprocess

            # Everything the descent talks to the solver about afterwards
            # must survive simplification: the encoding bits (decode,
            # blocking clauses, warm-start phases) and the ladder
            # selectors (per-rung assumptions).
            frozen = set(self.encoder.all_string_variables())
            frozen.update(abs(selector) for selector in self._selectors)
            started = time.monotonic()
            simplified = preprocess(formula, frozen=frozen,
                                    proof=self._proof_log,
                                    telemetry=self.telemetry)
            self.preprocess_time_s = time.monotonic() - started
            self._reconstruct = simplified.reconstruct
            formula = simplified.formula
        if self.config.portfolio > 1:
            from repro.parallel.portfolio import PortfolioSolver

            self._solver = PortfolioSolver(
                formula,
                workers=self.config.portfolio,
                seed_phases=self.phases,
                proof=self._proof_log,
                telemetry=self.telemetry,
            )
        else:
            self._solver = CdclSolver(
                formula, seed_phases=self.phases, proof=self._proof_log,
                telemetry=self.telemetry,
            )

    def close(self) -> None:
        """Release the solver backend (portfolio worker processes)."""
        if self._solver is not None:
            closer = getattr(self._solver, "close", None)
            if closer is not None:
                closer()
            self._solver = None

    def solve_at(
        self, bound: int, time_budget_s=_USE_CONFIG,
    ) -> tuple[DescentStep, MajoranaEncoding | None]:
        """One bound query under a single ladder assumption.

        ``time_budget_s`` overrides the config's per-call budget for this
        rung (the descent passes the time left to its deadline).
        """
        if time_budget_s is _USE_CONFIG:
            time_budget_s = self.config.budget.time_budget_s
        if self._selectors is None:
            raise RuntimeError("prepare() must run before solve_at()")
        if bound >= len(self._selectors):
            raise RuntimeError(
                f"bound {bound} exceeds the prepared ladder "
                f"(max {len(self._selectors) - 1})"
            )
        selector = self._selectors[bound]

        level_repairs = 0
        while True:
            result = self._solver.solve(
                max_conflicts=self.config.budget.max_conflicts,
                time_budget_s=time_budget_s,
                assumptions=(selector,),
            )
            self.solve_time_s += result.elapsed_s

            if result.is_unsat or not result.is_sat:
                if result.is_unsat and self._proof_log is not None:
                    from repro.sat.drat import build_trace

                    # Overwritten on every UNSAT rung: the descent's
                    # optimality proof is always the *last* UNSAT answer
                    # (linear stops there; bisection's final raise of the
                    # lower bound is its last UNSAT too).
                    self.last_unsat_trace = build_trace(
                        self._base_formula,
                        self._proof_log,
                        assumptions=(selector,),
                        meta={"bound": bound, "engine": "incremental"},
                    )
                return _step_from_result(bound, result, None, level_repairs), None

            model = result.model
            if self._reconstruct is not None:
                # Lift the simplified-instance model back onto the original
                # variable pool (eliminated variables get consistent values)
                # before anything downstream reads it.
                model = self._reconstruct(model)
            candidate = self.encoder.decode(model)
            if not self.config.algebraic_independence and not (
                are_algebraically_independent(candidate.strings)
            ):
                level_repairs += 1
                self.total_repairs += 1
                self._solver.add_clause(self.encoder.blocking_clause(model))
                if level_repairs > self.config.max_repairs:
                    step = _step_from_result(bound, result, None, level_repairs,
                                             status="REPAIR-LIMIT")
                    return step, None
                continue

            if self.config.warm_start:
                self._solver.set_phases({
                    v: model[v] for v in self.encoder.all_string_variables()
                })
            achieved = measured_weight(
                candidate, self.hamiltonian, self.config.qubit_weights
            )
            return _step_from_result(bound, result, achieved, level_repairs), candidate


def descend(
    num_modes: int,
    config: FermihedralConfig | None = None,
    hamiltonian: FermionicHamiltonian | None = None,
    baseline: MajoranaEncoding | None = None,
    telemetry=None,
    checkpoint: "CheckpointSink | None" = None,
) -> DescentResult:
    """Run the configured descent strategy.

    Args:
        num_modes: number of fermionic modes ``N``.
        config: constraint/budget configuration (defaults to Full SAT,
            linear descent).
        hamiltonian: when given, optimize the Hamiltonian-dependent weight
            (Section 3.7); otherwise the Hamiltonian-independent objective.
        baseline: encoding supplying the starting bound and warm-start
            phases; defaults to Bravyi-Kitaev, as in the paper.
        telemetry: optional :class:`repro.telemetry.Telemetry`; wraps the
            run in a ``descent`` span with one ``descent.rung`` child per
            SAT call (bound + engine + status attrs) and threads through
            to the preprocessor and solver backends.
        checkpoint: optional :class:`repro.core.checkpoint.CheckpointSink`.
            When given, rung progress is persisted after every completed
            rung (best-effort — a failed save never stops the descent) and
            a checkpoint left by an earlier killed attempt is loaded
            first, so the run resumes at the last completed rung instead
            of the baseline.

    With ``config.deadline_s`` set, the whole run — construction,
    preprocessing and every rung — races one wall-clock deadline; on
    expiry the best encoding so far is returned with ``degraded=True``
    (graceful degradation, never an error) and the unresolved bound in
    ``target_bound``.
    """
    config = config or FermihedralConfig()
    if config.qubit_weights is not None and len(config.qubit_weights) != num_modes:
        raise ValueError(
            f"config.qubit_weights has {len(config.qubit_weights)} entries, "
            f"the job has {num_modes} modes"
        )
    baseline = baseline or bravyi_kitaev(num_modes)

    # The deadline clocks the whole descent; budget.time_budget_s limits
    # each SAT call separately.  Per rung, the effective budget is the
    # smaller of the two.
    deadline = None
    if config.deadline_s is not None:
        deadline = time.monotonic() + config.deadline_s

    resumed_cp = None
    prior_steps: list[DescentStep] = []
    prior_solve_time = 0.0
    prior_repairs = 0
    if checkpoint is not None:
        resumed_cp = checkpoint.load()
        if resumed_cp is not None and resumed_cp.strategy != config.strategy:
            resumed_cp = None  # different ladder shape: cold-start
        if resumed_cp is not None:
            restored = resumed_cp.decode_encoding(num_modes)
            if restored is None:
                resumed_cp = None  # unreadable checkpoint: cold-start
            else:
                baseline = restored
                try:
                    prior_steps = resumed_cp.decode_steps()
                except (ValueError, KeyError, TypeError):
                    prior_steps = []
                prior_solve_time = resumed_cp.solve_time_s
                prior_repairs = resumed_cp.repairs

    construct_start = time.monotonic()
    encoder, indicators = build_base_formula(num_modes, config, hamiltonian)
    construct_time = time.monotonic() - construct_start

    phases = encoder.encoding_assignment(baseline) if config.warm_start else None
    engine = (
        _IncrementalBoundSolver
        if (config.incremental or config.portfolio > 1)
        else _BoundSolver
    )
    bound_solver = engine(encoder, indicators, config, hamiltonian, phases,
                          telemetry=telemetry)

    best_encoding = baseline
    best_weight = measured_weight(baseline, hamiltonian, config.qubit_weights)
    steps: list[DescentStep] = list(prior_steps)
    proved_optimal = False
    deadline_hit = False
    target_bound: int | None = None

    progress = getattr(telemetry, "progress", None)
    eta = RungEtaEstimator()
    if progress is not None:
        progress.emit("descent", modes=num_modes, strategy=config.strategy,
                      engine=bound_solver.engine_name,
                      start_weight=best_weight)
        if resumed_cp is not None:
            progress.emit("descent.resume", weight=best_weight,
                          completed_rungs=len(prior_steps),
                          next_bound=resumed_cp.next_bound)
    if resumed_cp is not None and telemetry is not None:
        telemetry.counter(
            "repro_descent_resumes_total",
            "descents resumed from a persisted checkpoint",
        ).inc()

    def rung_budget() -> tuple[float | None, bool]:
        """Effective time budget of the next rung: ``(budget, expired)``."""
        budget_s = config.budget.time_budget_s
        if deadline is None:
            return budget_s, False
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return 0.0, True
        return (remaining if budget_s is None else min(budget_s, remaining)), False

    def save_checkpoint(next_bound: int, lower: int | None = None,
                        upper: int | None = None) -> None:
        if checkpoint is None:
            return
        checkpoint.save(DescentCheckpoint(
            strategy=config.strategy,
            next_bound=next_bound,
            encoding=encoding_to_dict(best_encoding),
            weight=best_weight,
            steps=[step_to_dict(step) for step in steps],
            lower=lower,
            upper=upper,
            solve_time_s=prior_solve_time + bound_solver.solve_time_s,
            repairs=prior_repairs + bound_solver.total_repairs,
            created_at=time.time(),
        ))

    # repro-lint: hot-path
    def solve_rung(bound: int, time_budget_s=_USE_CONFIG):
        with _span(telemetry, "descent.rung", bound=bound,
                   engine=bound_solver.engine_name) as attrs:
            if progress is not None:
                # Implicit fields for every heartbeat the solver emits
                # inside this rung: the current bound/engine, plus the
                # ladder's conflict estimate so the bus can derive an ETA
                # from the live conflict rate.
                with progress.context(
                        bound=bound, engine=bound_solver.engine_name,
                        expected_conflicts=eta.expected_conflicts()):
                    step, candidate = bound_solver.solve_at(bound, time_budget_s)
            else:
                step, candidate = bound_solver.solve_at(bound, time_budget_s)
            attrs.update(status=step.status, conflicts=step.conflicts)
            if progress is not None:
                eta.observe(step.conflicts)
                rate = (step.conflicts / step.elapsed_s
                        if step.elapsed_s > 0 else 0.0)
                progress.emit("rung", bound=bound,
                              engine=bound_solver.engine_name,
                              status=step.status, conflicts=step.conflicts,
                              conflicts_per_s=round(rate, 1),
                              elapsed_s=round(step.elapsed_s, 3))
            return step, candidate

    descent_span = _span(telemetry, "descent", modes=num_modes,
                         strategy=config.strategy,
                         engine=bound_solver.engine_name)
    with descent_span as descent_attrs:
        try:
            if config.strategy == BISECTION:
                lower = _structural_lower_bound(
                    num_modes, hamiltonian, config.qubit_weights
                )
                upper = best_weight  # best known achievable
                if config.start_weight is not None:
                    upper = min(upper, max(config.start_weight, lower))
                if resumed_cp is not None:
                    # Restore the surviving search window: SAT rungs shrank
                    # ``upper`` (the restored baseline already reflects
                    # that), UNSAT rungs raised ``lower`` — progress a
                    # cache warm start alone would lose.
                    if resumed_cp.lower is not None:
                        lower = max(lower, resumed_cp.lower)
                    if resumed_cp.upper is not None:
                        upper = min(upper, resumed_cp.upper)
                if lower < upper:
                    # Bounds move both ways inside [lower, upper); the ladder
                    # only needs to cover the loosest one.
                    with _span(telemetry, "descent.prepare"):
                        bound_solver.prepare(upper - 1)
                while lower < upper:
                    budget_s, expired = rung_budget()
                    bound = (lower + upper - 1) // 2
                    if expired:
                        deadline_hit, target_bound = True, bound
                        break
                    step, candidate = solve_rung(bound, budget_s)
                    steps.append(step)
                    if candidate is not None:
                        best_encoding = candidate
                        best_weight = step.achieved_weight
                        upper = step.achieved_weight
                    elif step.status == "UNSAT":
                        lower = bound + 1
                    else:
                        # Budget exhausted: cannot conclude.  Under a
                        # deadline this is degradation, not exhaustion.
                        if deadline is not None and time.monotonic() >= deadline:
                            deadline_hit, target_bound = True, bound
                        break
                    save_checkpoint(upper - 1, lower=lower, upper=upper)
                # Optimality needs the interval closed AND the returned
                # encoding sitting exactly on it: a start_weight clamped
                # below the true optimum can close [lower, upper] without
                # ever probing the range up to the baseline's weight — that
                # is exhaustion, not a proof.
                proved_optimal = (
                    lower == upper
                    and best_weight == upper
                    and (not steps or steps[-1].status in ("SAT", "UNSAT"))
                )
            else:
                next_bound = best_weight - 1
                if config.start_weight is not None:
                    next_bound = min(next_bound, config.start_weight)
                if resumed_cp is not None:
                    next_bound = min(next_bound, resumed_cp.next_bound)
                if next_bound >= 0:
                    with _span(telemetry, "descent.prepare"):
                        bound_solver.prepare(next_bound)  # bounds only tighten
                while next_bound >= 0:
                    budget_s, expired = rung_budget()
                    if expired:
                        deadline_hit, target_bound = True, next_bound
                        break
                    step, candidate = solve_rung(next_bound, budget_s)
                    steps.append(step)
                    if candidate is not None:
                        best_encoding = candidate
                        best_weight = step.achieved_weight
                        next_bound = step.achieved_weight - 1
                        save_checkpoint(next_bound)
                        continue
                    # UNSAT is a proof only when the failed bound sits
                    # directly below the returned weight; an UNSAT at a
                    # start_weight far under the baseline leaves the gap
                    # (bound, best_weight) unexplored.
                    proved_optimal = (
                        step.status == "UNSAT" and next_bound == best_weight - 1
                    )
                    if not proved_optimal and deadline is not None \
                            and time.monotonic() >= deadline:
                        deadline_hit, target_bound = True, next_bound
                    break
        finally:
            bound_solver.close()
        descent_attrs.update(weight=best_weight, proved_optimal=proved_optimal,
                             sat_calls=len(steps), degraded=deadline_hit)

    if deadline_hit:
        if progress is not None:
            progress.emit("descent.degraded", weight=best_weight,
                          target_bound=target_bound)
        if telemetry is not None:
            telemetry.counter(
                "repro_descent_degraded_total",
                "descents that returned best-so-far at their deadline",
            ).inc()
    elif proved_optimal and checkpoint is not None:
        # The optimum is proved (and will be cached as final): rung
        # progress has nothing left to resume.  Unproved returns keep
        # their checkpoint so a resubmission picks up the surviving
        # search state (bisection's raised lower bound in particular).
        checkpoint.clear()

    return DescentResult(
        encoding=best_encoding,
        weight=best_weight,
        proved_optimal=proved_optimal,
        steps=steps,
        construct_time_s=construct_time,
        solve_time_s=prior_solve_time + bound_solver.solve_time_s,
        repairs=prior_repairs + bound_solver.total_repairs,
        strategy=config.strategy,
        preprocess_time_s=getattr(bound_solver, "preprocess_time_s", 0.0),
        proof_trace=bound_solver.last_unsat_trace,
        degraded=deadline_hit,
        target_bound=target_bound,
        resumed=resumed_cp is not None,
    )
