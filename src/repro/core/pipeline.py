"""High-level compiler entry points — the paper's three configurations.

* :func:`solve_hamiltonian_independent` — minimize summed Majorana weight
  (Figures 6/7), with or without the algebraic-independence clauses.
* :func:`solve_full_sat` — "Full SAT": Hamiltonian-dependent weight encoded
  directly in the SAT objective (Tables 4/6, Figures 8-10).
* :func:`solve_sat_annealing` — "SAT + Anl.": Hamiltonian-independent SAT
  optimum, then simulated annealing over the pair-to-mode assignment
  (Tables 4/5).

:class:`FermihedralCompiler` bundles them behind one object for the
examples and benchmarks.  Constructed with a
:class:`repro.store.cache.CompilationCache`, it memoizes results on disk:

* **hit** — a cached result whose optimality was proved (or any cached
  ``sat+annealing`` result, which is deterministic for its seed) is
  returned as-is, performing zero SAT calls;
* **warm start** — a cached result that was *not* proved optimal seeds
  :func:`~repro.core.descent.descend`'s starting bound in place of the
  textbook baseline, so a rerun resumes tightening from where the last
  run stopped rather than from Bravyi-Kitaev;
* **miss** — a fresh compile, stored on completion.

**Hardware-aware mode.**  Constructed with a ``device`` (a
:class:`repro.hardware.topology.DeviceTopology` or a registry name such
as ``"grid-3x3"``), the compiler grounds the whole pipeline in that
device: the descent objective becomes the connectivity-weighted weight
(:func:`repro.hardware.cost.connectivity_weights` →
``FermihedralConfig.qubit_weights``), the SAT result competes against the
admissible textbook baselines on *routed* two-qubit gate count
(:class:`repro.hardware.cost.HardwareCostModel`), and the returned
:class:`CompilationResult` carries the winning encoding's
:class:`~repro.hardware.cost.HardwareCost`.  Cache fingerprints include
the device, so results for different topologies never collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.annealing import AnnealingResult, anneal_pairing
from repro.core.baselines import best_baseline, candidate_baselines
from repro.core.config import (
    COMPILE_METHODS,
    METHOD_ANNEALING,
    METHOD_FULL_SAT,
    METHOD_INDEPENDENT,
    AnnealingSchedule,
    FermihedralConfig,
)
from repro.core.descent import DescentResult, descend, measured_weight
from repro.core.verify import VerificationReport, verify_encoding
from repro.encodings.base import MajoranaEncoding
from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.hardware import (
    DeviceTopology,
    HardwareCost,
    HardwareCostModel,
    connectivity_weights,
    resolve_device,
)

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.store.cache import CompilationCache


@dataclass
class CompilationResult:
    """An encoding together with how it was obtained and how it verifies.

    In hardware-aware mode (compiled through a device-bound
    :class:`FermihedralCompiler`), ``weight`` is normalized to the plain,
    unweighted objective value of the returned encoding so it stays
    comparable across devices; the connectivity-weighted objective the
    descent actually tightened lives in ``descent.weight``, ``device``
    names the topology, and ``hardware`` holds the routed gate counts.
    """

    encoding: MajoranaEncoding
    method: str
    weight: int
    proved_optimal: bool
    descent: DescentResult
    annealing: AnnealingResult | None = None
    verification: VerificationReport | None = None
    device: str | None = None
    hardware: HardwareCost | None = None
    #: Optimality-proof metadata when the job ran with ``proof=True`` and
    #: the descent captured an UNSAT certificate: the trace's content
    #: address (``sha256``), its size (``drat_lines``), the refuted bound,
    #: the engine that produced it, and — when a cache persisted the full
    #: artifact — its ``artifact`` path, consumable by
    #: ``repro verify-proof``.  ``None`` when no proof was captured.
    proof: dict | None = None
    #: The job's wall-clock deadline expired mid-descent: the encoding is
    #: the (valid) best found in time, returned instead of an error —
    #: graceful degradation.  Details in ``descent.degraded`` /
    #: ``descent.target_bound``.  Degraded results are never proved
    #: optimal, so the cache treats them as warm-start seeds, not hits.
    degraded: bool = False

    def verify(self) -> VerificationReport:
        if self.verification is None:
            self.verification = verify_encoding(self.encoding)
        return self.verification


def hardware_config(
    config: FermihedralConfig,
    topology: DeviceTopology | None,
    num_modes: int,
) -> FermihedralConfig:
    """The effective config of a job targeting ``topology``.

    A device installs its connectivity weights into the objective unless
    the caller pinned explicit ``qubit_weights`` already; without a device
    the config passes through unchanged.  The compiler and the batch
    fingerprinter share this so their cache keys always agree.
    """
    if topology is None or config.qubit_weights is not None:
        return config
    return config.with_qubit_weights(connectivity_weights(topology, num_modes))


def _as_fermihedral(encoding: MajoranaEncoding) -> MajoranaEncoding:
    """The compiler's output is always named ``fermihedral``, even when a
    budget-starved descent falls back to the seeding baseline."""
    if encoding.name == "fermihedral":
        return encoding
    return MajoranaEncoding(encoding.strings, name="fermihedral", validate=False)


def solve_hamiltonian_independent(
    num_modes: int,
    config: FermihedralConfig | None = None,
    baseline: MajoranaEncoding | None = None,
    telemetry=None,
    checkpoint=None,
) -> CompilationResult:
    """Minimize the total Pauli weight of the 2N Majorana strings.

    ``baseline`` overrides the automatic baseline selection; the cache
    passes a previously found encoding here to warm-start the descent.
    ``checkpoint`` (a :class:`repro.core.checkpoint.CheckpointSink`)
    enables the descent's crash-resume persistence.
    """
    config = config or FermihedralConfig()
    baseline = baseline or best_baseline(num_modes, config)
    result = descend(num_modes, config=config, baseline=baseline,
                     telemetry=telemetry, checkpoint=checkpoint)
    method = "full-sat" if config.algebraic_independence else "sat-wo-alg"
    return CompilationResult(
        encoding=_as_fermihedral(result.encoding),
        method=f"{method}/independent",
        weight=result.weight,
        proved_optimal=result.proved_optimal,
        descent=result,
        degraded=result.degraded,
    )


def solve_full_sat(
    hamiltonian: FermionicHamiltonian,
    config: FermihedralConfig | None = None,
    baseline: MajoranaEncoding | None = None,
    telemetry=None,
    checkpoint=None,
) -> CompilationResult:
    """Minimize the encoded weight of a specific Hamiltonian in SAT."""
    config = config or FermihedralConfig()
    baseline = baseline or best_baseline(hamiltonian.num_modes, config, hamiltonian)
    result = descend(
        hamiltonian.num_modes, config=config, hamiltonian=hamiltonian,
        baseline=baseline, telemetry=telemetry, checkpoint=checkpoint,
    )
    method = "full-sat" if config.algebraic_independence else "sat-wo-alg"
    return CompilationResult(
        encoding=_as_fermihedral(result.encoding),
        method=f"{method}/dependent",
        weight=result.weight,
        proved_optimal=result.proved_optimal,
        descent=result,
        degraded=result.degraded,
    )


def solve_sat_annealing(
    hamiltonian: FermionicHamiltonian,
    config: FermihedralConfig | None = None,
    schedule: AnnealingSchedule | None = None,
    seed: int = 2024,
    baseline: MajoranaEncoding | None = None,
    telemetry=None,
    checkpoint=None,
) -> CompilationResult:
    """SAT + Anl.: independent SAT optimum, then annealed pair assignment."""
    config = config or FermihedralConfig()
    baseline = baseline or best_baseline(hamiltonian.num_modes, config)
    independent = descend(hamiltonian.num_modes, config=config, baseline=baseline,
                          telemetry=telemetry, checkpoint=checkpoint)
    annealed = anneal_pairing(
        independent.encoding, hamiltonian, schedule=schedule, seed=seed
    )
    return CompilationResult(
        encoding=_as_fermihedral(annealed.encoding),
        method="sat+annealing",
        weight=annealed.weight,
        proved_optimal=False,
        descent=independent,
        annealing=annealed,
        # The annealing stage still ran to completion; what is degraded is
        # the SAT optimum it started from.
        degraded=independent.degraded,
    )


class FermihedralCompiler:
    """Facade over the three solving strategies, with optional memoization.

    Args:
        num_modes: number of fermionic modes every job must match.
        config: constraint/budget configuration shared by all jobs.
        cache: a :class:`repro.store.cache.CompilationCache`; when given,
            every compile consults and populates it (see the module
            docstring for the hit / warm-start / miss semantics).
        device: target topology for hardware-aware compilation — a
            :class:`~repro.hardware.topology.DeviceTopology` or a name
            resolvable by :func:`repro.hardware.devices.get_device`
            (``"grid-3x3"``, ``"ibm-falcon-27"``, ...).  Jobs may also
            override it per call via ``compile(..., device=...)``.
        telemetry: a :class:`repro.telemetry.Telemetry` handle; when
            given, every compile opens a ``compile`` span, the descent and
            solver layers record their own spans and metrics beneath it,
            and the cache mirrors its hit/miss counters into the handle's
            registry.  ``None`` (the default) keeps the whole pipeline on
            its zero-overhead path.

    After each :meth:`compile` call, :attr:`last_cache_status` records how
    the cache participated: ``"disabled"``, ``"hit"``, ``"warm-start"``,
    ``"miss"``, or ``"store-failed"`` — the last meaning the compilation
    itself succeeded but persisting it did not (unwritable or vanished
    cache directory); the result is still returned and
    :attr:`last_cache_error` carries the reason.  Cache persistence is
    deliberately best-effort: a broken cache directory must never discard
    a finished compilation nor take down a batch or service worker.

    Example:
        >>> compiler = FermihedralCompiler(num_modes=2)
        >>> result = compiler.hamiltonian_independent()
        >>> result.weight <= 6
        True
    """

    def __init__(
        self,
        num_modes: int,
        config: FermihedralConfig | None = None,
        cache: CompilationCache | None = None,
        device: str | DeviceTopology | None = None,
        telemetry=None,
    ):
        if num_modes < 1:
            raise ValueError("num_modes must be positive")
        self.num_modes = num_modes
        self.config = config or FermihedralConfig()
        self.cache = cache
        self.telemetry = telemetry
        if cache is not None and telemetry is not None:
            cache.set_telemetry(telemetry)
        self.device = resolve_device(device)
        self._check_device(self.device)
        self.last_cache_status: str | None = None
        self.last_cache_error: str | None = None

    def _check_device(self, topology: DeviceTopology | None) -> None:
        if topology is not None and topology.num_qubits < self.num_modes:
            raise ValueError(
                f"device {topology.name!r} has {topology.num_qubits} qubits, "
                f"the encoding needs {self.num_modes}"
            )

    def _device_config(self, topology: DeviceTopology | None) -> FermihedralConfig:
        return hardware_config(self.config, topology, self.num_modes)

    def hamiltonian_independent(self) -> CompilationResult:
        return self.compile(method=METHOD_INDEPENDENT)

    def full_sat(self, hamiltonian: FermionicHamiltonian) -> CompilationResult:
        return self.compile(method=METHOD_FULL_SAT, hamiltonian=hamiltonian)

    def sat_with_annealing(
        self,
        hamiltonian: FermionicHamiltonian,
        schedule: AnnealingSchedule | None = None,
        seed: int = 2024,
    ) -> CompilationResult:
        return self.compile(
            method=METHOD_ANNEALING,
            hamiltonian=hamiltonian,
            schedule=schedule,
            seed=seed,
        )

    def compile(
        self,
        method: str = METHOD_INDEPENDENT,
        hamiltonian: FermionicHamiltonian | None = None,
        schedule: AnnealingSchedule | None = None,
        seed: int = 2024,
        cache_key: str | None = None,
        device: str | DeviceTopology | None = None,
    ) -> CompilationResult:
        """Run one compilation job through the cache (when enabled).

        Args:
            method: one of :data:`repro.core.config.COMPILE_METHODS`.
            hamiltonian: required for the Hamiltonian-dependent methods
                (``full-sat`` and ``sat+annealing``); must be ``None`` for
                ``independent``.
            schedule: cooling schedule for ``sat+annealing``.
            seed: annealing RNG seed for ``sat+annealing``.
            cache_key: precomputed fingerprint of this exact job (an
                optimization for callers like the batch compiler that
                already fingerprinted it); must equal what
                ``cache.key_for`` would return for the *device-effective*
                config — ``hardware_config(config, device, num_modes)`` —
                and the resolved device, which is what this method
                computes itself when the argument is omitted.
            device: per-call override of the compiler's target topology
                (see the constructor); ``None`` uses the compiler's own.
        """
        if method not in COMPILE_METHODS:
            raise ValueError(
                f"unknown compile method {method!r}; expected one of {COMPILE_METHODS}"
            )
        if method == METHOD_INDEPENDENT:
            if hamiltonian is not None:
                raise ValueError("the independent method takes no Hamiltonian")
        else:
            if hamiltonian is None:
                raise ValueError(f"method {method!r} requires a Hamiltonian")
            self._check_modes(hamiltonian)

        topology = self.device if device is None else resolve_device(device)
        self._check_device(topology)
        config = self._device_config(topology)
        self.last_cache_error = None

        if self.telemetry is None:
            return self._compile_inner(
                method, hamiltonian, schedule, seed, cache_key, topology, config
            )
        with self.telemetry.span(
            "compile",
            method=method,
            modes=self.num_modes,
            device="" if topology is None else topology.name,
        ) as attrs:
            result = self._compile_inner(
                method, hamiltonian, schedule, seed, cache_key, topology, config
            )
            attrs.update(
                cache=self.last_cache_status,
                weight=result.weight,
                proved_optimal=result.proved_optimal,
            )
            return result

    def _compile_inner(
        self,
        method: str,
        hamiltonian: FermionicHamiltonian | None,
        schedule: AnnealingSchedule | None,
        seed: int,
        cache_key: str | None,
        topology: DeviceTopology | None,
        config: FermihedralConfig,
    ) -> CompilationResult:
        if self.cache is None:
            self.last_cache_status = "disabled"
            result = self._solve(method, hamiltonian, schedule, seed, None, config)
            result = self._finish_hardware(result, topology, hamiltonian, config)
            self._attach_proof(result)
            return result

        from repro.core.checkpoint import CacheCheckpointSink

        key = cache_key or self.cache.key_for(
            num_modes=self.num_modes,
            config=config,
            hamiltonian=hamiltonian,
            method=method,
            schedule=schedule,
            seed=seed,
            device=topology,
        )
        cached = self.cache.get(key)
        if cached is not None and self._is_final(cached, method, topology):
            self.last_cache_status = "hit"
            return cached
        baseline = cached.encoding if cached is not None else None
        if baseline is not None:
            self.last_cache_status = "warm-start"
            self.cache.note_warm_start()
        else:
            self.last_cache_status = "miss"
        # The sink shares the entry's fingerprint, so a retried attempt of
        # the same job (same key) finds its predecessor's rung progress.
        checkpoint = CacheCheckpointSink(self.cache, key, telemetry=self.telemetry)
        result = self._solve(method, hamiltonian, schedule, seed, baseline, config,
                             checkpoint=checkpoint)
        result = self._finish_hardware(result, topology, hamiltonian, config)
        self._attach_proof(result)
        try:
            self.cache.put(key, result)
        except OSError as error:
            # Persistence is best-effort (see the class docstring): an
            # unwritable or vanished cache directory downgrades to a
            # store-failed status instead of discarding the result.
            self.last_cache_status = "store-failed"
            self.last_cache_error = f"{type(error).__name__}: {error}"
            self._note_store_failure()
        return result

    def _note_store_failure(self) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(
                "repro_cache_store_failures_total",
                "cache writes that failed (best-effort persistence)",
            ).inc()

    def _solve(
        self,
        method: str,
        hamiltonian: FermionicHamiltonian | None,
        schedule: AnnealingSchedule | None,
        seed: int,
        baseline: MajoranaEncoding | None,
        config: FermihedralConfig | None = None,
        checkpoint=None,
    ) -> CompilationResult:
        config = config or self.config
        if method == METHOD_INDEPENDENT:
            return solve_hamiltonian_independent(
                self.num_modes, config, baseline=baseline,
                telemetry=self.telemetry, checkpoint=checkpoint,
            )
        if method == METHOD_FULL_SAT:
            return solve_full_sat(
                hamiltonian, config, baseline=baseline,
                telemetry=self.telemetry, checkpoint=checkpoint,
            )
        return solve_sat_annealing(
            hamiltonian, config, schedule, seed, baseline=baseline,
            telemetry=self.telemetry, checkpoint=checkpoint,
        )

    def _attach_proof(self, result: CompilationResult) -> None:
        """Summarize (and, with a cache, persist) the descent's DRAT trace.

        The metadata dict travels with the result and its cache entry; the
        full trace is content-addressed under the cache's ``proofs/``
        directory so ``repro verify-proof`` can re-check it later.  Like
        result persistence, artifact persistence is best-effort: a broken
        cache directory downgrades to ``store-failed`` instead of
        discarding the finished compilation.
        """
        trace = getattr(result.descent, "proof_trace", None)
        if trace is None:
            return
        proof = {
            "sha256": trace.sha256(),
            "drat_lines": trace.num_proof_lines,
            "bound": trace.meta.get("bound"),
            "engine": trace.meta.get("engine"),
        }
        if self.cache is not None:
            try:
                _, path = self.cache.put_proof(trace)
            except OSError as error:
                self.last_cache_status = "store-failed"
                self.last_cache_error = f"{type(error).__name__}: {error}"
                self._note_store_failure()
            else:
                proof["artifact"] = str(path)
        result.proof = proof

    @staticmethod
    def _is_final(
        cached: CompilationResult,
        method: str,
        topology: DeviceTopology | None,
    ) -> bool:
        """Whether a cached result can be returned as-is (a true hit).

        ``proved_optimal`` covers the plain methods; ``sat+annealing`` is
        deterministic for its schedule and seed.  A hardware-aware job is
        also final once its *descent* proved the weighted optimum — the
        routed-cost candidate selection that may have replaced the descent
        winner (clearing ``proved_optimal``) is deterministic given the
        device, so re-running could only reproduce the same answer.
        """
        if cached.proved_optimal or method == METHOD_ANNEALING:
            return True
        return topology is not None and cached.descent.proved_optimal

    def _finish_hardware(
        self,
        result: CompilationResult,
        topology: DeviceTopology | None,
        hamiltonian: FermionicHamiltonian | None,
        config: FermihedralConfig,
    ) -> CompilationResult:
        """Ground a fresh result in the target device (no-op without one).

        The descent winner competes with the admissible textbook baselines
        on routed two-qubit gate count — hardware-aware compilation never
        returns an encoding that routes worse than a constructive one it
        could have had for free.  ``weight`` is normalized to the plain
        objective of whichever encoding wins, and the routed cost is
        attached.
        """
        if topology is None:
            return result
        model = HardwareCostModel(topology)
        candidates = [result.encoding] + candidate_baselines(
            self.num_modes, config.vacuum_preservation
        )
        best, cost = model.best_encoding(candidates, hamiltonian)
        if best is not result.encoding:
            result.encoding = _as_fermihedral(best)
            result.proved_optimal = False
            result.verification = None
        result.weight = measured_weight(result.encoding, hamiltonian)
        result.device = topology.name
        result.hardware = cost
        return result

    def _check_modes(self, hamiltonian: FermionicHamiltonian) -> None:
        if hamiltonian.num_modes != self.num_modes:
            raise ValueError(
                f"compiler built for {self.num_modes} modes, Hamiltonian has "
                f"{hamiltonian.num_modes}"
            )
