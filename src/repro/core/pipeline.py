"""High-level compiler entry points — the paper's three configurations.

* :func:`solve_hamiltonian_independent` — minimize summed Majorana weight
  (Figures 6/7), with or without the algebraic-independence clauses.
* :func:`solve_full_sat` — "Full SAT": Hamiltonian-dependent weight encoded
  directly in the SAT objective (Tables 4/6, Figures 8-10).
* :func:`solve_sat_annealing` — "SAT + Anl.": Hamiltonian-independent SAT
  optimum, then simulated annealing over the pair-to-mode assignment
  (Tables 4/5).

:class:`FermihedralCompiler` bundles them behind one object for the
examples and benchmarks.  Constructed with a
:class:`repro.store.cache.CompilationCache`, it memoizes results on disk:

* **hit** — a cached result whose optimality was proved (or any cached
  ``sat+annealing`` result, which is deterministic for its seed) is
  returned as-is, performing zero SAT calls;
* **warm start** — a cached result that was *not* proved optimal seeds
  :func:`~repro.core.descent.descend`'s starting bound in place of the
  textbook baseline, so a rerun resumes tightening from where the last
  run stopped rather than from Bravyi-Kitaev;
* **miss** — a fresh compile, stored on completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.annealing import AnnealingResult, anneal_pairing
from repro.core.baselines import best_baseline
from repro.core.config import (
    COMPILE_METHODS,
    METHOD_ANNEALING,
    METHOD_FULL_SAT,
    METHOD_INDEPENDENT,
    AnnealingSchedule,
    FermihedralConfig,
)
from repro.core.descent import DescentResult, descend
from repro.core.verify import VerificationReport, verify_encoding
from repro.encodings.base import MajoranaEncoding
from repro.fermion.hamiltonians import FermionicHamiltonian

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.store.cache import CompilationCache


@dataclass
class CompilationResult:
    """An encoding together with how it was obtained and how it verifies."""

    encoding: MajoranaEncoding
    method: str
    weight: int
    proved_optimal: bool
    descent: DescentResult
    annealing: AnnealingResult | None = None
    verification: VerificationReport | None = None

    def verify(self) -> VerificationReport:
        if self.verification is None:
            self.verification = verify_encoding(self.encoding)
        return self.verification


def _as_fermihedral(encoding: MajoranaEncoding) -> MajoranaEncoding:
    """The compiler's output is always named ``fermihedral``, even when a
    budget-starved descent falls back to the seeding baseline."""
    if encoding.name == "fermihedral":
        return encoding
    return MajoranaEncoding(encoding.strings, name="fermihedral", validate=False)


def solve_hamiltonian_independent(
    num_modes: int,
    config: FermihedralConfig | None = None,
    baseline: MajoranaEncoding | None = None,
) -> CompilationResult:
    """Minimize the total Pauli weight of the 2N Majorana strings.

    ``baseline`` overrides the automatic baseline selection; the cache
    passes a previously found encoding here to warm-start the descent.
    """
    config = config or FermihedralConfig()
    baseline = baseline or best_baseline(num_modes, config)
    result = descend(num_modes, config=config, baseline=baseline)
    method = "full-sat" if config.algebraic_independence else "sat-wo-alg"
    return CompilationResult(
        encoding=_as_fermihedral(result.encoding),
        method=f"{method}/independent",
        weight=result.weight,
        proved_optimal=result.proved_optimal,
        descent=result,
    )


def solve_full_sat(
    hamiltonian: FermionicHamiltonian,
    config: FermihedralConfig | None = None,
    baseline: MajoranaEncoding | None = None,
) -> CompilationResult:
    """Minimize the encoded weight of a specific Hamiltonian in SAT."""
    config = config or FermihedralConfig()
    baseline = baseline or best_baseline(hamiltonian.num_modes, config, hamiltonian)
    result = descend(
        hamiltonian.num_modes, config=config, hamiltonian=hamiltonian, baseline=baseline
    )
    method = "full-sat" if config.algebraic_independence else "sat-wo-alg"
    return CompilationResult(
        encoding=_as_fermihedral(result.encoding),
        method=f"{method}/dependent",
        weight=result.weight,
        proved_optimal=result.proved_optimal,
        descent=result,
    )


def solve_sat_annealing(
    hamiltonian: FermionicHamiltonian,
    config: FermihedralConfig | None = None,
    schedule: AnnealingSchedule | None = None,
    seed: int = 2024,
    baseline: MajoranaEncoding | None = None,
) -> CompilationResult:
    """SAT + Anl.: independent SAT optimum, then annealed pair assignment."""
    config = config or FermihedralConfig()
    baseline = baseline or best_baseline(hamiltonian.num_modes, config)
    independent = descend(hamiltonian.num_modes, config=config, baseline=baseline)
    annealed = anneal_pairing(
        independent.encoding, hamiltonian, schedule=schedule, seed=seed
    )
    return CompilationResult(
        encoding=_as_fermihedral(annealed.encoding),
        method="sat+annealing",
        weight=annealed.weight,
        proved_optimal=False,
        descent=independent,
        annealing=annealed,
    )


class FermihedralCompiler:
    """Facade over the three solving strategies, with optional memoization.

    Args:
        num_modes: number of fermionic modes every job must match.
        config: constraint/budget configuration shared by all jobs.
        cache: a :class:`repro.store.cache.CompilationCache`; when given,
            every compile consults and populates it (see the module
            docstring for the hit / warm-start / miss semantics).

    After each :meth:`compile` call, :attr:`last_cache_status` records how
    the cache participated: ``"disabled"``, ``"hit"``, ``"warm-start"``,
    or ``"miss"``.

    Example:
        >>> compiler = FermihedralCompiler(num_modes=2)
        >>> result = compiler.hamiltonian_independent()
        >>> result.weight <= 6
        True
    """

    def __init__(
        self,
        num_modes: int,
        config: FermihedralConfig | None = None,
        cache: CompilationCache | None = None,
    ):
        if num_modes < 1:
            raise ValueError("num_modes must be positive")
        self.num_modes = num_modes
        self.config = config or FermihedralConfig()
        self.cache = cache
        self.last_cache_status: str | None = None

    def hamiltonian_independent(self) -> CompilationResult:
        return self.compile(method=METHOD_INDEPENDENT)

    def full_sat(self, hamiltonian: FermionicHamiltonian) -> CompilationResult:
        return self.compile(method=METHOD_FULL_SAT, hamiltonian=hamiltonian)

    def sat_with_annealing(
        self,
        hamiltonian: FermionicHamiltonian,
        schedule: AnnealingSchedule | None = None,
        seed: int = 2024,
    ) -> CompilationResult:
        return self.compile(
            method=METHOD_ANNEALING,
            hamiltonian=hamiltonian,
            schedule=schedule,
            seed=seed,
        )

    def compile(
        self,
        method: str = METHOD_INDEPENDENT,
        hamiltonian: FermionicHamiltonian | None = None,
        schedule: AnnealingSchedule | None = None,
        seed: int = 2024,
        cache_key: str | None = None,
    ) -> CompilationResult:
        """Run one compilation job through the cache (when enabled).

        Args:
            method: one of :data:`repro.core.config.COMPILE_METHODS`.
            hamiltonian: required for the Hamiltonian-dependent methods
                (``full-sat`` and ``sat+annealing``); must be ``None`` for
                ``independent``.
            schedule: cooling schedule for ``sat+annealing``.
            seed: annealing RNG seed for ``sat+annealing``.
            cache_key: precomputed fingerprint of this exact job (an
                optimization for callers like the batch compiler that
                already fingerprinted it); must equal what
                ``cache.key_for`` would return for these arguments.
        """
        if method not in COMPILE_METHODS:
            raise ValueError(
                f"unknown compile method {method!r}; expected one of {COMPILE_METHODS}"
            )
        if method == METHOD_INDEPENDENT:
            if hamiltonian is not None:
                raise ValueError("the independent method takes no Hamiltonian")
        else:
            if hamiltonian is None:
                raise ValueError(f"method {method!r} requires a Hamiltonian")
            self._check_modes(hamiltonian)

        if self.cache is None:
            self.last_cache_status = "disabled"
            return self._solve(method, hamiltonian, schedule, seed, baseline=None)

        key = cache_key or self.cache.key_for(
            num_modes=self.num_modes,
            config=self.config,
            hamiltonian=hamiltonian,
            method=method,
            schedule=schedule,
            seed=seed,
        )
        cached = self.cache.get(key)
        if cached is not None and (cached.proved_optimal or method == METHOD_ANNEALING):
            self.last_cache_status = "hit"
            return cached
        baseline = cached.encoding if cached is not None else None
        if baseline is not None:
            self.last_cache_status = "warm-start"
            self.cache.note_warm_start()
        else:
            self.last_cache_status = "miss"
        result = self._solve(method, hamiltonian, schedule, seed, baseline)
        self.cache.put(key, result)
        return result

    def _solve(
        self,
        method: str,
        hamiltonian: FermionicHamiltonian | None,
        schedule: AnnealingSchedule | None,
        seed: int,
        baseline: MajoranaEncoding | None,
    ) -> CompilationResult:
        if method == METHOD_INDEPENDENT:
            return solve_hamiltonian_independent(
                self.num_modes, self.config, baseline=baseline
            )
        if method == METHOD_FULL_SAT:
            return solve_full_sat(hamiltonian, self.config, baseline=baseline)
        return solve_sat_annealing(
            hamiltonian, self.config, schedule, seed, baseline=baseline
        )

    def _check_modes(self, hamiltonian: FermionicHamiltonian) -> None:
        if hamiltonian.num_modes != self.num_modes:
            raise ValueError(
                f"compiler built for {self.num_modes} modes, Hamiltonian has "
                f"{hamiltonian.num_modes}"
            )
