"""High-level compiler entry points — the paper's three configurations.

* :func:`solve_hamiltonian_independent` — minimize summed Majorana weight
  (Figures 6/7), with or without the algebraic-independence clauses.
* :func:`solve_full_sat` — "Full SAT": Hamiltonian-dependent weight encoded
  directly in the SAT objective (Tables 4/6, Figures 8-10).
* :func:`solve_sat_annealing` — "SAT + Anl.": Hamiltonian-independent SAT
  optimum, then simulated annealing over the pair-to-mode assignment
  (Tables 4/5).

:class:`FermihedralCompiler` bundles them behind one object for the
examples and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.annealing import AnnealingResult, anneal_pairing
from repro.core.baselines import best_baseline
from repro.core.config import AnnealingSchedule, FermihedralConfig
from repro.core.descent import DescentResult, descend
from repro.core.verify import VerificationReport, verify_encoding
from repro.encodings.base import MajoranaEncoding
from repro.fermion.hamiltonians import FermionicHamiltonian


@dataclass
class CompilationResult:
    """An encoding together with how it was obtained and how it verifies."""

    encoding: MajoranaEncoding
    method: str
    weight: int
    proved_optimal: bool
    descent: DescentResult
    annealing: AnnealingResult | None = None
    verification: VerificationReport | None = None

    def verify(self) -> VerificationReport:
        if self.verification is None:
            self.verification = verify_encoding(self.encoding)
        return self.verification


def _as_fermihedral(encoding: MajoranaEncoding) -> MajoranaEncoding:
    """The compiler's output is always named ``fermihedral``, even when a
    budget-starved descent falls back to the seeding baseline."""
    if encoding.name == "fermihedral":
        return encoding
    return MajoranaEncoding(encoding.strings, name="fermihedral", validate=False)


def solve_hamiltonian_independent(
    num_modes: int,
    config: FermihedralConfig | None = None,
) -> CompilationResult:
    """Minimize the total Pauli weight of the 2N Majorana strings."""
    config = config or FermihedralConfig()
    baseline = best_baseline(num_modes, config)
    result = descend(num_modes, config=config, baseline=baseline)
    method = "full-sat" if config.algebraic_independence else "sat-wo-alg"
    return CompilationResult(
        encoding=_as_fermihedral(result.encoding),
        method=f"{method}/independent",
        weight=result.weight,
        proved_optimal=result.proved_optimal,
        descent=result,
    )


def solve_full_sat(
    hamiltonian: FermionicHamiltonian,
    config: FermihedralConfig | None = None,
) -> CompilationResult:
    """Minimize the encoded weight of a specific Hamiltonian in SAT."""
    config = config or FermihedralConfig()
    baseline = best_baseline(hamiltonian.num_modes, config, hamiltonian)
    result = descend(
        hamiltonian.num_modes, config=config, hamiltonian=hamiltonian, baseline=baseline
    )
    method = "full-sat" if config.algebraic_independence else "sat-wo-alg"
    return CompilationResult(
        encoding=_as_fermihedral(result.encoding),
        method=f"{method}/dependent",
        weight=result.weight,
        proved_optimal=result.proved_optimal,
        descent=result,
    )


def solve_sat_annealing(
    hamiltonian: FermionicHamiltonian,
    config: FermihedralConfig | None = None,
    schedule: AnnealingSchedule | None = None,
    seed: int = 2024,
) -> CompilationResult:
    """SAT + Anl.: independent SAT optimum, then annealed pair assignment."""
    config = config or FermihedralConfig()
    baseline = best_baseline(hamiltonian.num_modes, config)
    independent = descend(hamiltonian.num_modes, config=config, baseline=baseline)
    annealed = anneal_pairing(
        independent.encoding, hamiltonian, schedule=schedule, seed=seed
    )
    return CompilationResult(
        encoding=_as_fermihedral(annealed.encoding),
        method="sat+annealing",
        weight=annealed.weight,
        proved_optimal=False,
        descent=independent,
        annealing=annealed,
    )


class FermihedralCompiler:
    """Facade over the three solving strategies.

    Example:
        >>> compiler = FermihedralCompiler(num_modes=2)
        >>> result = compiler.hamiltonian_independent()
        >>> result.weight <= 6
        True
    """

    def __init__(self, num_modes: int, config: FermihedralConfig | None = None):
        if num_modes < 1:
            raise ValueError("num_modes must be positive")
        self.num_modes = num_modes
        self.config = config or FermihedralConfig()

    def hamiltonian_independent(self) -> CompilationResult:
        return solve_hamiltonian_independent(self.num_modes, self.config)

    def full_sat(self, hamiltonian: FermionicHamiltonian) -> CompilationResult:
        self._check_modes(hamiltonian)
        return solve_full_sat(hamiltonian, self.config)

    def sat_with_annealing(
        self,
        hamiltonian: FermionicHamiltonian,
        schedule: AnnealingSchedule | None = None,
        seed: int = 2024,
    ) -> CompilationResult:
        self._check_modes(hamiltonian)
        return solve_sat_annealing(hamiltonian, self.config, schedule, seed)

    def _check_modes(self, hamiltonian: FermionicHamiltonian) -> None:
        if hamiltonian.num_modes != self.num_modes:
            raise ValueError(
                f"compiler built for {self.num_modes} modes, Hamiltonian has "
                f"{hamiltonian.num_modes}"
            )
