"""Configuration objects for the Fermihedral compiler."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

#: Objective selector: minimize summed Majorana-string weight (Section 3.6).
HAMILTONIAN_INDEPENDENT = "hamiltonian-independent"
#: Objective selector: minimize the encoded-Hamiltonian weight (Section 3.7).
HAMILTONIAN_DEPENDENT = "hamiltonian-dependent"

#: Compile method: Hamiltonian-independent SAT descent (Section 3.6).
METHOD_INDEPENDENT = "independent"
#: Compile method: Hamiltonian-dependent "Full SAT" descent (Section 3.7).
METHOD_FULL_SAT = "full-sat"
#: Compile method: independent SAT optimum + annealed pairing (Section 4.2).
METHOD_ANNEALING = "sat+annealing"
#: All compile-method tags, as used by :class:`FermihedralCompiler.compile`
#: and the ``repro.store`` fingerprints.
COMPILE_METHODS = (METHOD_INDEPENDENT, METHOD_FULL_SAT, METHOD_ANNEALING)

#: :class:`FermihedralConfig` fields that choose an *execution strategy*
#: rather than a problem: given enough budget per SAT call they change
#: only which of several equally-optimal models a run returns (and how
#: fast), never the achieved weight or the optimality proof; when a
#: budget is exhausted, more parallelism can only finish more bounds,
#: never contradict fewer.  ``preprocess`` belongs here too: CNF
#: simplification is satisfiability-preserving per bound (models are
#: reconstructed onto the original variables), so achieved weights and
#: optimality proofs are invariant.  ``proof`` is pure observation: it
#: records what the solver did without changing a single decision.
#: ``repro.store.fingerprint`` excludes them from cache keys so serial,
#: incremental, portfolio, multi-process and preprocessed runs of one job
#: all share a cache entry (sound because unproved results are warm-start
#: seeds, never final hits).  ``deadline_s`` is execution-only for the
#: same reason a time budget would be: it decides when a run stops
#: tightening, never what the optimum is, and a deadline-degraded result
#: is unproved, so it stays a warm-start seed rather than a final hit.
EXECUTION_ONLY_FIELDS = (
    "incremental", "portfolio", "jobs", "preprocess", "proof", "deadline_s",
)


@dataclass(frozen=True)
class SolverBudget:
    """Resource limits for each SAT call inside the descent loop.

    ``None`` means unlimited.  When a call exhausts its budget the descent
    stops tightening and reports the best encoding found so far with
    ``proved_optimal = False`` — mirroring the paper's fixed-timeout
    handling of the final UNSAT proof (Section 5.5).
    """

    max_conflicts: int | None = None
    time_budget_s: float | None = None


# repro-lint: worker-shipped
@dataclass(frozen=True)
class FermihedralConfig:
    """Switches selecting which constraints enter the SAT instance.

    Attributes:
        algebraic_independence: emit the power-set clauses of Section 3.4
            ("Full SAT").  When ``False`` ("SAT w/o Alg."), solutions are
            rank-checked afterwards and repaired via blocking clauses —
            the Section 4.1 strategy with its ``4^-N`` failure probability.
        vacuum_preservation: emit the X/Y-pair clauses of Section 3.5.
        exact_vacuum: replace the paper's sufficient-condition witness with
            the exact (necessary-and-sufficient) vacuum constraint — equal
            flip masks per pair plus the mod-4 Y-count relation.  Slightly
            larger instances, but decoded solutions always truly satisfy
            ``a_j|0..0> = 0``.  Only meaningful when ``vacuum_preservation``
            is on.
        start_weight: initial weight bound for Algorithm 1; ``None`` seeds
            from the Bravyi-Kitaev baseline, as the paper does.
        warm_start: seed each SAT call's phase hints with the previous model.
        budget: per-SAT-call resource limits.
        max_repairs: cap on w/o-Alg blocking-clause rounds per weight level.
        strategy: descent loop flavour — ``"linear"`` (the paper's
            Algorithm 1) or ``"bisection"`` (binary search between a
            structural lower bound and the best model; an ablation).
        qubit_weights: connectivity-weighted objective — per-qubit positive
            integer multipliers applied to every weight indicator, so the
            descent minimizes ``Σ w[q] · [operator at q ≠ I]`` instead of
            plain Pauli weight.  Derived from a device coupling graph by
            :func:`repro.hardware.cost.connectivity_weights`; ``None``
            keeps the paper's uniform objective.  Length must equal the
            mode count of the job using this config.
        incremental: solve the descent ladder on one incremental SAT
            instance — the weight bound becomes a per-call assumption and
            learned clauses survive from one rung to the next — instead
            of rebuilding the CNF from scratch at every bound.  Identical
            optima either way; ``False`` restores the cold-start loop.
        portfolio: number of diversified solver processes racing each SAT
            call (:mod:`repro.parallel.portfolio`).  ``1`` solves
            in-process with the reference configuration.
        jobs: default worker-process count for batch executors consuming
            this config (:mod:`repro.parallel.executor`); ``1`` is serial.
        preprocess: simplify the CNF (:mod:`repro.sat.preprocess` — unit
            propagation, subsumption, bounded variable elimination) before
            building the incremental descent solver and every portfolio
            worker.  Encoding variables and ladder selectors are frozen,
            and SAT models are reconstructed onto the original variables,
            so decoded encodings, achieved weights and optimality proofs
            are unchanged; only solve time drops.  ``False``
            (``--no-preprocess``) solves the raw instance.
        proof: capture a DRAT proof trace of the descent's optimality-
            proving UNSAT answer (:mod:`repro.sat.drat`).  The trace
            certifies the *original* CNF — preprocessing steps are logged
            too — and can be re-verified independently with ``repro
            verify-proof``.  Off by default: emission costs a little
            memory and time on UNSAT-heavy runs, and the artifact is only
            needed when the result must be auditable.
        deadline_s: wall-clock deadline for the whole descent, in seconds
            (``None`` = none).  Unlike ``budget.time_budget_s`` (a
            per-SAT-call limit), the deadline spans formula construction
            and every rung; on expiry the descent returns its best
            encoding so far marked ``degraded`` — graceful degradation,
            never an error — with the bound it was still chasing recorded
            as ``target_bound``.

        ``incremental``, ``portfolio``, ``jobs``, ``preprocess``,
        ``proof`` and ``deadline_s`` are execution-strategy knobs
        (:data:`EXECUTION_ONLY_FIELDS`): with enough budget they change
        only how fast the run reaches the same weight and proof (under an
        exhausted budget, more parallelism can only answer more, never
        contradict) or what is recorded about it, so they are excluded
        from cache fingerprints.
    """

    algebraic_independence: bool = True
    vacuum_preservation: bool = True
    exact_vacuum: bool = False
    start_weight: int | None = None
    warm_start: bool = True
    budget: SolverBudget = field(default_factory=SolverBudget)
    max_repairs: int = 32
    strategy: str = "linear"
    qubit_weights: tuple[int, ...] | None = None
    incremental: bool = True
    portfolio: int = 1
    jobs: int = 1
    preprocess: bool = True
    proof: bool = False
    deadline_s: float | None = None

    def __post_init__(self):
        if self.strategy not in ("linear", "bisection"):
            raise ValueError(f"unknown descent strategy: {self.strategy!r}")
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.portfolio < 1:
            raise ValueError("portfolio must be at least 1 worker")
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1 process")
        if self.qubit_weights is not None:
            weights = tuple(int(weight) for weight in self.qubit_weights)
            if not weights or any(weight < 1 for weight in weights):
                raise ValueError("qubit_weights must be positive integers")
            object.__setattr__(self, "qubit_weights", weights)

    def without_algebraic_independence(self) -> "FermihedralConfig":
        return dataclasses.replace(self, algebraic_independence=False)

    def with_qubit_weights(self, weights) -> "FermihedralConfig":
        """This config with a connectivity-weighted objective installed."""
        return dataclasses.replace(
            self, qubit_weights=None if weights is None else tuple(weights)
        )

    def with_parallelism(
        self,
        portfolio: int | None = None,
        jobs: int | None = None,
        incremental: bool | None = None,
        preprocess: bool | None = None,
        proof: bool | None = None,
    ) -> "FermihedralConfig":
        """This config with execution-strategy knobs overridden (``None``
        keeps the current value)."""
        return dataclasses.replace(
            self,
            portfolio=self.portfolio if portfolio is None else portfolio,
            jobs=self.jobs if jobs is None else jobs,
            incremental=self.incremental if incremental is None else incremental,
            preprocess=self.preprocess if preprocess is None else preprocess,
            proof=self.proof if proof is None else proof,
        )

    def with_deadline(self, deadline_s: float | None) -> "FermihedralConfig":
        """This config with a wall-clock descent deadline installed."""
        return dataclasses.replace(self, deadline_s=deadline_s)


@dataclass(frozen=True)
class AnnealingSchedule:
    """Simulated-annealing parameters for Algorithm 2.

    Temperature decreases linearly from ``initial_temperature`` to
    ``final_temperature`` in steps of ``temperature_step``; each level
    performs ``iterations_per_step`` random pair swaps.
    """

    initial_temperature: float = 4.0
    final_temperature: float = 0.05
    temperature_step: float = 0.1
    iterations_per_step: int = 60
    boltzmann_constant: float = 1.0

    def temperatures(self) -> list[float]:
        levels = []
        temperature = self.initial_temperature
        while temperature >= self.final_temperature:
            levels.append(temperature)
            temperature -= self.temperature_step
        return levels
