"""Independent verification of candidate encodings.

The SAT encoder and the descent loop are complex enough to deserve a
checker that shares no code with them: constraints are re-validated on the
decoded Pauli strings through the Pauli-algebra substrate (pairwise
anticommutation, GF(2)-rank algebraic independence, exact vacuum action).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encodings.base import MajoranaEncoding
from repro.paulis.symplectic import dependent_subset


@dataclass
class VerificationReport:
    """Constraint-by-constraint verdict for one encoding."""

    anticommutativity: bool
    algebraic_independence: bool
    vacuum_preservation: bool
    violations: list[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """Validity per Section 3.1 (vacuum is optional there)."""
        return self.anticommutativity and self.algebraic_independence

    @property
    def fully_valid(self) -> bool:
        return self.valid and self.vacuum_preservation


def verify_encoding(encoding: MajoranaEncoding) -> VerificationReport:
    """Check all Section-3.1 constraints, reporting each violation found."""
    violations: list[str] = []

    anticommuting = True
    strings = encoding.strings
    for i, left in enumerate(strings):
        if left.is_identity:
            anticommuting = False
            violations.append(f"string m_{i} is identity")
        for j in range(i + 1, len(strings)):
            if not left.anticommutes_with(strings[j]):
                anticommuting = False
                violations.append(
                    f"m_{i}={left.label()} and m_{j}={strings[j].label()} commute"
                )

    dependency = dependent_subset(strings)
    independent = dependency is None
    if dependency is not None:
        violations.append(f"subset {dependency} multiplies to identity")

    vacuum = encoding.preserves_vacuum()
    if not vacuum:
        violations.append("some annihilation operator does not kill |0...0>")

    return VerificationReport(
        anticommutativity=anticommuting,
        algebraic_independence=independent,
        vacuum_preservation=vacuum,
        violations=violations,
    )
