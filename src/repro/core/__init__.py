"""Fermihedral core: SAT encoding, descent, annealing, verification."""

from repro.core.annealing import AnnealingResult, anneal_pairing, hamiltonian_weight_under_order
from repro.core.config import (
    COMPILE_METHODS,
    HAMILTONIAN_DEPENDENT,
    HAMILTONIAN_INDEPENDENT,
    METHOD_ANNEALING,
    METHOD_FULL_SAT,
    METHOD_INDEPENDENT,
    AnnealingSchedule,
    FermihedralConfig,
    SolverBudget,
)
from repro.core.descent import (
    DescentResult,
    DescentStep,
    build_base_formula,
    descend,
    measured_weight,
)
from repro.core.encoder import OPERATOR_BITS, FermihedralEncoder
from repro.core.pipeline import (
    CompilationResult,
    FermihedralCompiler,
    solve_full_sat,
    solve_hamiltonian_independent,
    solve_sat_annealing,
)
from repro.core.verify import VerificationReport, verify_encoding

__all__ = [
    "AnnealingResult",
    "AnnealingSchedule",
    "COMPILE_METHODS",
    "CompilationResult",
    "DescentResult",
    "DescentStep",
    "FermihedralCompiler",
    "FermihedralConfig",
    "FermihedralEncoder",
    "HAMILTONIAN_DEPENDENT",
    "HAMILTONIAN_INDEPENDENT",
    "METHOD_ANNEALING",
    "METHOD_FULL_SAT",
    "METHOD_INDEPENDENT",
    "OPERATOR_BITS",
    "SolverBudget",
    "VerificationReport",
    "anneal_pairing",
    "build_base_formula",
    "descend",
    "hamiltonian_weight_under_order",
    "measured_weight",
    "solve_full_sat",
    "solve_hamiltonian_independent",
    "solve_sat_annealing",
    "verify_encoding",
]
