"""SAT encoding of the fermion-to-qubit compilation problem (Section 3).

Each of the ``2N`` Majorana strings gets two Boolean variables per qubit,
following the paper's operator encoding (Eq. 7):

    ``I = (0,0)   X = (0,1)   Y = (1,0)   Z = (1,1)``

Under this encoding Pauli multiplication is bitwise XOR (Eq. 8), single-
operator anticommutativity reduces to ``(bit1 ∧ bit2') ⊕ (bit1' ∧ bit2)``
(equivalent to the paper's Table-2 DNF, Eq. 9, but two ANDs and one XOR),
and the weight of an operator is ``bit1 ∨ bit2``.

The encoder emits, on demand:

* anticommutativity for every string pair (Section 3.3);
* algebraic independence over the whole power set, with a Gray-code walk so
  each successive subset reuses the previous XOR accumulator at the cost of
  one fresh gadget column (Section 3.4);
* vacuum-state preservation via X/Y pair witnesses (Section 3.5);
* Hamiltonian-independent or Hamiltonian-dependent weight bounds through a
  sequential-counter cardinality constraint (Sections 3.6/3.7).
"""

from __future__ import annotations

from repro.encodings.base import MajoranaEncoding
from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.paulis.strings import PauliString
from repro.sat.cardinality import (
    add_at_most_k,
    add_at_most_k_weighted,
    add_at_most_ladder,
    predict_sequential_ladder,
)
from repro.sat.cnf import CnfFormula
from repro.sat.totalizer import add_totalizer_ladder, predict_totalizer_ladder
from repro.sat.tseitin import encode_and, encode_or, encode_xor, encode_xor_many

#: Operator truth table of the paper's Eq. 7: label -> (bit1, bit2).
OPERATOR_BITS = {"I": (0, 0), "X": (0, 1), "Y": (1, 0), "Z": (1, 1)}
_BITS_TO_OPERATOR = {bits: label for label, bits in OPERATOR_BITS.items()}


class FermihedralEncoder:
    """Builds the CNF instance for an ``N``-mode encoding search.

    The constraint methods mutate :attr:`formula`; decoding maps a SAT
    model back to a :class:`MajoranaEncoding`.
    """

    def __init__(self, num_modes: int):
        if num_modes < 1:
            raise ValueError("num_modes must be positive")
        self.num_modes = num_modes
        self.num_strings = 2 * num_modes
        self.formula = CnfFormula()
        # bit1[k][i], bit2[k][i] for string k, qubit i.
        self.bit1 = [
            [self.formula.new_variable(f"b1[{k}][{i}]") for i in range(num_modes)]
            for k in range(self.num_strings)
        ]
        self.bit2 = [
            [self.formula.new_variable(f"b2[{k}][{i}]") for i in range(num_modes)]
            for k in range(self.num_strings)
        ]
        self._weight_indicators: list[int] | None = None

    # -- variable geometry ---------------------------------------------------

    def string_variables(self, string_index: int) -> list[int]:
        """All 2N Boolean variables of one Majorana string (bit-sequence order)."""
        variables = []
        for qubit in range(self.num_modes):
            variables.append(self.bit1[string_index][qubit])
            variables.append(self.bit2[string_index][qubit])
        return variables

    def all_string_variables(self) -> list[int]:
        return [v for k in range(self.num_strings) for v in self.string_variables(k)]

    # -- constraints (Section 3.3) ------------------------------------------------

    def _acomm_literal(self, left: int, right: int, qubit: int) -> int:
        """Tseitin literal for operator-level anticommutativity at ``qubit``."""
        formula = self.formula
        forward = encode_and(formula, self.bit1[left][qubit], self.bit2[right][qubit])
        backward = encode_and(formula, self.bit1[right][qubit], self.bit2[left][qubit])
        return encode_xor(formula, forward, backward)

    def add_anticommutativity(self) -> None:
        """Every pair of Majorana strings anticommutes: odd number of
        anticommuting positions, i.e. XOR of the per-qubit literals is 1."""
        for left in range(self.num_strings):
            for right in range(left + 1, self.num_strings):
                literals = [
                    self._acomm_literal(left, right, qubit)
                    for qubit in range(self.num_modes)
                ]
                self.formula.add_unit(encode_xor_many(self.formula, literals))

    # -- constraints (Section 3.4) ----------------------------------------------------

    def add_algebraic_independence(self) -> None:
        """No subset of strings multiplies to identity.

        Walks all non-empty subsets in binary-reflected Gray-code order,
        so each step XORs exactly one string into the running bit-sequence
        accumulator (2N fresh gadget variables per step) and asserts the
        accumulator is not all-zero (one clause per subset).

        Exponential: ``2^{2N} - 1`` subsets.  This is the paper's "Full
        SAT" configuration and is only feasible for small ``N``.
        """
        formula = self.formula
        width = 2 * self.num_modes  # bit-sequence length of one string
        total_subsets = 1 << self.num_strings
        accumulator = list(self.string_variables(0))  # Gray code 1 = {string 0}
        formula.add_clause(accumulator)
        for counter in range(2, total_subsets):
            flipped = (counter & -counter).bit_length() - 1
            flipped_bits = self.string_variables(flipped)
            accumulator = [
                encode_xor(formula, accumulator[j], flipped_bits[j])
                for j in range(width)
            ]
            formula.add_clause(accumulator)

    # -- constraints (Section 3.5) -------------------------------------------------------

    def _xy_pair_literal(self, even_string: int, odd_string: int, qubit: int) -> int:
        """Literal for "even string has X and odd string has Y at ``qubit``".

        ``X = (0,1)``, ``Y = (1,0)`` — a four-literal AND gadget.
        """
        formula = self.formula
        gate = formula.new_variable()
        conjuncts = (
            -self.bit1[even_string][qubit],
            self.bit2[even_string][qubit],
            self.bit1[odd_string][qubit],
            -self.bit2[odd_string][qubit],
        )
        for literal in conjuncts:
            formula.add_clause((-gate, literal))
        formula.add_clause((gate,) + tuple(-literal for literal in conjuncts))
        return gate

    def add_vacuum_preservation(self) -> None:
        """Each Majorana pair carries an X/Y witness on some qubit, making
        ``a_j |0..0> = 0`` (the paper's sufficient condition, Eq. 11)."""
        for mode in range(self.num_modes):
            even_string, odd_string = 2 * mode, 2 * mode + 1
            witnesses = [
                self._xy_pair_literal(even_string, odd_string, qubit)
                for qubit in range(self.num_modes)
            ]
            self.formula.add_clause(witnesses)

    def add_exact_vacuum_preservation(self) -> None:
        """Necessary-and-sufficient vacuum constraint (beyond the paper).

        The paper's X/Y witness (Section 3.5) is only a sufficient condition
        "in a simple case": a SAT model can satisfy the witness clause yet
        fail ``a_j|0..0> = 0``.  The exact condition follows from
        ``m|0..0> = i^{#Y(m)} |x_mask(m)>``: for each pair,

        1. equal flip masks — at every qubit, ``op ∈ {X,Y}`` must agree
           between the even and odd strings (``bit1 ⊕ bit2`` equal); and
        2. ``#Y(even) ≡ #Y(odd) + 3 (mod 4)``, so the two images of
           ``|0..0>`` cancel in ``(m_even + i·m_odd)/2``.

        The Y-counts run through mod-4 Tseitin counters (``O(N)`` gadgets
        per string).
        """
        formula = self.formula
        for mode in range(self.num_modes):
            even_string, odd_string = 2 * mode, 2 * mode + 1
            for qubit in range(self.num_modes):
                flip_bits = [
                    self.bit1[even_string][qubit], self.bit2[even_string][qubit],
                    self.bit1[odd_string][qubit], self.bit2[odd_string][qubit],
                ]
                formula.add_unit(-encode_xor_many(formula, flip_bits))
            even_count = self._y_count_mod4(even_string)
            odd_count = self._y_count_mod4(odd_string)
            self._assert_count_offset(even_count, odd_count, offset=3)

    def _y_indicator(self, string_index: int, qubit: int) -> int:
        """Literal for "operator at (string, qubit) is Y" (``Y = (1, 0)``)."""
        formula = self.formula
        gate = formula.new_variable()
        bit1 = self.bit1[string_index][qubit]
        bit2 = self.bit2[string_index][qubit]
        formula.add_clause((-gate, bit1))
        formula.add_clause((-gate, -bit2))
        formula.add_clause((gate, -bit1, bit2))
        return gate

    def _y_count_mod4(self, string_index: int) -> tuple[int, int]:
        """Two literals ``(high, low)`` for the string's Y-count mod 4."""
        formula = self.formula
        false_literal = formula.new_variable()
        formula.add_unit(-false_literal)
        high, low = false_literal, false_literal
        for qubit in range(self.num_modes):
            indicator = self._y_indicator(string_index, qubit)
            carry = encode_and(formula, low, indicator)
            low = encode_xor(formula, low, indicator)
            high = encode_xor(formula, high, carry)
        return high, low

    def _assert_count_offset(
        self, even_count: tuple[int, int], odd_count: tuple[int, int], offset: int
    ) -> None:
        """Constrain ``even ≡ odd + offset (mod 4)`` over 2-bit counters."""
        formula = self.formula
        cases = []
        for odd_value in range(4):
            even_value = (odd_value + offset) % 4
            pattern = (
                (even_count[0], (even_value >> 1) & 1),
                (even_count[1], even_value & 1),
                (odd_count[0], (odd_value >> 1) & 1),
                (odd_count[1], odd_value & 1),
            )
            gate = formula.new_variable()
            literals = [
                (variable if bit else -variable) for variable, bit in pattern
            ]
            for literal in literals:
                formula.add_clause((-gate, literal))
            formula.add_clause((gate,) + tuple(-literal for literal in literals))
            cases.append(gate)
        formula.add_clause(cases)

    # -- objectives (Sections 3.6 / 3.7) ---------------------------------------------------

    def _operator_weight_literal(self, string_index: int, qubit: int) -> int:
        """Literal for "operator at (string, qubit) is non-identity"."""
        return encode_or(
            self.formula, self.bit1[string_index][qubit], self.bit2[string_index][qubit]
        )

    def majorana_weight_indicators(self) -> list[int]:
        """One literal per (string, qubit) — the H-independent objective terms."""
        if self._weight_indicators is None:
            self._weight_indicators = [
                self._operator_weight_literal(string_index, qubit)
                for string_index in range(self.num_strings)
                for qubit in range(self.num_modes)
            ]
        return self._weight_indicators

    def hamiltonian_weight_indicators(
        self, hamiltonian: FermionicHamiltonian
    ) -> list[int]:
        """One literal per (Hamiltonian monomial, qubit).

        Each distinct Majorana monomial of the Hamiltonian expansion is a
        product of solution strings; its bit sequence is the XOR of theirs
        (Eq. 14 territory).  The literal says the product operator at a
        given qubit is non-identity.
        """
        if hamiltonian.num_modes != self.num_modes:
            raise ValueError(
                f"Hamiltonian has {hamiltonian.num_modes} modes, encoder {self.num_modes}"
            )
        formula = self.formula
        indicators: list[int] = []
        for monomial in hamiltonian.monomials:
            for qubit in range(self.num_modes):
                if len(monomial) == 1:
                    index = monomial[0]
                    bit1 = self.bit1[index][qubit]
                    bit2 = self.bit2[index][qubit]
                else:
                    bit1 = encode_xor_many(
                        formula, [self.bit1[index][qubit] for index in monomial]
                    )
                    bit2 = encode_xor_many(
                        formula, [self.bit2[index][qubit] for index in monomial]
                    )
                indicators.append(encode_or(formula, bit1, bit2))
        return indicators

    def add_weight_at_most(
        self,
        indicators: list[int],
        bound: int,
        qubit_weights: "tuple[int, ...] | None" = None,
    ) -> None:
        """Cardinality constraint on the weight objective.

        Uniform (``qubit_weights is None``): ``sum(indicators) <= bound``.
        Connectivity-weighted: indicator ``i`` belongs to qubit
        ``i % num_modes`` (both indicator families enumerate qubits
        innermost), and the constraint becomes
        ``sum(qubit_weights[i % N] * indicators[i]) <= bound`` — the
        hardware-aware objective of :mod:`repro.hardware.cost`.
        """
        if qubit_weights is None:
            add_at_most_k(self.formula, indicators, bound)
            return
        if len(qubit_weights) != self.num_modes:
            raise ValueError(
                f"qubit_weights has {len(qubit_weights)} entries, encoder has "
                f"{self.num_modes} qubits"
            )
        if len(indicators) % self.num_modes != 0:
            raise ValueError(
                "indicator count is not a multiple of the qubit count"
            )
        weights = [
            qubit_weights[index % self.num_modes]
            for index in range(len(indicators))
        ]
        add_at_most_k_weighted(self.formula, indicators, weights, bound)

    def weight_ladder(
        self,
        indicators: list[int],
        max_bound: int,
        qubit_weights: "tuple[int, ...] | None" = None,
        encoding: str = "auto",
    ) -> list[int]:
        """Assumption-activated weight bounds for incremental descent.

        Builds one shared cardinality counter over the objective
        indicators (weighted exactly as :meth:`add_weight_at_most` would
        weight them) and returns ``selectors`` where assuming
        ``selectors[b]`` enforces objective ``<= b``, for every
        ``b in 0..max_bound``.  The descent ladder then re-solves a single
        CNF with a different one-literal assumption per rung instead of
        rebuilding the instance.

        ``encoding`` picks the counter: ``"sequential"`` (Sinz),
        ``"totalizer"`` (Bailleux-Boutobza merge tree), or ``"auto"``
        (default) which compares the exact predicted clause counts of the
        two — :func:`repro.sat.cardinality.predict_sequential_ladder` vs
        :func:`repro.sat.totalizer.predict_totalizer_ladder` — and emits
        the smaller.  Both honour the identical selector contract, so the
        choice is invisible to descent.
        """
        if qubit_weights is None:
            literals = list(indicators)
        else:
            if len(qubit_weights) != self.num_modes:
                raise ValueError(
                    f"qubit_weights has {len(qubit_weights)} entries, encoder has "
                    f"{self.num_modes} qubits"
                )
            if len(indicators) % self.num_modes != 0:
                raise ValueError(
                    "indicator count is not a multiple of the qubit count"
                )
            # Weighted counting = each literal repeated ``weight`` times in
            # the shared counter, mirroring ``add_at_most_k_weighted``.
            literals = [
                literal
                for index, literal in enumerate(indicators)
                for _ in range(qubit_weights[index % self.num_modes])
            ]
        if encoding == "auto":
            _, sequential_clauses = predict_sequential_ladder(len(literals), max_bound)
            _, totalizer_clauses = predict_totalizer_ladder(len(literals), max_bound)
            encoding = (
                "totalizer" if totalizer_clauses < sequential_clauses else "sequential"
            )
        if encoding == "sequential":
            return add_at_most_ladder(self.formula, literals, max_bound)
        if encoding == "totalizer":
            return add_totalizer_ladder(self.formula, literals, max_bound)
        raise ValueError(
            f"unknown ladder encoding {encoding!r}; "
            "expected 'auto', 'sequential' or 'totalizer'"
        )

    # -- model decoding -------------------------------------------------------------------------

    def decode(self, model: dict[int, bool], validate: bool = False) -> MajoranaEncoding:
        """Map a SAT model to the corresponding :class:`MajoranaEncoding`."""
        strings = []
        for string_index in range(self.num_strings):
            operators = {}
            for qubit in range(self.num_modes):
                bits = (
                    int(model[self.bit1[string_index][qubit]]),
                    int(model[self.bit2[string_index][qubit]]),
                )
                operators[qubit] = _BITS_TO_OPERATOR[bits]
            strings.append(PauliString.from_operators(self.num_modes, operators))
        return MajoranaEncoding(strings, name="fermihedral", validate=validate)

    def blocking_clause(self, model: dict[int, bool]) -> list[int]:
        """Clause forbidding this exact string assignment (for repair loops
        and model enumeration)."""
        return [
            (-variable if model[variable] else variable)
            for variable in self.all_string_variables()
        ]

    def encoding_assignment(self, encoding: MajoranaEncoding) -> dict[int, bool]:
        """Phase hints mapping a known encoding onto this encoder's variables
        (used to warm-start descent from the Bravyi-Kitaev baseline)."""
        if encoding.num_modes != self.num_modes:
            raise ValueError("encoding mode count does not match encoder")
        hints: dict[int, bool] = {}
        for string_index, string in enumerate(encoding.strings):
            for qubit in range(self.num_modes):
                bit1, bit2 = OPERATOR_BITS[string.operator(qubit)]
                hints[self.bit1[string_index][qubit]] = bool(bit1)
                hints[self.bit2[string_index][qubit]] = bool(bit2)
        return hints
