"""Fermi-Hubbard model Hamiltonians on periodic lattices.

    ``H = -t Σ_{<i,j>,σ} (a†_iσ a_jσ + a†_jσ a_iσ) + U Σ_i n_i↑ n_i↓``

Site graphs are built with :mod:`networkx` (periodic grid graphs), so the
3×1 chain and 2×2 square lattice of the paper's evaluation — and arbitrary
``rows × cols`` variants — share one code path.  Mode convention is
interleaved spin: ``mode = 2 * site + spin``, so an ``S``-site lattice uses
``N = 2S`` fermionic modes (qubits).
"""

from __future__ import annotations

import networkx as nx

from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.fermion.operators import FermionOperator

DEFAULT_TUNNELING = 1.0
DEFAULT_INTERACTION = 2.0


def _mode(site: int, spin: int) -> int:
    return 2 * site + spin


def hubbard_from_graph(
    graph: nx.Graph,
    tunneling: float = DEFAULT_TUNNELING,
    interaction: float = DEFAULT_INTERACTION,
    name: str = "hubbard",
) -> FermionicHamiltonian:
    """Fermi-Hubbard Hamiltonian on an arbitrary site graph."""
    sites = sorted(graph.nodes())
    index = {site: position for position, site in enumerate(sites)}
    operator = FermionOperator.zero()

    for left, right in graph.edges():
        i, j = index[left], index[right]
        for spin in (0, 1):
            hop = FermionOperator.from_monomial(
                ((_mode(i, spin), True), (_mode(j, spin), False)), -tunneling
            )
            operator = operator + hop + hop.hermitian_conjugate()

    for site in sites:
        i = index[site]
        operator = operator + (
            FermionOperator.number(_mode(i, 0)) * FermionOperator.number(_mode(i, 1))
        ) * interaction

    return FermionicHamiltonian.from_fermion_operator(
        name, operator, num_modes=2 * len(sites)
    )


def hubbard_chain(
    num_sites: int,
    tunneling: float = DEFAULT_TUNNELING,
    interaction: float = DEFAULT_INTERACTION,
    periodic: bool = True,
) -> FermionicHamiltonian:
    """1-D Fermi-Hubbard chain (periodic by default, as in the paper)."""
    if num_sites < 2:
        raise ValueError("a chain needs at least two sites")
    graph = nx.cycle_graph(num_sites) if periodic else nx.path_graph(num_sites)
    label = f"hubbard-1d-{num_sites}{'p' if periodic else ''}"
    return hubbard_from_graph(graph, tunneling, interaction, name=label)


def hubbard_lattice(
    rows: int,
    cols: int,
    tunneling: float = DEFAULT_TUNNELING,
    interaction: float = DEFAULT_INTERACTION,
    periodic: bool = True,
) -> FermionicHamiltonian:
    """``rows x cols`` square-lattice Fermi-Hubbard model.

    Degenerate shapes (a single row or column) reduce to the chain so that
    the paper's "3×1 Fermi-Hubbard" benchmark comes out as the periodic
    3-site chain (6 qubits); "2×2" is the 4-site plaquette (8 qubits).
    """
    if rows < 1 or cols < 1:
        raise ValueError("lattice dimensions must be positive")
    if rows == 1 or cols == 1:
        length = max(rows, cols)
        model = hubbard_chain(length, tunneling, interaction, periodic)
        return FermionicHamiltonian(
            name=f"hubbard-{rows}x{cols}{'p' if periodic else ''}",
            num_modes=model.num_modes,
            majorana=model.majorana,
            fermionic=model.fermionic,
            constant=model.constant,
        )
    graph = nx.grid_2d_graph(rows, cols, periodic=periodic)
    label = f"hubbard-{rows}x{cols}{'p' if periodic else ''}"
    return hubbard_from_graph(graph, tunneling, interaction, name=label)
