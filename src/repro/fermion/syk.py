"""The four-body Sachdev-Ye-Kitaev (SYK) model.

    ``H = (1 / (4 · 4!)) Σ_{ijkl} g_ijkl M_i M_j M_k M_l``

over the ``2N`` Majorana operators of an ``N``-mode system, with totally
antisymmetric Gaussian couplings.  In canonical form this is a sum over
strictly ascending quadruples ``i < j < k < l`` with coupling variance
``3! J² / (2N)³`` — the standard large-``N`` normalisation.  SYK is native
to Majoranas (the paper's ``mj`` benchmark format), so no second-quantized
form is attached.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.fermion.majorana import MajoranaPolynomial

DEFAULT_COUPLING = 1.0


def syk_hamiltonian(
    num_modes: int,
    coupling: float = DEFAULT_COUPLING,
    seed: int = 11,
) -> FermionicHamiltonian:
    """Four-body SYK instance on ``num_modes`` fermionic modes.

    Every ascending Majorana quadruple receives an independent Gaussian
    coupling; with ``2N`` Majoranas that is ``C(2N, 4)`` dense four-body
    terms — the "strongly interacting" extreme of the paper's benchmarks.
    """
    if num_modes < 2:
        raise ValueError("four-body SYK needs at least 2 modes (4 Majoranas)")
    num_majoranas = 2 * num_modes
    rng = np.random.default_rng(seed)
    scale = np.sqrt(6.0 * coupling**2 / num_majoranas**3)

    polynomial = MajoranaPolynomial()
    for quadruple in combinations(range(num_majoranas), 4):
        polynomial.add_product(quadruple, float(rng.normal(scale=scale)))

    return FermionicHamiltonian.from_majorana(
        f"syk4-{num_modes}", polynomial, num_modes=num_modes
    )
