"""Spinless-fermion lattice models.

The t-V model (spinless fermions with nearest-neighbour repulsion):

    ``H = -t Σ_<ij> (a†_i a_j + a†_j a_i) + V Σ_<ij> n_i n_j``

is the minimal interacting fermion chain — one mode per site, so an
``N``-site lattice needs only ``N`` qubits.  It exercises encodings on a
different interaction structure than the spinful Hubbard model (density-
density terms across *bonds* rather than on-site), and its small mode
count makes it the cheapest family for Full SAT studies.
"""

from __future__ import annotations

import networkx as nx

from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.fermion.operators import FermionOperator

DEFAULT_TUNNELING = 1.0
DEFAULT_REPULSION = 1.5


def tv_model_from_graph(
    graph: nx.Graph,
    tunneling: float = DEFAULT_TUNNELING,
    repulsion: float = DEFAULT_REPULSION,
    name: str = "tv-model",
) -> FermionicHamiltonian:
    """Spinless t-V Hamiltonian on an arbitrary site graph."""
    sites = sorted(graph.nodes())
    index = {site: position for position, site in enumerate(sites)}
    operator = FermionOperator.zero()
    for left, right in graph.edges():
        i, j = index[left], index[right]
        hop = FermionOperator.from_monomial(((i, True), (j, False)), -tunneling)
        operator = operator + hop + hop.hermitian_conjugate()
        operator = operator + (
            FermionOperator.number(i) * FermionOperator.number(j)
        ) * repulsion
    return FermionicHamiltonian.from_fermion_operator(
        name, operator, num_modes=len(sites)
    )


def tv_chain(
    num_sites: int,
    tunneling: float = DEFAULT_TUNNELING,
    repulsion: float = DEFAULT_REPULSION,
    periodic: bool = True,
) -> FermionicHamiltonian:
    """1-D spinless t-V chain (periodic by default)."""
    if num_sites < 2:
        raise ValueError("a chain needs at least two sites")
    graph = nx.cycle_graph(num_sites) if periodic else nx.path_graph(num_sites)
    label = f"tv-1d-{num_sites}{'p' if periodic else ''}"
    return tv_model_from_graph(graph, tunneling, repulsion, name=label)
