"""Unified fermionic-Hamiltonian container.

Every benchmark family (molecular electronic structure, Fermi-Hubbard, SYK)
produces a :class:`FermionicHamiltonian`: a named operator over ``N`` modes
carrying both the second-quantized form (when one exists — SYK is native to
Majoranas) and the Majorana-polynomial expansion that the encoders and the
weight objectives consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fermion.majorana import MajoranaPolynomial, fermion_to_majorana
from repro.fermion.operators import FermionOperator


@dataclass(frozen=True)
class FermionicHamiltonian:
    """A fermionic Hamiltonian over a fixed number of modes.

    Attributes:
        name: human-readable benchmark label.
        num_modes: number of fermionic modes ``N`` (qubits after encoding).
        majorana: expansion over canonical Majorana monomials.
        fermionic: second-quantized form, when the model has one.
        constant: scalar offset (e.g. nuclear repulsion) carried outside
            the operator so weight metrics ignore it.
    """

    name: str
    num_modes: int
    majorana: MajoranaPolynomial
    fermionic: FermionOperator | None = None
    constant: float = 0.0

    def __post_init__(self):
        if self.num_modes <= 0:
            raise ValueError("num_modes must be positive")
        if self.majorana.max_index >= 2 * self.num_modes:
            raise ValueError(
                f"Majorana index {self.majorana.max_index} out of range for "
                f"{self.num_modes} modes"
            )

    @classmethod
    def from_fermion_operator(
        cls,
        name: str,
        operator: FermionOperator,
        num_modes: int | None = None,
        constant: float = 0.0,
    ) -> "FermionicHamiltonian":
        """Wrap a second-quantized operator, expanding it over Majoranas."""
        modes = operator.num_modes if num_modes is None else num_modes
        return cls(
            name=name,
            num_modes=modes,
            majorana=fermion_to_majorana(operator),
            fermionic=operator,
            constant=constant,
        )

    @classmethod
    def from_majorana(
        cls,
        name: str,
        polynomial: MajoranaPolynomial,
        num_modes: int,
        constant: float = 0.0,
    ) -> "FermionicHamiltonian":
        """Wrap a Majorana-native model (e.g. SYK)."""
        return cls(
            name=name,
            num_modes=num_modes,
            majorana=polynomial,
            fermionic=None,
            constant=constant,
        )

    @property
    def monomials(self) -> list[tuple[int, ...]]:
        """Distinct non-identity Majorana monomials — weight-objective input."""
        return self.majorana.support_monomials()

    def __repr__(self) -> str:
        return (
            f"FermionicHamiltonian({self.name!r}, modes={self.num_modes}, "
            f"monomials={len(self.monomials)})"
        )
