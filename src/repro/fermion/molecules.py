"""Molecular electronic-structure Hamiltonians.

The general form is the paper's Eq. 13:

    ``H = Σ_pq h_pq a†_p a_q + ½ Σ_pqrs h_pqrs a†_p a†_q a_r a_s``

The H2/STO-3G integrals below are the standard published values at the
equilibrium bond length R = 0.7414 Å (spatial-orbital basis, chemist
notation), identical to what PySCF/OpenFermion produce; they are
hard-coded because this environment has no quantum-chemistry stack.
Larger "electronic structure" benchmark instances are generated
synthetically with the full 8-fold permutational symmetry of real
two-electron integrals, so the *term structure* — which products
``a† a† a a`` appear — matches a real molecule of the same size, which is
all the Pauli-weight objectives observe.
"""

from __future__ import annotations

import numpy as np

from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.fermion.operators import FermionOperator

#: One-electron spatial integrals h_pq for H2/STO-3G at R = 0.7414 Å (Hartree).
H2_ONE_BODY = np.array([[-1.252477, 0.0], [0.0, -0.475934]])

#: Two-electron spatial integrals (pq|rs) in chemist notation, same geometry.
H2_TWO_BODY_CHEMIST = {
    (0, 0, 0, 0): 0.674493,
    (1, 1, 1, 1): 0.697397,
    (0, 0, 1, 1): 0.663472,
    (1, 1, 0, 0): 0.663472,
    (0, 1, 1, 0): 0.181287,
    (1, 0, 0, 1): 0.181287,
    (0, 1, 0, 1): 0.181287,
    (1, 0, 1, 0): 0.181287,
}

#: Nuclear repulsion energy of H2 at R = 0.7414 Å (Hartree).
H2_NUCLEAR_REPULSION = 0.713754


def spin_orbital(spatial: int, spin: int) -> int:
    """Interleaved spin-orbital convention: mode = 2 * spatial + spin."""
    if spin not in (0, 1):
        raise ValueError("spin must be 0 (up) or 1 (down)")
    return 2 * spatial + spin


def molecular_hamiltonian(
    one_body: np.ndarray,
    two_body_chemist: dict[tuple[int, int, int, int], float],
    name: str = "molecule",
    constant: float = 0.0,
) -> FermionicHamiltonian:
    """Build the spin-orbital second-quantized Hamiltonian from integrals.

    Args:
        one_body: ``h_pq`` over spatial orbitals.
        two_body_chemist: ``(pq|rs)`` chemist-notation spatial integrals.
        name: benchmark label.
        constant: scalar offset (nuclear repulsion).

    The chemist-notation expansion is
    ``½ Σ_{pqrs} Σ_{στ} (pq|rs) a†_pσ a†_rτ a_sτ a_qσ``.
    """
    num_spatial = one_body.shape[0]
    if one_body.shape != (num_spatial, num_spatial):
        raise ValueError("one_body must be square")
    operator = FermionOperator.zero()

    for p in range(num_spatial):
        for q in range(num_spatial):
            if abs(one_body[p, q]) < 1e-14:
                continue
            for spin in (0, 1):
                operator = operator + FermionOperator.from_monomial(
                    ((spin_orbital(p, spin), True), (spin_orbital(q, spin), False)),
                    one_body[p, q],
                )

    for (p, q, r, s), value in two_body_chemist.items():
        if abs(value) < 1e-14:
            continue
        for sigma in (0, 1):
            for tau in (0, 1):
                mode_p = spin_orbital(p, sigma)
                mode_q = spin_orbital(q, sigma)
                mode_r = spin_orbital(r, tau)
                mode_s = spin_orbital(s, tau)
                if mode_p == mode_r or mode_q == mode_s:
                    continue  # a†a† or aa on equal modes vanishes
                operator = operator + FermionOperator.from_monomial(
                    ((mode_p, True), (mode_r, True), (mode_s, False), (mode_q, False)),
                    0.5 * value,
                )

    return FermionicHamiltonian.from_fermion_operator(
        name, operator, num_modes=2 * num_spatial, constant=constant
    )


def h2_hamiltonian() -> FermionicHamiltonian:
    """The 4-mode H2/STO-3G Hamiltonian used in Figures 8/10 and Table 6."""
    return molecular_hamiltonian(
        H2_ONE_BODY,
        H2_TWO_BODY_CHEMIST,
        name="H2-STO3G",
        constant=H2_NUCLEAR_REPULSION,
    )


def random_two_body_integrals(num_spatial: int, rng: np.random.Generator) -> dict:
    """Random ``(pq|rs)`` with the 8-fold symmetry of real orbitals:
    ``(pq|rs) = (qp|rs) = (pq|sr) = (qp|sr) = (rs|pq) = ...``.
    """
    integrals: dict[tuple[int, int, int, int], float] = {}
    for p in range(num_spatial):
        for q in range(p + 1):
            for r in range(num_spatial):
                for s in range(r + 1):
                    if (p, q) < (r, s):
                        continue
                    value = float(rng.normal(scale=1.0 / num_spatial))
                    for key in {
                        (p, q, r, s), (q, p, r, s), (p, q, s, r), (q, p, s, r),
                        (r, s, p, q), (s, r, p, q), (r, s, q, p), (s, r, q, p),
                    }:
                        integrals[key] = value
    return integrals


def random_molecular_hamiltonian(num_modes: int, seed: int = 7) -> FermionicHamiltonian:
    """Synthetic electronic-structure instance on ``num_modes`` spin-orbitals.

    ``num_modes`` must be even (two spins per spatial orbital).  Substitutes
    for the real molecules of the paper's "Electronic Structure" rows; the
    interaction *structure* (which second-quantized products appear) matches
    a real molecule with the same orbital count.
    """
    if num_modes % 2 != 0:
        raise ValueError("electronic-structure instances need an even mode count")
    num_spatial = num_modes // 2
    rng = np.random.default_rng(seed)
    one_body = rng.normal(scale=1.0, size=(num_spatial, num_spatial))
    one_body = (one_body + one_body.T) / 2.0
    two_body = random_two_body_integrals(num_spatial, rng)
    return molecular_hamiltonian(
        one_body, two_body, name=f"electronic-{num_modes}", constant=0.0
    )
