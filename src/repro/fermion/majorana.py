"""Majorana operator algebra.

The ``2N`` Majorana operators of an ``N``-mode system satisfy
``{m_i, m_j} = 2 δ_ij`` (so ``m_i^2 = 1`` and distinct operators
anticommute).  This package pairs them with the modes as

    ``a_j   = (m_{2j} + i m_{2j+1}) / 2``
    ``a†_j  = (m_{2j} − i m_{2j+1}) / 2``

matching Eq. 12 of the paper (even index = "X-type", odd = "Y-type").

A :class:`MajoranaPolynomial` maps canonical monomials — strictly
ascending tuples of Majorana indices — to complex coefficients.  Its most
important consumer is the Hamiltonian-dependent weight objective: the set
of *distinct* monomials appearing in a Hamiltonian's expansion determines
the encoded Pauli strings whose weight the SAT objective counts
(Section 3.7, Eq. 14).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.fermion.operators import FermionOperator

#: A canonical Majorana monomial: strictly ascending index tuple.
MajoranaMonomial = tuple[int, ...]

_TOLERANCE = 1e-12


def canonicalize_indices(indices: Iterable[int]) -> tuple[MajoranaMonomial, int]:
    """Reduce a Majorana index product to canonical form.

    Sorting adjacent transpositions each contribute ``-1`` (anticommutation)
    and equal adjacent pairs annihilate (``m^2 = 1``).  Returns the sorted,
    duplicate-free tuple and the accumulated sign.
    """
    result: list[int] = []
    sign = 1
    for index in indices:
        position = len(result)
        while position > 0 and result[position - 1] > index:
            position -= 1
        if (len(result) - position) % 2 == 1:
            sign = -sign
        if position > 0 and result[position - 1] == index:
            result.pop(position - 1)
        else:
            result.insert(position, index)
    return tuple(result), sign


class MajoranaPolynomial:
    """A linear combination of canonical Majorana monomials."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[MajoranaMonomial, complex] | None = None):
        self._terms: dict[MajoranaMonomial, complex] = {}
        if terms:
            for monomial, coefficient in terms.items():
                self.add_product(monomial, coefficient)

    def add_product(self, indices: Iterable[int], coefficient: complex) -> None:
        """Add ``coefficient * m_{i1} m_{i2} ...`` (any order, repeats allowed)."""
        monomial, sign = canonicalize_indices(indices)
        updated = self._terms.get(monomial, 0j) + sign * coefficient
        if abs(updated) <= _TOLERANCE:
            self._terms.pop(monomial, None)
        else:
            self._terms[monomial] = updated

    # -- inspection ---------------------------------------------------------

    def items(self) -> Iterator[tuple[MajoranaMonomial, complex]]:
        return iter(self._terms.items())

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[tuple[MajoranaMonomial, complex]]:
        return self.items()

    def coefficient(self, monomial: MajoranaMonomial) -> complex:
        return self._terms.get(tuple(monomial), 0j)

    @property
    def is_zero(self) -> bool:
        return not self._terms

    @property
    def max_index(self) -> int:
        return max((index for monomial in self._terms for index in monomial), default=-1)

    def monomials(self) -> list[MajoranaMonomial]:
        """All distinct canonical monomials (identity included if present)."""
        return list(self._terms)

    def support_monomials(self) -> list[MajoranaMonomial]:
        """Distinct non-identity monomials — the weight-objective inputs."""
        return [monomial for monomial in self._terms if monomial]

    # -- algebra -------------------------------------------------------------

    def __add__(self, other: "MajoranaPolynomial") -> "MajoranaPolynomial":
        result = MajoranaPolynomial(self._terms)
        for monomial, coefficient in other.items():
            result.add_product(monomial, coefficient)
        return result

    def __mul__(self, other) -> "MajoranaPolynomial":
        if isinstance(other, MajoranaPolynomial):
            result = MajoranaPolynomial()
            for left, left_coefficient in self._terms.items():
                for right, right_coefficient in other._terms.items():
                    result.add_product(left + right, left_coefficient * right_coefficient)
            return result
        if isinstance(other, (int, float, complex)):
            return MajoranaPolynomial(
                {monomial: coefficient * other for monomial, coefficient in self._terms.items()}
            )
        return NotImplemented

    def __rmul__(self, other) -> "MajoranaPolynomial":
        if isinstance(other, (int, float, complex)):
            return self * other
        return NotImplemented

    def __repr__(self) -> str:
        if not self._terms:
            return "MajoranaPolynomial(0)"
        parts = []
        for monomial, coefficient in sorted(self._terms.items()):
            body = " ".join(f"m_{index}" for index in monomial) or "1"
            parts.append(f"({coefficient:.6g})*{body}")
        return "MajoranaPolynomial(" + " + ".join(parts) + ")"


def fermion_to_majorana(operator: FermionOperator) -> MajoranaPolynomial:
    """Expand a :class:`FermionOperator` over Majorana monomials.

    Each factor splits into two Majorana terms, so a ``t``-factor monomial
    expands into ``2^t`` index products before canonical reduction.
    """
    polynomial = MajoranaPolynomial()
    for monomial, coefficient in operator.items():
        partial: list[tuple[tuple[int, ...], complex]] = [((), coefficient)]
        for mode, is_creation in monomial:
            odd_factor = (-0.5j) if is_creation else (0.5j)
            expanded: list[tuple[tuple[int, ...], complex]] = []
            for indices, value in partial:
                expanded.append((indices + (2 * mode,), value * 0.5))
                expanded.append((indices + (2 * mode + 1,), value * odd_factor))
            partial = expanded
        for indices, value in partial:
            polynomial.add_product(indices, value)
    return polynomial


def hamiltonian_monomials(operator: FermionOperator) -> list[MajoranaMonomial]:
    """Distinct non-identity Majorana monomials of a Hamiltonian expansion.

    This is the input of the Hamiltonian-dependent weight objective: every
    monomial becomes one encoded Pauli string whose weight is counted once.
    """
    return fermion_to_majorana(operator).support_monomials()
