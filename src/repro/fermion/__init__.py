"""Fermionic-system substrate: operators, Majorana algebra, model Hamiltonians."""

from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.fermion.hubbard import hubbard_chain, hubbard_from_graph, hubbard_lattice
from repro.fermion.majorana import (
    MajoranaPolynomial,
    canonicalize_indices,
    fermion_to_majorana,
    hamiltonian_monomials,
)
from repro.fermion.molecules import (
    h2_hamiltonian,
    molecular_hamiltonian,
    random_molecular_hamiltonian,
)
from repro.fermion.operators import FermionOperator
from repro.fermion.spinless import tv_chain, tv_model_from_graph
from repro.fermion.syk import syk_hamiltonian

__all__ = [
    "FermionOperator",
    "FermionicHamiltonian",
    "MajoranaPolynomial",
    "canonicalize_indices",
    "fermion_to_majorana",
    "h2_hamiltonian",
    "hamiltonian_monomials",
    "hubbard_chain",
    "hubbard_from_graph",
    "hubbard_lattice",
    "molecular_hamiltonian",
    "random_molecular_hamiltonian",
    "syk_hamiltonian",
    "tv_chain",
    "tv_model_from_graph",
]
