"""The model catalog: build a Hamiltonian from a ``family[:params]`` spec.

One spec grammar shared by every front door — the CLI (``--model``),
batch job files, and the compilation service's wire format — so a job
means the same thing whether it arrives on argv, in a JSON file, or over
HTTP.

Specs::

    h2                 the paper's H2 molecule (4 modes)
    hubbard:<n>        Hubbard chain with <n> sites
    hubbard:<r>x<c>    Hubbard lattice
    syk:<n>            SYK model with <n> modes
    electronic:<n>     random molecular Hamiltonian
    tv:<sites>         spinless t-V chain
"""

from __future__ import annotations

from repro.fermion.hamiltonians import FermionicHamiltonian
from repro.fermion.hubbard import hubbard_chain, hubbard_lattice
from repro.fermion.molecules import h2_hamiltonian, random_molecular_hamiltonian
from repro.fermion.spinless import tv_chain
from repro.fermion.syk import syk_hamiltonian

#: One-line spec grammar, shared by CLI help strings.
MODEL_SPEC_HELP = (
    "h2 | hubbard:<n> | hubbard:<r>x<c> | syk:<n> | electronic:<n> | tv:<sites>"
)


def parse_model(spec: str) -> FermionicHamiltonian:
    """Build a Hamiltonian from a ``family[:params]`` spec string."""
    family, _, parameter = spec.partition(":")
    family = family.lower()
    if family == "h2":
        return h2_hamiltonian()
    if family == "hubbard":
        if not parameter:
            raise ValueError("hubbard needs sites: hubbard:3 or hubbard:2x2")
        if "x" in parameter:
            rows, cols = (int(part) for part in parameter.split("x", 1))
            return hubbard_lattice(rows, cols)
        return hubbard_chain(int(parameter))
    if family == "syk":
        if not parameter:
            raise ValueError("syk needs a mode count: syk:4")
        return syk_hamiltonian(int(parameter))
    if family == "electronic":
        if not parameter:
            raise ValueError("electronic needs a mode count: electronic:6")
        return random_molecular_hamiltonian(int(parameter))
    if family == "tv":
        if not parameter:
            raise ValueError("tv needs a site count: tv:4")
        return tv_chain(int(parameter))
    raise ValueError(f"unknown model family: {family!r}")
